//! Fault-injection drills: injected evaluation panics must stay isolated
//! and correctly classified, the score memo must never absorb a fault,
//! and torn or truncated snapshots must be detected and skipped in favor
//! of the previous valid one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use qns_noise::Device;
use qns_runtime::{counters, CacheKey, StructuralHasher};
use quantumnas::{
    evolutionary_search_seeded_rt, gene_key, CheckpointOptions, DesignSpace, Estimator,
    EstimatorKind, EvoConfig, FaultPlan, Gene, RuntimeOptions, SearchRuntime, SpaceKind,
    SuperCircuit, Task, FAULT_MARKER,
};

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("qns-fault-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup() -> (SuperCircuit, Vec<f64>, Task, Estimator) {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let task = Task::qml_digits(&[1, 8], 15, 4, 4);
    let params: Vec<f64> = (0..sc.num_params())
        .map(|i| 0.2 * ((i % 5) as f64) - 0.4)
        .collect();
    let est = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1).with_valid_cap(4);
    (sc, params, task, est)
}

fn evo_cfg(runtime: RuntimeOptions) -> EvoConfig {
    EvoConfig {
        iterations: 4,
        population: 8,
        parents: 3,
        mutations: 3,
        crossovers: 2,
        runtime,
        ..EvoConfig::fast(17)
    }
}

/// Distinct genes on the maximal architecture (layouts are rotations of
/// the trivial mapping, all valid on a 5-qubit device).
fn genes(sc: &SuperCircuit, n: usize) -> Vec<Gene> {
    (0..n)
        .map(|r| Gene {
            config: sc.max_config(),
            layout: (0..4).map(|q| (q + r) % 4).collect(),
        })
        .collect()
}

fn context() -> CacheKey {
    let mut h = StructuralHasher::new();
    h.write_str("fault-injection-test");
    h.finish()
}

/// An injected mid-eval panic is confined to its own candidate: the
/// search completes, the fault is counted under its own telemetry name
/// (not as an organic panic), and every other score is untouched.
#[test]
fn injected_eval_fault_is_isolated_and_classified() {
    let (sc, params, task, est) = setup();
    let reference = {
        let cfg = evo_cfg(RuntimeOptions::default());
        let rt = SearchRuntime::new(cfg.runtime.clone());
        evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt)
    };

    // Fault the 5th evaluation of the first generation (sequential
    // evaluation, so "5th" names a specific candidate). With the memo
    // disabled the search keeps re-evaluating, so every generation after
    // the first re-scores the survivors cleanly and the final result
    // matches the reference.
    let cfg = evo_cfg(RuntimeOptions {
        workers: 1,
        cache: false,
        ..Default::default()
    });
    let rt = SearchRuntime::new(cfg.runtime.clone())
        .with_fault_plan(Arc::new(FaultPlan::new().fail_eval(5)));
    let faulted = evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt);

    assert_eq!(rt.metrics().counter(counters::INJECTED_FAULTS), 1);
    assert_eq!(rt.metrics().counter(counters::PANICS), 0);
    assert_eq!(rt.metrics().counter(counters::VERIFY_VIOLATIONS), 0);
    assert_eq!(faulted.best, reference.best);
    assert_eq!(faulted.best_score.to_bits(), reference.best_score.to_bits());
}

/// The score memo must never absorb a fault: a faulted candidate's `+inf`
/// stays out of the memo, so re-scoring the same batch re-evaluates
/// exactly that candidate and gets the true score.
#[test]
fn faults_never_poison_the_score_memo() {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let batch = genes(&sc, 4);
    let score = |g: &Gene| (gene_key(g).lo % 1024) as f64;
    let clean: Vec<f64> = batch.iter().map(score).collect();

    let rt = SearchRuntime::new(RuntimeOptions {
        workers: 1,
        ..Default::default()
    })
    .with_fault_plan(Arc::new(FaultPlan::new().fail_eval(2)));

    let first = rt.score_batch(context(), &batch, score);
    assert_eq!(first.errors.len(), 1);
    let (faulted_idx, msg) = &first.errors[0];
    assert!(msg.contains(FAULT_MARKER), "message was {msg:?}");
    assert!(first.scores[*faulted_idx].is_infinite());

    // Second pass: the three clean scores come from the memo, the faulted
    // one is re-evaluated and now succeeds.
    let second = rt.score_batch(context(), &batch, score);
    assert!(second.errors.is_empty());
    assert_eq!(second.evaluated, 1);
    assert_eq!(second.memo_hits, batch.len() - 1);
    for (got, want) in second.scores.iter().zip(&clean) {
        assert_eq!(got.to_bits(), want.to_bits());
    }
}

/// A snapshot published torn (simulated mid-`write` crash) fails its CRC
/// on load; the resumed run counts it and falls back to the previous
/// snapshot, still finishing bitwise-identical to an uninterrupted run.
#[test]
fn torn_snapshot_falls_back_to_previous_and_resumes_bitwise() {
    let (sc, params, task, est) = setup();
    let reference = {
        let cfg = evo_cfg(RuntimeOptions::default());
        let rt = SearchRuntime::new(cfg.runtime.clone());
        evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt)
    };

    // Tear the 3rd snapshot write, then crash at the 3rd boundary: the
    // newest snapshot on disk is garbage and generation 2's must carry
    // the resume.
    let dir = TempDir::new("torn");
    let cfg = evo_cfg(RuntimeOptions {
        checkpoint: Some(CheckpointOptions::new(dir.path())),
        ..Default::default()
    });
    let rt = SearchRuntime::new(cfg.runtime.clone()).with_fault_plan(Arc::new(
        FaultPlan::new().torn_write(3).crash_at_boundary(3),
    ));
    let crash = catch_unwind(AssertUnwindSafe(|| {
        evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt);
    }));
    assert!(crash.is_err(), "boundary crash should fire");

    let cfg = evo_cfg(RuntimeOptions {
        checkpoint: Some(CheckpointOptions::new(dir.path()).resume()),
        ..Default::default()
    });
    let rt = SearchRuntime::new(cfg.runtime.clone());
    let resumed = evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_CORRUPT), 1);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_RESUMES), 1);
    assert_eq!(resumed.best, reference.best);
    assert_eq!(resumed.best_score.to_bits(), reference.best_score.to_bits());
    assert_eq!(resumed.evaluations, reference.evaluations);
}

/// Truncating the newest snapshot on disk (a crash mid-`rename` or a
/// partial copy) must likewise be detected — never a panic — and resume
/// from the snapshot before it.
#[test]
fn truncated_snapshot_is_skipped_not_fatal() {
    let (sc, params, task, est) = setup();
    let reference = {
        let cfg = evo_cfg(RuntimeOptions::default());
        let rt = SearchRuntime::new(cfg.runtime.clone());
        evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt)
    };

    let dir = TempDir::new("truncated");
    let cfg = evo_cfg(RuntimeOptions {
        checkpoint: Some(CheckpointOptions::new(dir.path())),
        ..Default::default()
    });
    let rt = SearchRuntime::new(cfg.runtime.clone())
        .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(3)));
    let crash = catch_unwind(AssertUnwindSafe(|| {
        evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt);
    }));
    assert!(crash.is_err(), "boundary crash should fire");

    // Chop the newest snapshot in half.
    let mut snapshots: Vec<PathBuf> = std::fs::read_dir(dir.path())
        .expect("read checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    snapshots.sort();
    let newest = snapshots.last().expect("snapshots were written");
    let bytes = std::fs::read(newest).expect("read snapshot");
    std::fs::write(newest, &bytes[..bytes.len() / 2]).expect("truncate snapshot");

    let cfg = evo_cfg(RuntimeOptions {
        checkpoint: Some(CheckpointOptions::new(dir.path()).resume()),
        ..Default::default()
    });
    let rt = SearchRuntime::new(cfg.runtime.clone());
    let resumed = evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_CORRUPT), 1);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_RESUMES), 1);
    assert_eq!(resumed.best, reference.best);
    assert_eq!(resumed.best_score.to_bits(), reference.best_score.to_bits());
    assert_eq!(resumed.evaluations, reference.evaluations);
}
