//! Trajectory-sampling battery: the engine-routed parallel trajectory
//! path must be (a) statistically faithful to the exact density-matrix
//! channel expectation and (b) bit-identical to the sequential path for
//! a fixed candidate, at every worker count.

mod common;

use qns_circuit::{Circuit, GateKind, Param};
use qns_noise::{density_expect_z, Device, TrajectoryConfig, TrajectoryExecutor};
use qns_runtime::Workers;
use qns_sim::SimBackend;

fn noisy_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.push(GateKind::H, &[0], &[]);
    c.push(GateKind::CX, &[0, 1], &[]);
    c.push(GateKind::RY, &[1], &[Param::Fixed(0.8)]);
    c.push(GateKind::CX, &[1, 2], &[]);
    c.push(GateKind::RX, &[2], &[Param::Fixed(0.5)]);
    c.push(GateKind::RZZ, &[0, 2], &[Param::Fixed(0.3)]);
    c
}

/// Mean of K seeded trajectories converges to the exact channel
/// expectation computed by the density-matrix simulator.
#[test]
fn trajectory_mean_converges_to_density_expectation() {
    let c = noisy_circuit();
    let phys = [0usize, 1, 2];
    // Loud noise so the channel effect dominates the statistical error.
    let device = Device::yorktown().scaled_errors(4.0);
    let exact = density_expect_z(&c, &[], &[], &device, &phys, false);
    let exec = TrajectoryExecutor::new(
        device,
        TrajectoryConfig {
            trajectories: 4000,
            seed: 23,
            readout: false,
        },
    )
    .with_workers(Workers::Fixed(4));
    let sampled = exec.expect_z(&c, &[], &[], &phys);
    for (q, (a, b)) in exact.iter().zip(sampled.expect_z.iter()).enumerate() {
        assert!(
            (a - b).abs() < 0.03,
            "qubit {q}: density {a} vs trajectory mean {b}"
        );
    }
}

/// For a fixed seed the parallel trajectory path returns exactly the
/// sequential result — expectations, parity masks, and sampled counts.
#[test]
fn parallel_trajectories_bit_identical_to_sequential() {
    let c = noisy_circuit();
    let phys = [0usize, 1, 2];
    let cfg = TrajectoryConfig {
        trajectories: 33,
        seed: 7,
        readout: true,
    };
    let sequential = TrajectoryExecutor::new(Device::yorktown(), cfg);
    let seq_e = sequential.expect_z(&c, &[], &[], &phys);
    let seq_m = sequential.expect_z_masks(&c, &[], &[], &phys, &[0b101, 0b011]);
    let seq_s = sequential.sample_counts(&c, &[], &[], &phys, 256);
    for workers in [Workers::Fixed(2), Workers::Fixed(4), Workers::Auto] {
        let parallel = TrajectoryExecutor::new(Device::yorktown(), cfg).with_workers(workers);
        let par_e = parallel.expect_z(&c, &[], &[], &phys);
        assert_eq!(
            seq_e.expect_z, par_e.expect_z,
            "{workers:?}: expectations drifted"
        );
        let par_m = parallel.expect_z_masks(&c, &[], &[], &phys, &[0b101, 0b011]);
        assert_eq!(seq_m, par_m, "{workers:?}: parity masks drifted");
        let par_s = parallel.sample_counts(&c, &[], &[], &phys, 256);
        assert_eq!(seq_s, par_s, "{workers:?}: sampled counts drifted");
    }
}

/// The backend switch must not change trajectory physics: every backend
/// in the matrix agrees with the reference oracle per-trajectory (same
/// seeds, same Kraus draws), so the averages match to solver precision.
#[test]
fn fast_and_reference_backends_agree_on_trajectories() {
    let c = noisy_circuit();
    let phys = [0usize, 1, 2];
    let cfg = TrajectoryConfig {
        trajectories: 50,
        seed: 13,
        readout: true,
    };
    let oracle = TrajectoryExecutor::new(Device::yorktown(), cfg)
        .with_backend(SimBackend::Reference)
        .expect_z(&c, &[], &[], &phys);
    common::for_each_backend(|backend, label| {
        let got = TrajectoryExecutor::new(Device::yorktown(), cfg)
            .with_backend(backend)
            .expect_z(&c, &[], &[], &phys);
        for (q, (a, b)) in got.expect_z.iter().zip(oracle.expect_z.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-10,
                "qubit {q}: {label} {a} vs reference {b}"
            );
        }
    });
}

/// Trajectory seeds derive from the candidate digest: a different
/// parameter vector draws different noise realizations, while the same
/// candidate always sees the same ones.
#[test]
fn seeds_follow_the_candidate() {
    let mut c = Circuit::new(2);
    c.push(GateKind::RY, &[0], &[Param::Train(0)]);
    c.push(GateKind::CX, &[0, 1], &[]);
    let phys = [0usize, 1];
    let cfg = TrajectoryConfig {
        trajectories: 20,
        seed: 3,
        readout: false,
    };
    let exec = TrajectoryExecutor::new(Device::yorktown().scaled_errors(3.0), cfg);
    let a = exec.expect_z(&c, &[0.4], &[], &phys);
    let a_again = exec.expect_z(&c, &[0.4], &[], &phys);
    assert_eq!(a.expect_z, a_again.expect_z, "same candidate, same draws");
}
