//! Determinism and quality drills for the proxy-prescreening stage.
//!
//! The prescreener must never cost the search its core invariants: proxy
//! scores (and therefore the whole search trajectory) are bitwise
//! reproducible across worker counts and kill/resume, and the fusion
//! model's ranking is good enough that escalating a fraction of each
//! generation still recovers most of the genuinely-best candidates.

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use qns_noise::Device;
use qns_runtime::counters;
use quantumnas::{
    candidate_seed, compute_features, evolutionary_search_seeded_rt, gene_key, CheckpointOptions,
    DesignSpace, Estimator, EstimatorKind, EvoConfig, FaultPlan, Gene, Prescreener, ProxyContext,
    ProxyFeatures, ProxyOptions, RuntimeOptions, SearchResult, SearchRuntime, SpaceKind, SubConfig,
    SuperCircuit, Task, FAULT_MARKER,
};

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("qns-proxy-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup() -> (SuperCircuit, Vec<f64>, Task, Estimator) {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let task = Task::qml_digits(&[1, 8], 15, 4, 4);
    let params: Vec<f64> = (0..sc.num_params())
        .map(|i| 0.2 * ((i % 5) as f64) - 0.4)
        .collect();
    let est = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1).with_valid_cap(4);
    (sc, params, task, est)
}

fn proxy_cfg(runtime: RuntimeOptions) -> EvoConfig {
    EvoConfig {
        iterations: 4,
        population: 8,
        parents: 3,
        mutations: 3,
        crossovers: 2,
        runtime,
        proxy: ProxyOptions {
            enabled: true,
            keep: 0.5,
            warmup: 1,
        },
        ..EvoConfig::fast(17)
    }
}

fn assert_search_bitwise_eq(a: &SearchResult, b: &SearchResult) {
    assert_eq!(a.best, b.best);
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.memo_hits, b.memo_hits);
    assert_eq!(a.proxy_evals, b.proxy_evals);
    assert_eq!(a.proxy_escalations, b.proxy_escalations);
    assert_eq!(a.proxy_dedup_hits, b.proxy_dedup_hits);
}

/// Proxy scores derive from splitmix64 candidate seeds, never from
/// evaluation order, so the whole prescreened search is worker-count
/// independent.
#[test]
fn proxy_search_is_bitwise_identical_across_worker_counts() {
    let (sc, params, task, est) = setup();
    let mut results = Vec::new();
    for workers in [1usize, 2, 4] {
        let cfg = proxy_cfg(RuntimeOptions {
            workers,
            ..Default::default()
        });
        let rt = SearchRuntime::new(cfg.runtime.clone());
        results.push(evolutionary_search_seeded_rt(
            &sc,
            &params,
            &task,
            &est,
            &cfg,
            &[],
            &rt,
        ));
    }
    assert!(results[0].proxy_evals > 0, "prescreening never ran");
    assert!(results[0].proxy_escalations > 0);
    assert_search_bitwise_eq(&results[1], &results[0]);
    assert_search_bitwise_eq(&results[2], &results[0]);
}

/// Runs `f`, asserting it dies with an injected boundary crash.
fn expect_boundary_crash(f: impl FnOnce()) {
    let payload = catch_unwind(AssertUnwindSafe(f)).expect_err("run should crash");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.starts_with(FAULT_MARKER),
        "crash was not the injected one: {msg:?}"
    );
}

/// The prescreener state (fusion weights, feature cache, counters) rides
/// in the search snapshot: a killed-and-resumed proxy search finishes
/// bitwise-identical to an uninterrupted one.
#[test]
fn proxy_search_killed_and_resumed_is_bitwise_identical() {
    let (sc, params, task, est) = setup();
    let reference = {
        let cfg = proxy_cfg(RuntimeOptions::default());
        let rt = SearchRuntime::new(cfg.runtime.clone());
        evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt)
    };
    for boundary in [1u64, 2, 3] {
        let dir = TempDir::new(&format!("resume-b{boundary}"));
        let ck = CheckpointOptions::new(dir.path());
        let crash_cfg = proxy_cfg(RuntimeOptions {
            checkpoint: Some(ck.clone()),
            ..Default::default()
        });
        let rt = SearchRuntime::new(crash_cfg.runtime.clone())
            .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(boundary)));
        expect_boundary_crash(|| {
            evolutionary_search_seeded_rt(&sc, &params, &task, &est, &crash_cfg, &[], &rt);
        });

        let resume_cfg = proxy_cfg(RuntimeOptions {
            checkpoint: Some(ck.resume()),
            ..Default::default()
        });
        let rt = SearchRuntime::new(resume_cfg.runtime.clone());
        let resumed =
            evolutionary_search_seeded_rt(&sc, &params, &task, &est, &resume_cfg, &[], &rt);
        assert_eq!(
            rt.metrics().counter(counters::CHECKPOINT_RESUMES),
            1,
            "resume was not recorded (boundary {boundary})"
        );
        assert_search_bitwise_eq(&resumed, &reference);
    }
}

/// A proxy-enabled snapshot must not resume a proxy-off run (and vice
/// versa): the options are part of the context digest.
#[test]
fn proxy_snapshot_is_rejected_by_proxy_off_run() {
    let (sc, params, task, est) = setup();
    let dir = TempDir::new("mismatch");
    let ck = CheckpointOptions::new(dir.path());
    let crash_cfg = proxy_cfg(RuntimeOptions {
        checkpoint: Some(ck.clone()),
        ..Default::default()
    });
    let rt = SearchRuntime::new(crash_cfg.runtime.clone())
        .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(2)));
    expect_boundary_crash(|| {
        evolutionary_search_seeded_rt(&sc, &params, &task, &est, &crash_cfg, &[], &rt);
    });

    let mut off_cfg = proxy_cfg(RuntimeOptions {
        checkpoint: Some(ck.resume()),
        ..Default::default()
    });
    off_cfg.proxy = ProxyOptions::default();
    let rt = SearchRuntime::new(off_cfg.runtime.clone());
    let result = evolutionary_search_seeded_rt(&sc, &params, &task, &est, &off_cfg, &[], &rt);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_REJECTED), 1);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_RESUMES), 0);
    assert_eq!(result.proxy_evals, 0, "proxy-off run ran the prescreener");
}

/// A deterministic spread of candidates over the 4-qubit U3+CU3 space:
/// every (depth, width-pattern, layout-rotation) combination.
fn candidate_genes(n_phys: usize) -> Vec<Gene> {
    let mut genes = Vec::new();
    for nb in 1..=2usize {
        for a in 1..=4usize {
            for b in 1..=4usize {
                let r = (nb * 7 + a * 3 + b) % n_phys;
                let layout: Vec<usize> = (0..4).map(|q| (q + r) % n_phys).collect();
                genes.push(Gene {
                    config: SubConfig {
                        n_blocks: nb,
                        widths: vec![vec![a, b], vec![b, a]],
                    },
                    layout,
                });
            }
        }
    }
    genes
}

/// Trained on the full scores it would see during a search, the fusion
/// model's top-half selection recovers at least half of the true
/// top-quarter candidates.
#[test]
fn prescreener_topk_recall_beats_floor() {
    let (sc, params, task, est) = setup();
    let encoder = match &task {
        Task::Qml { encoder, .. } => encoder.clone(),
        _ => unreachable!(),
    };
    let genes = candidate_genes(est.device().num_qubits());
    let scores: Vec<f64> = genes
        .iter()
        .map(|g| {
            let circuit = sc.build(&g.config, Some(&encoder));
            est.score(&circuit, &params, &task, &g.layout())
        })
        .collect();
    let features: Vec<ProxyFeatures> = genes
        .iter()
        .map(|g| {
            let circuit = sc.build(&g.config, Some(&encoder));
            let key = gene_key(g);
            compute_features(&ProxyContext {
                circuit: &circuit,
                device: est.device(),
                layout: &g.layout,
                seed: candidate_seed(7, key.lo, key.hi),
            })
        })
        .collect();
    assert!(features.iter().all(ProxyFeatures::is_finite));

    let mut pre = Prescreener::new(ProxyOptions {
        enabled: true,
        keep: 0.5,
        warmup: 0,
    });
    // Two passes of online observations — the same volume a short search
    // would deliver.
    for _ in 0..2 {
        for (f, &s) in features.iter().zip(&scores) {
            pre.observe(f, s);
        }
    }
    let predicted: Vec<f64> = features.iter().map(|f| pre.predict(f)).collect();
    let kept = pre.select(&predicted, genes.len() / 2);

    let mut by_score: Vec<usize> = (0..genes.len()).collect();
    by_score.sort_by(|&i, &j| scores[i].total_cmp(&scores[j]));
    let top_k = genes.len() / 4;
    let truly_best: std::collections::HashSet<usize> = by_score[..top_k].iter().copied().collect();
    let recalled = kept.iter().filter(|i| truly_best.contains(i)).count();
    let recall = recalled as f64 / top_k as f64;
    assert!(
        recall >= 0.5,
        "top-{top_k} recall {recall:.2} below the 0.5 floor (recalled {recalled})"
    );
}

/// The headline trade: prescreening lets a 4x-larger population reach a
/// final score at least as good as the default population's (mean over
/// three search seeds), while each run spends at most 1.5x the baseline's
/// full-estimator evaluations. Duplicate offspring are skipped before
/// any scoring along the way.
#[test]
fn larger_population_under_proxy_matches_baseline_within_budget() {
    let (sc, params, task, est) = setup();
    let mut base_scores = Vec::new();
    let mut proxy_scores = Vec::new();
    for seed in [5u64, 11, 42] {
        let baseline_cfg = EvoConfig {
            iterations: 5,
            population: 8,
            parents: 3,
            mutations: 3,
            crossovers: 2,
            ..EvoConfig::fast(seed)
        };
        let baseline = {
            let rt = SearchRuntime::new(baseline_cfg.runtime.clone());
            evolutionary_search_seeded_rt(&sc, &params, &task, &est, &baseline_cfg, &[], &rt)
        };
        assert_eq!(baseline.proxy_evals, 0);
        assert_eq!(baseline.proxy_escalations, 0);
        assert_eq!(baseline.proxy_dedup_hits, 0);

        // Same generation count over a 4x population; every offspring slot
        // filled by mutation/crossover (parents + 17 + 12 = 32).
        let proxy_config = EvoConfig {
            iterations: 5,
            population: 32,
            parents: 3,
            mutations: 17,
            crossovers: 12,
            proxy: ProxyOptions {
                enabled: true,
                keep: 0.2,
                warmup: 1,
            },
            ..EvoConfig::fast(seed)
        };
        let proxied = {
            let rt = SearchRuntime::new(proxy_config.runtime.clone());
            evolutionary_search_seeded_rt(&sc, &params, &task, &est, &proxy_config, &[], &rt)
        };

        let budget = proxied.candidates() as f64 / baseline.candidates() as f64;
        assert!(
            budget <= 1.5,
            "seed {seed}: proxy run spent {budget}x the baseline's full evaluations \
             ({} vs {})",
            proxied.candidates(),
            baseline.candidates()
        );
        assert!(
            proxied.proxy_dedup_hits > 0,
            "seed {seed}: no duplicate offspring were skipped"
        );
        assert!(proxied.proxy_evals > 0);
        // Every scored candidate passed through the escalation gate.
        assert_eq!(proxied.proxy_escalations as usize, proxied.candidates());
        base_scores.push(baseline.best_score);
        proxy_scores.push(proxied.best_score);
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    assert!(
        mean(&proxy_scores) <= mean(&base_scores),
        "4x population under proxy scored {proxy_scores:?} vs baseline {base_scores:?}"
    );
}

/// Prescreening never changes the snapshot wire kind: a proxy-on scalar
/// search still writes scalar-kind frames (the proxy state travels inside
/// the payload, not as a separate kind).
#[test]
fn proxy_on_search_snapshots_keep_the_scalar_wire_kind() {
    let (sc, params, task, est) = setup();
    let dir = common::TempDir::new("proxy-kind");
    let cfg = proxy_cfg(RuntimeOptions {
        workers: 1,
        checkpoint: Some(CheckpointOptions::new(dir.path())),
        ..Default::default()
    });
    let rt = SearchRuntime::new(cfg.runtime.clone());
    let result = evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt);
    assert!(result.proxy_evals > 0, "prescreening never ran");
    assert_eq!(
        common::snapshot_kind(dir.path(), "search"),
        u32::from_le_bytes(*b"SEAR")
    );
    assert_eq!(
        common::snapshot_kinds(dir.path()),
        vec![u32::from_le_bytes(*b"SEAR")]
    );
}
