//! Cross-crate behavior of the search and pruning stages.

mod common;

use qns_noise::Device;
use qns_transpile::{transpile, Layout};
use quantumnas::{
    evolutionary_search, evolutionary_search_seeded_rt, human_design, iterative_prune,
    random_search, train_supercircuit, train_task, CheckpointOptions, DesignSpace, Estimator,
    EstimatorKind, EvoConfig, PruneConfig, RuntimeOptions, SearchRuntime, SpaceKind, SuperCircuit,
    SuperTrainConfig, Task, TrainConfig,
};

fn setup() -> (SuperCircuit, Vec<f64>, Task) {
    let task = Task::qml_digits(&[3, 6], 40, 4, 29);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let (shared, _) = train_supercircuit(
        &sc,
        &task,
        &SuperTrainConfig {
            steps: 60,
            batch_size: 8,
            warmup_steps: 6,
            ..Default::default()
        },
    );
    (sc, shared, task)
}

#[test]
fn search_respects_parameter_budget() {
    let (sc, shared, task) = setup();
    let est = Estimator::new(Device::belem(), EstimatorKind::SuccessRate, 2).with_valid_cap(6);
    let budget = 18;
    let cfg = EvoConfig {
        max_params: Some(budget),
        ..EvoConfig::fast(3)
    };
    let result = evolutionary_search(&sc, &shared, &task, &est, &cfg);
    let circuit = match &task {
        Task::Qml { encoder, .. } => sc.build(&result.best.config, Some(encoder)),
        _ => unreachable!(),
    };
    assert!(
        circuit.referenced_train_indices().len() <= budget,
        "budget violated: {}",
        circuit.referenced_train_indices().len()
    );
    assert!(result.best_score < 1e8, "no feasible gene found");
}

#[test]
fn ablation_flags_freeze_components() {
    let (sc, shared, task) = setup();
    let est = Estimator::new(Device::belem(), EstimatorKind::SuccessRate, 2).with_valid_cap(6);
    // Mapping-only search: architecture stays maximal.
    let cfg = EvoConfig {
        search_arch: false,
        ..EvoConfig::fast(5)
    };
    let r = evolutionary_search(&sc, &shared, &task, &est, &cfg);
    assert_eq!(r.best.config, sc.max_config());
    // Circuit-only search: layout stays trivial.
    let cfg = EvoConfig {
        search_layout: false,
        ..EvoConfig::fast(5)
    };
    let r = evolutionary_search(&sc, &shared, &task, &est, &cfg);
    assert_eq!(r.best.layout, vec![0, 1, 2, 3]);
}

#[test]
fn random_search_histories_are_monotone_and_comparable() {
    let (sc, shared, task) = setup();
    let est = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 2).with_valid_cap(6);
    let cfg = EvoConfig::fast(7);
    let evo = evolutionary_search(&sc, &shared, &task, &est, &cfg);
    let rnd = random_search(&sc, &shared, &task, &est, &cfg);
    for h in [&evo.history, &rnd.history] {
        for w in h.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }
    // Same candidate budget; the memoized/evaluated split may differ.
    assert_eq!(
        evo.evaluations + evo.memo_hits,
        rnd.evaluations + rnd.memo_hits
    );
}

#[test]
fn pruning_preserves_accuracy_and_shrinks_compiled_circuit() {
    let task = Task::qml_digits(&[3, 6], 60, 4, 31);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let cfg = human_design(&sc, 36);
    let circuit = match &task {
        Task::Qml { encoder, .. } => sc.build(&cfg, Some(encoder)),
        _ => unreachable!(),
    };
    let (params, _) = train_task(
        &circuit,
        &task,
        &TrainConfig {
            epochs: 15,
            batch_size: 12,
            lr: 0.02,
            ..Default::default()
        },
        None,
    );
    let before = quantumnas::eval_task(&circuit, &params, &task, quantumnas::Split::Valid).0;
    let pruned = iterative_prune(
        &circuit,
        &params,
        &task,
        &PruneConfig {
            final_ratio: 0.3,
            steps: 2,
            finetune_epochs: 5,
            lr: 5e-3,
            ..Default::default()
        },
    );
    // Noise-free loss should not collapse (within 30% of the unpruned).
    assert!(
        pruned.final_loss < before * 1.3 + 0.1,
        "pruning destroyed the circuit: {} -> {}",
        before,
        pruned.final_loss
    );
    // And the compiled circuit must shrink.
    let dev = Device::yorktown();
    let t_before = transpile(&circuit, &dev, &Layout::trivial(4), 2);
    let t_after = transpile(&pruned.circuit, &dev, &Layout::trivial(4), 2);
    assert!(t_after.circuit.num_ops() < t_before.circuit.num_ops());
}

/// The scalar search's snapshots carry the scalar wire kind — asserted
/// through the shared helper, so a run that starts writing a different
/// kind (e.g. the Pareto engine's) cannot silently pass this suite's
/// stale-context expectations.
#[test]
fn scalar_search_snapshots_carry_the_scalar_wire_kind() {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let task = Task::qml_digits(&[1, 8], 15, 4, 4);
    let shared: Vec<f64> = (0..sc.num_params())
        .map(|i| 0.2 * ((i % 5) as f64) - 0.4)
        .collect();
    let est = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1).with_valid_cap(4);
    let dir = common::TempDir::new("scalar-kind");
    let cfg = EvoConfig {
        iterations: 2,
        population: 6,
        parents: 2,
        mutations: 2,
        crossovers: 2,
        runtime: RuntimeOptions {
            workers: 1,
            checkpoint: Some(CheckpointOptions::new(dir.path())),
            ..Default::default()
        },
        ..EvoConfig::fast(17)
    };
    let rt = SearchRuntime::new(cfg.runtime.clone());
    evolutionary_search_seeded_rt(&sc, &shared, &task, &est, &cfg, &[], &rt);
    assert_eq!(
        common::snapshot_kind(dir.path(), "search"),
        u32::from_le_bytes(*b"SEAR")
    );
    assert_eq!(
        common::snapshot_kinds(dir.path()),
        vec![u32::from_le_bytes(*b"SEAR")]
    );
}
