//! Differential battery for the fast simulation path.
//!
//! [`SimBackend::Reference`] is the original naive per-gate simulator,
//! kept verbatim as the oracle. Every test here drives random circuits
//! through the fast structure-specialized kernels — with fusion off
//! (`ExecMode::Dynamic`) and on (`ExecMode::Static`), across explicit
//! fusion levels 0–3 and transpiler optimization levels 0–3 — and
//! demands agreement with the oracle to 1e-10 in amplitudes and
//! expectation values.

mod common;

use proptest::prelude::*;
use qns_circuit::{Circuit, GateKind, Param};
use qns_sim::{run_with, ExecMode, FusedProgram, SimBackend, StateVec};
use qns_transpile::optimize;

const TOL: f64 = 1e-10;

fn assert_amplitudes_close(fast: &StateVec, oracle: &StateVec, what: &str) {
    for (i, (a, b)) in fast
        .amplitudes()
        .iter()
        .zip(oracle.amplitudes())
        .enumerate()
    {
        let d = ((a.re - b.re).powi(2) + (a.im - b.im).powi(2)).sqrt();
        assert!(d < TOL, "{what}: amplitude {i} differs by {d:e}");
    }
    for (q, (ez_f, ez_o)) in fast
        .expect_z_all()
        .iter()
        .zip(oracle.expect_z_all())
        .enumerate()
    {
        assert!(
            (ez_f - ez_o).abs() < TOL,
            "{what}: <Z_{q}> differs: {ez_f} vs {ez_o}"
        );
    }
}

/// Strategy: a random circuit over 1..=8 qubits drawing from EVERY gate
/// template the circuit crate ships.
fn arb_any_circuit() -> impl Strategy<Value = (Circuit, Vec<f64>)> {
    (
        1usize..=8,
        prop::collection::vec(
            (
                0..GateKind::all().len(),
                0usize..8,
                0usize..8,
                prop::collection::vec(-3.0..3.0f64, 3),
            ),
            1..40,
        ),
    )
        .prop_map(|(n, ops)| {
            let mut c = Circuit::new(n);
            let mut train = Vec::new();
            for (gi, a, b, vals) in ops {
                let kind = GateKind::all()[gi];
                if kind.num_qubits() == 2 && n == 1 {
                    continue; // no pair available on a single wire
                }
                let (a, b) = (a % n, b % n);
                let qs: Vec<usize> = if kind.num_qubits() == 1 {
                    vec![a]
                } else if a != b {
                    vec![a, b]
                } else {
                    vec![a, (a + 1) % n]
                };
                let ps: Vec<Param> = (0..kind.num_params())
                    .map(|k| {
                        train.push(vals[k]);
                        Param::Train(train.len() - 1)
                    })
                    .collect();
                c.push(kind, &qs, &ps);
            }
            (c, train)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every backend in the matrix agrees with the oracle with fusion
    /// off and on.
    #[test]
    fn fast_agrees_with_reference_both_modes((circuit, train) in arb_any_circuit()) {
        let oracle = run_with(&circuit, &train, &[], ExecMode::Dynamic, SimBackend::Reference);
        common::for_each_backend(|backend, label| {
            for mode in [ExecMode::Dynamic, ExecMode::Static] {
                let got = run_with(&circuit, &train, &[], mode, backend);
                assert_amplitudes_close(&got, &oracle, &format!("{label} {mode:?}"));
            }
        });
    }

    /// Every fusion level 0..=3 agrees with the oracle.
    #[test]
    fn all_fusion_levels_agree_with_reference((circuit, train) in arb_any_circuit()) {
        let oracle = run_with(&circuit, &train, &[], ExecMode::Dynamic, SimBackend::Reference);
        for level in 0..=3u8 {
            let prog = FusedProgram::compile_with_level(&circuit, &train, &[], level);
            let mut fast = StateVec::zero_state(circuit.num_qubits());
            prog.apply(&mut fast);
            assert_amplitudes_close(&fast, &oracle, &format!("fusion level {level}"));
        }
    }

    /// The fast path agrees with the oracle on the SAME circuit after
    /// every transpiler optimization level reshapes it.
    #[test]
    fn fast_agrees_with_reference_across_opt_levels((circuit, train) in arb_any_circuit()) {
        for level in 0..=3u8 {
            let opt = optimize(&circuit, level);
            let oracle = run_with(&opt, &train, &[], ExecMode::Dynamic, SimBackend::Reference);
            let fast = run_with(&opt, &train, &[], ExecMode::Static, SimBackend::Fast);
            assert_amplitudes_close(&fast, &oracle, &format!("opt level {level}"));
        }
    }
}

/// Input-encoded circuits (the QML forward pass shape) agree too.
#[test]
fn input_encoded_circuits_agree() {
    let n = 4;
    let mut c = Circuit::new(n);
    let mut t = 0;
    for q in 0..n {
        c.push(GateKind::RY, &[q], &[Param::Input(q)]);
        c.push(
            GateKind::RZ,
            &[q],
            &[Param::AffineInput {
                index: q,
                scale: 0.5,
                offset: 0.1,
            }],
        );
    }
    for layer in 0..3 {
        for q in 0..n {
            c.push(
                GateKind::U3,
                &[q],
                &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
            );
            t += 3;
        }
        for q in 0..n {
            c.push(
                GateKind::CU3,
                &[q, (q + 1) % n],
                &[
                    Param::Train(t),
                    Param::Fixed(0.3 + layer as f64),
                    Param::Train(t + 1),
                ],
            );
            t += 2;
        }
    }
    let train: Vec<f64> = (0..t).map(|i| 0.2 * (i as f64) - 1.0).collect();
    for sample in 0..5 {
        let input: Vec<f64> = (0..n).map(|q| 0.3 * (q + sample) as f64).collect();
        let oracle = run_with(&c, &train, &input, ExecMode::Dynamic, SimBackend::Reference);
        common::for_each_backend(|backend, label| {
            for mode in [ExecMode::Dynamic, ExecMode::Static] {
                let got = run_with(&c, &train, &input, mode, backend);
                assert_amplitudes_close(
                    &got,
                    &oracle,
                    &format!("sample {sample} {label} {mode:?}"),
                );
            }
        });
    }
}

/// The default backend is the fast path — the oracle is opt-in.
#[test]
fn fast_is_the_default_backend() {
    assert_eq!(SimBackend::default(), SimBackend::Fast);
}
