//! Gradient cross-checks for the batched parameter-shift path.
//!
//! The batched path compiles one fusion plan, materializes its blocks
//! once, and replays only the dirty blocks per shifted parameter set.
//! These tests pin it against central finite differences (1e-6) and
//! demand bit-identity with N independent shifted runs.

use qns_circuit::{Circuit, GateKind, Param};
use qns_sim::{
    parameter_shift_gradient, run, shifted_expectations, DiagObservable, ExecMode, Observable,
};

/// A 4-qubit layered ansatz mixing shiftable rotations with gates that
/// force the finite-difference fallback (U2/U3 components).
fn ansatz() -> (Circuit, Vec<f64>) {
    let n = 4;
    let mut c = Circuit::new(n);
    let mut t = 0;
    for _ in 0..2 {
        for q in 0..n {
            c.push(GateKind::RX, &[q], &[Param::Train(t)]);
            c.push(GateKind::RY, &[q], &[Param::Train(t + 1)]);
            t += 2;
        }
        for q in 0..n {
            c.push(GateKind::CRZ, &[q, (q + 1) % n], &[Param::Train(t)]);
            t += 1;
        }
    }
    let params: Vec<f64> = (0..t).map(|i| 0.15 * (i as f64) - 0.9).collect();
    (c, params)
}

fn obs() -> DiagObservable {
    DiagObservable::new(vec![1.0, -0.5, 0.25, 0.7])
}

#[test]
fn batched_parameter_shift_matches_finite_differences() {
    let (circuit, params) = ansatz();
    let obs = obs();
    let grad = parameter_shift_gradient(&circuit, &params, &[], &obs);
    let h = 1e-5;
    for i in 0..params.len() {
        let mut p = params.clone();
        p[i] += h;
        let up = obs.expect(&run(&circuit, &p, &[], ExecMode::Static));
        p[i] = params[i] - h;
        let dn = obs.expect(&run(&circuit, &p, &[], ExecMode::Static));
        let fd = (up - dn) / (2.0 * h);
        assert!(
            (grad[i] - fd).abs() < 1e-6,
            "param {i}: shift {} vs fd {fd}",
            grad[i]
        );
    }
}

#[test]
fn batched_shifts_equal_sequential_shifted_runs_exactly() {
    let (circuit, params) = ansatz();
    let obs = obs();
    let shifts: Vec<(usize, f64)> = (0..params.len())
        .flat_map(|i| {
            [
                (i, std::f64::consts::FRAC_PI_2),
                (i, -std::f64::consts::FRAC_PI_2),
            ]
        })
        .collect();
    let batched = shifted_expectations(&circuit, &params, &[], &obs, &shifts);
    assert_eq!(batched.len(), shifts.len());
    for (k, &(i, d)) in shifts.iter().enumerate() {
        let mut p = params.clone();
        p[i] += d;
        let lone = obs.expect(&run(&circuit, &p, &[], ExecMode::Static));
        // Bit-identical, not merely close: the replay reuses the same
        // block matrices the full compile would produce.
        assert_eq!(
            batched[k].to_bits(),
            lone.to_bits(),
            "shift {k} (param {i}, delta {d}): batched {} vs sequential {lone}",
            batched[k]
        );
    }
}

#[test]
fn gradient_agrees_with_input_encoded_circuit() {
    let n = 3;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(GateKind::RY, &[q], &[Param::Input(q)]);
    }
    let mut t = 0;
    for q in 0..n {
        c.push(GateKind::RZ, &[q], &[Param::Train(t)]);
        c.push(GateKind::CX, &[q, (q + 1) % n], &[]);
        c.push(GateKind::RX, &[q], &[Param::Train(t + 1)]);
        t += 2;
    }
    let params: Vec<f64> = (0..t).map(|i| 0.3 * (i as f64) - 0.5).collect();
    let input = vec![0.4, -0.2, 1.1];
    let obs = DiagObservable::new(vec![0.5; n]);
    let grad = parameter_shift_gradient(&c, &params, &input, &obs);
    let h = 1e-5;
    for i in 0..params.len() {
        let mut p = params.clone();
        p[i] += h;
        let up = obs.expect(&run(&c, &p, &input, ExecMode::Static));
        p[i] = params[i] - h;
        let dn = obs.expect(&run(&c, &p, &input, ExecMode::Static));
        let fd = (up - dn) / (2.0 * h);
        assert!(
            (grad[i] - fd).abs() < 1e-6,
            "param {i}: shift {} vs fd {fd}",
            grad[i]
        );
    }
}
