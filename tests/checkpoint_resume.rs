//! Kill-and-resume drills for the three checkpointed loops.
//!
//! Each test runs a loop to completion for reference, then reruns it with
//! checkpointing on and a [`FaultPlan`] boundary crash (the panic escapes
//! every isolation scope, like a real kill), then resumes from the
//! snapshot directory. The resumed run must be *bitwise* identical to the
//! uninterrupted reference — same floats, same genes, same histories —
//! across crash boundaries and worker counts.

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use qns_noise::Device;
use qns_runtime::counters;
use quantumnas::{
    evolutionary_search_pareto_rt, evolutionary_search_seeded_rt, iterative_prune_rt,
    train_supercircuit_rt, CheckpointOptions, DesignSpace, Estimator, EstimatorKind, EvoConfig,
    FaultPlan, Objective, ParetoSearchResult, PruneConfig, PruneResult, RuntimeOptions,
    SearchResult, SearchRuntime, SpaceKind, SuperCircuit, SuperTrainConfig, Task, FAULT_MARKER,
};

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("qns-resume-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup() -> (SuperCircuit, Vec<f64>, Task, Estimator) {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let task = Task::qml_digits(&[1, 8], 15, 4, 4);
    let params: Vec<f64> = (0..sc.num_params())
        .map(|i| 0.2 * ((i % 5) as f64) - 0.4)
        .collect();
    let est = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1).with_valid_cap(4);
    (sc, params, task, est)
}

fn evo_cfg(runtime: RuntimeOptions) -> EvoConfig {
    EvoConfig {
        iterations: 4,
        population: 8,
        parents: 3,
        mutations: 3,
        crossovers: 2,
        runtime,
        ..EvoConfig::fast(17)
    }
}

fn ckpt_options(dir: &Path, workers: usize, resume: bool) -> RuntimeOptions {
    let ck = CheckpointOptions::new(dir);
    RuntimeOptions {
        workers,
        cache: true,
        checkpoint: Some(if resume { ck.resume() } else { ck }),
        ..Default::default()
    }
}

/// Runs `f`, asserting it dies with an injected boundary crash.
fn expect_boundary_crash(f: impl FnOnce()) {
    let payload = catch_unwind(AssertUnwindSafe(f)).expect_err("run should crash");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.starts_with(FAULT_MARKER),
        "crash was not the injected one: {msg:?}"
    );
}

fn assert_search_bitwise_eq(resumed: &SearchResult, reference: &SearchResult) {
    assert_eq!(resumed.best, reference.best);
    assert_eq!(resumed.best_score.to_bits(), reference.best_score.to_bits());
    assert_eq!(resumed.history.len(), reference.history.len());
    for (a, b) in resumed.history.iter().zip(&reference.history) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(resumed.evaluations, reference.evaluations);
    assert_eq!(resumed.memo_hits, reference.memo_hits);
}

fn assert_f64s_bitwise_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} != {y}");
    }
}

/// The acceptance criterion: a search killed at any generation boundary
/// and resumed produces a bitwise-identical [`SearchResult`], at one and
/// at several workers.
#[test]
fn search_killed_and_resumed_is_bitwise_identical() {
    let (sc, params, task, est) = setup();
    for workers in [1usize, 2] {
        let reference = {
            let cfg = evo_cfg(RuntimeOptions {
                workers,
                ..Default::default()
            });
            let rt = SearchRuntime::new(cfg.runtime.clone());
            evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt)
        };
        for boundary in [1u64, 2, 3] {
            let dir = TempDir::new(&format!("search-w{workers}-b{boundary}"));
            let crash_cfg = evo_cfg(ckpt_options(dir.path(), workers, false));
            let rt = SearchRuntime::new(crash_cfg.runtime.clone())
                .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(boundary)));
            expect_boundary_crash(|| {
                evolutionary_search_seeded_rt(&sc, &params, &task, &est, &crash_cfg, &[], &rt);
            });

            let resume_cfg = evo_cfg(ckpt_options(dir.path(), workers, true));
            let rt = SearchRuntime::new(resume_cfg.runtime.clone());
            let resumed =
                evolutionary_search_seeded_rt(&sc, &params, &task, &est, &resume_cfg, &[], &rt);
            assert_eq!(
                rt.metrics().counter(counters::CHECKPOINT_RESUMES),
                1,
                "resume was not recorded (workers {workers}, boundary {boundary})"
            );
            assert_search_bitwise_eq(&resumed, &reference);
        }
    }
}

fn assert_pareto_bitwise_eq(resumed: &ParetoSearchResult, reference: &ParetoSearchResult) {
    assert_eq!(resumed.front.len(), reference.front.len(), "front size");
    for (a, b) in resumed.front.iter().zip(&reference.front) {
        assert_eq!(a.gene, b.gene);
        assert_eq!(a.objectives.len(), b.objectives.len());
        for (x, y) in a.objectives.iter().zip(&b.objectives) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    assert_eq!(resumed.best, reference.best);
    assert_eq!(resumed.best_score.to_bits(), reference.best_score.to_bits());
    assert_f64s_bitwise_eq(&resumed.history, &reference.history, "history");
    assert_eq!(resumed.evaluations, reference.evaluations);
    assert_eq!(resumed.memo_hits, reference.memo_hits);
}

/// The multi-objective acceptance criterion: a Pareto search killed at
/// any generation boundary and resumed produces a bitwise-identical final
/// front (genes and objective bits), at one and at several workers — and
/// the fronts also agree *across* worker counts.
#[test]
fn pareto_search_killed_and_resumed_is_bitwise_identical() {
    let (sc, params, task, est) = setup();
    let objectives = [Objective::Loss, Objective::Depth, Objective::TwoQ];
    let mut reference_w1: Option<ParetoSearchResult> = None;
    for workers in [1usize, 4] {
        let reference = {
            let cfg = evo_cfg(RuntimeOptions {
                workers,
                ..Default::default()
            });
            let rt = SearchRuntime::new(cfg.runtime.clone());
            evolutionary_search_pareto_rt(&sc, &params, &task, &est, &cfg, &objectives, &[], &rt)
        };
        if let Some(w1) = &reference_w1 {
            assert_pareto_bitwise_eq(&reference, w1);
        } else {
            reference_w1 = Some(reference.clone());
        }
        for boundary in [1u64, 2, 3] {
            let dir = TempDir::new(&format!("pareto-w{workers}-b{boundary}"));
            let crash_cfg = evo_cfg(ckpt_options(dir.path(), workers, false));
            let rt = SearchRuntime::new(crash_cfg.runtime.clone())
                .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(boundary)));
            expect_boundary_crash(|| {
                evolutionary_search_pareto_rt(
                    &sc,
                    &params,
                    &task,
                    &est,
                    &crash_cfg,
                    &objectives,
                    &[],
                    &rt,
                );
            });
            assert_eq!(
                common::snapshot_kind(dir.path(), "pareto"),
                u32::from_le_bytes(*b"PARE"),
                "pareto snapshots must carry their own wire kind"
            );

            let resume_cfg = evo_cfg(ckpt_options(dir.path(), workers, true));
            let rt = SearchRuntime::new(resume_cfg.runtime.clone());
            let resumed = evolutionary_search_pareto_rt(
                &sc,
                &params,
                &task,
                &est,
                &resume_cfg,
                &objectives,
                &[],
                &rt,
            );
            assert_eq!(
                rt.metrics().counter(counters::CHECKPOINT_RESUMES),
                1,
                "resume was not recorded (workers {workers}, boundary {boundary})"
            );
            assert_pareto_bitwise_eq(&resumed, &reference);
        }
    }
}

#[test]
fn training_killed_and_resumed_is_bitwise_identical() {
    let (sc, _, task, _) = setup();
    let cfg = SuperTrainConfig {
        steps: 6,
        batch_size: 4,
        warmup_steps: 1,
        seed: 7,
        ..Default::default()
    };
    let reference = {
        let rt = SearchRuntime::new(RuntimeOptions::default());
        train_supercircuit_rt(&sc, &task, &cfg, &rt)
    };
    for boundary in [1u64, 3, 5] {
        let dir = TempDir::new(&format!("train-b{boundary}"));
        let rt = SearchRuntime::new(ckpt_options(dir.path(), 0, false))
            .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(boundary)));
        expect_boundary_crash(|| {
            train_supercircuit_rt(&sc, &task, &cfg, &rt);
        });

        // Resume under forced-sequential simulation: per-sample fan-out
        // must not influence the trajectory.
        let rt = SearchRuntime::new(ckpt_options(dir.path(), 1, true));
        let (params, history) =
            qns_sim::sequential_scope(|| train_supercircuit_rt(&sc, &task, &cfg, &rt));
        assert_eq!(rt.metrics().counter(counters::CHECKPOINT_RESUMES), 1);
        assert_f64s_bitwise_eq(&params, &reference.0, "params");
        assert_f64s_bitwise_eq(&history, &reference.1, "history");
    }
}

#[test]
fn pruning_killed_and_resumed_is_bitwise_identical() {
    let (sc, params, task, _) = setup();
    let encoder = match &task {
        Task::Qml { encoder, .. } => encoder.clone(),
        _ => unreachable!(),
    };
    let circuit = sc.build(&sc.max_config(), Some(&encoder));
    let cfg = PruneConfig {
        steps: 3,
        finetune_epochs: 1,
        seed: 11,
        ..Default::default()
    };
    let assert_prune_eq = |resumed: &PruneResult, reference: &PruneResult| {
        assert_f64s_bitwise_eq(&resumed.params, &reference.params, "params");
        assert_eq!(resumed.mask, reference.mask);
        assert_eq!(
            resumed.pruned_ratio.to_bits(),
            reference.pruned_ratio.to_bits()
        );
        assert_eq!(resumed.final_loss.to_bits(), reference.final_loss.to_bits());
    };
    let reference = {
        let rt = SearchRuntime::new(RuntimeOptions::default());
        iterative_prune_rt(&circuit, &params, &task, &cfg, &rt)
    };
    for boundary in [1u64, 2] {
        let dir = TempDir::new(&format!("prune-b{boundary}"));
        let rt = SearchRuntime::new(ckpt_options(dir.path(), 0, false))
            .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(boundary)));
        expect_boundary_crash(|| {
            iterative_prune_rt(&circuit, &params, &task, &cfg, &rt);
        });

        let rt = SearchRuntime::new(ckpt_options(dir.path(), 1, true));
        let resumed =
            qns_sim::sequential_scope(|| iterative_prune_rt(&circuit, &params, &task, &cfg, &rt));
        assert_eq!(rt.metrics().counter(counters::CHECKPOINT_RESUMES), 1);
        assert_prune_eq(&resumed, &reference);
    }
}

/// A snapshot from a different configuration must be rejected — counted
/// in telemetry — and the run must fall back to a clean start whose
/// result matches a fresh run exactly.
#[test]
fn stale_snapshot_is_rejected_not_resumed() {
    let (sc, params, task, est) = setup();
    let dir = TempDir::new("stale");
    // Write snapshots under seed 17 (crashing partway so the directory
    // holds a mid-run snapshot).
    let crash_cfg = evo_cfg(ckpt_options(dir.path(), 1, false));
    let rt = SearchRuntime::new(crash_cfg.runtime.clone())
        .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(2)));
    expect_boundary_crash(|| {
        evolutionary_search_seeded_rt(&sc, &params, &task, &est, &crash_cfg, &[], &rt);
    });

    // Resume under a different evolution seed: the context digest differs.
    let mut other_cfg = evo_cfg(ckpt_options(dir.path(), 1, true));
    other_cfg.seed = 99;
    let fresh_cfg = EvoConfig {
        runtime: RuntimeOptions::default(),
        ..other_cfg.clone()
    };
    let fresh = {
        let rt = SearchRuntime::new(fresh_cfg.runtime.clone());
        evolutionary_search_seeded_rt(&sc, &params, &task, &est, &fresh_cfg, &[], &rt)
    };
    let rt = SearchRuntime::new(other_cfg.runtime.clone());
    let resumed = evolutionary_search_seeded_rt(&sc, &params, &task, &est, &other_cfg, &[], &rt);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_REJECTED), 1);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_RESUMES), 0);
    assert_search_bitwise_eq(&resumed, &fresh);
}

/// Checkpointing itself must not perturb a run: with snapshots written
/// every generation but no crash and no resume, the result matches a run
/// with checkpointing disabled, and writes are counted.
#[test]
fn checkpoint_writes_do_not_perturb_the_run() {
    let (sc, params, task, est) = setup();
    let reference = {
        let cfg = evo_cfg(RuntimeOptions::default());
        let rt = SearchRuntime::new(cfg.runtime.clone());
        evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt)
    };
    let dir = TempDir::new("no-perturb");
    let cfg = evo_cfg(ckpt_options(dir.path(), 1, false));
    let rt = SearchRuntime::new(cfg.runtime.clone());
    let result = evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt);
    assert_eq!(
        rt.metrics().counter(counters::CHECKPOINT_WRITES),
        cfg.iterations as u64
    );
    assert_search_bitwise_eq(&result, &reference);
}
