//! Cross-crate semantics: design-space circuits survive the full
//! transpile → noisy-execution path with correct measurement mapping.

use qns_noise::{circuit_success_rate, Device, TrajectoryConfig, TrajectoryExecutor};
use qns_sim::{run, ExecMode};
use qns_transpile::{transpile, Layout};
use quantumnas::{DesignSpace, SpaceKind, SuperCircuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// For every design space and several devices: compile the maximal
/// SubCircuit, simulate both forms noise-free, and check logical
/// expectations agree through the measurement mapping.
#[test]
fn every_space_compiles_faithfully_on_every_5q_device() {
    let mut rng = StdRng::seed_from_u64(3);
    for &space in SpaceKind::all() {
        let sc = SuperCircuit::new(DesignSpace::new(space), 4, 2);
        let circuit = sc.build(&sc.max_config(), None);
        let params: Vec<f64> = (0..circuit.num_train_params())
            .map(|_| rng.gen_range(-2.0..2.0))
            .collect();
        for device in [Device::yorktown(), Device::santiago()] {
            let t = transpile(&circuit, &device, &Layout::trivial(4), 2);
            let ideal = run(&circuit, &params, &[], ExecMode::Static);
            let compiled = run(&t.circuit, &params, &[], ExecMode::Static);
            for l in 0..4 {
                let a = ideal.expect_z(l);
                let b = compiled.expect_z(t.dense_of_logical[l]);
                assert!(
                    (a - b).abs() < 1e-7,
                    "{space:?} on {}: logical {l}: {a} vs {b}",
                    device.name()
                );
            }
            // Coupling-map respected.
            for op in t.circuit.iter() {
                if op.num_qubits() == 2 {
                    assert!(device.connected(t.phys_of[op.qubits[0]], t.phys_of[op.qubits[1]]));
                }
            }
        }
    }
}

/// Noise monotonicity through the whole stack: scaling a device's error
/// rates up lowers the noisy fidelity of a compiled circuit.
#[test]
fn noisier_devices_degrade_compiled_circuits_more() {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let circuit = sc.build(&sc.max_config(), None);
    let params: Vec<f64> = (0..circuit.num_train_params())
        .map(|i| 0.4 + 0.05 * (i as f64))
        .collect();
    let base = Device::belem();
    let t = transpile(&circuit, &base, &Layout::trivial(4), 2);
    let ideal = run(&t.circuit, &params, &[], ExecMode::Static);

    let fidelity_on = |device: Device| -> f64 {
        let exec = TrajectoryExecutor::new(
            device,
            TrajectoryConfig {
                trajectories: 24,
                seed: 9,
                readout: false,
            },
        );
        let noisy = exec.expect_z(&t.circuit, &params, &[], &t.phys_of);
        // Agreement of <Z> profiles as a cheap fidelity proxy.
        noisy
            .expect_z
            .iter()
            .enumerate()
            .map(|(q, e)| 1.0 - (e - ideal.expect_z(q)).abs())
            .sum::<f64>()
            / t.circuit.num_qubits() as f64
    };
    let quiet = fidelity_on(base.scaled_errors(0.2));
    let loud = fidelity_on(base.scaled_errors(5.0));
    assert!(
        quiet > loud,
        "quiet {quiet} should preserve expectations better than loud {loud}"
    );
}

/// The success-rate estimator agrees with compiled gate counts: more gates
/// on a noisier mapping means a lower rate.
#[test]
fn success_rate_tracks_compiled_size() {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let small = {
        let mut cfg = sc.max_config();
        cfg.n_blocks = 1;
        cfg.widths[0] = vec![2, 1];
        sc.build(&cfg, None)
    };
    let large = sc.build(&sc.max_config(), None);
    let device = Device::yorktown();
    let ts = transpile(&small, &device, &Layout::trivial(4), 2);
    let tl = transpile(&large, &device, &Layout::trivial(4), 2);
    let rs = circuit_success_rate(&ts.circuit, &device, &ts.phys_of, true);
    let rl = circuit_success_rate(&tl.circuit, &device, &tl.phys_of, true);
    assert!(ts.circuit.num_ops() < tl.circuit.num_ops());
    assert!(rs > rl, "small-circuit rate {rs} vs large {rl}");
}

/// VQE "hardware measurement" path: QWC-grouped noisy estimation of <H>
/// converges to the exact expectation as noise vanishes.
#[test]
fn grouped_vqe_measurement_matches_exact_in_noiseless_limit() {
    use quantumnas::{Estimator, EstimatorKind, Task};
    let mol = qns_chem::Molecule::h2();
    let task = Task::vqe(&mol);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 2, 1);
    let circuit = sc.build(&sc.max_config(), None);
    let params: Vec<f64> = (0..circuit.num_train_params())
        .map(|i| 0.3 * (i as f64 + 1.0).sin())
        .collect();
    let exact = {
        let s = run(&circuit, &params, &[], ExecMode::Static);
        mol.hamiltonian().expectation(&s)
    };
    let device = Device::santiago().scaled_errors(1e-9);
    let est = Estimator::new(device, EstimatorKind::Noiseless, 2);
    let measured = est.vqe_energy_measured(
        &circuit,
        &params,
        mol.hamiltonian(),
        &Layout::trivial(2),
        TrajectoryConfig {
            trajectories: 4,
            seed: 0,
            readout: false,
        },
    );
    assert!(
        (measured - exact).abs() < 0.02,
        "grouped measurement {measured} vs exact {exact}"
    );
    let _ = task;
}
