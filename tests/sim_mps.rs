//! Differential and invariant battery for the matrix-product-state
//! backend.
//!
//! In the exact regime (unbounded bond, zero cutoff) `SimBackend::Mps`
//! owes the reference oracle full 1e-10 agreement for every gate
//! template, execution mode, fusion level 0–3, and transpiler
//! optimization level 0–3. Beyond the differential battery the suite
//! checks the MPS structural invariants (canonical-form isometry, norm
//! preservation, monotone fidelity in `max_bond`), bitwise determinism
//! across worker counts and kill/resume, backend-tagged resume
//! rejection, and a ≥12-qubit pipeline smoke with truncation telemetry.

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use proptest::prelude::*;
use qns_chem::{PauliString, PauliSum};
use qns_circuit::{Circuit, GateKind, Param};
use qns_noise::{Device, TrajectoryConfig, TrajectoryExecutor};
use qns_runtime::{counters, Workers};
use qns_sim::{run_with, ExecMode, FusedOp, MpsConfig, MpsState, SimBackend, SimPlan, StateVec};
use qns_transpile::optimize;
use quantumnas::{
    evolutionary_search_seeded_rt, CheckpointOptions, DesignSpace, Estimator, EstimatorKind,
    EvoConfig, FaultPlan, QuantumNas, QuantumNasConfig, RuntimeOptions, SearchResult,
    SearchRuntime, SpaceKind, SuperCircuit, SuperTrainConfig, Task, TrainConfig, FAULT_MARKER,
};

const TOL: f64 = 1e-10;

fn assert_amplitudes_close(got: &StateVec, oracle: &StateVec, what: &str) {
    for (i, (a, b)) in got.amplitudes().iter().zip(oracle.amplitudes()).enumerate() {
        let d = ((a.re - b.re).powi(2) + (a.im - b.im).powi(2)).sqrt();
        assert!(d < TOL, "{what}: amplitude {i} differs by {d:e}");
    }
    for (q, (ez_g, ez_o)) in got
        .expect_z_all()
        .iter()
        .zip(oracle.expect_z_all())
        .enumerate()
    {
        assert!(
            (ez_g - ez_o).abs() < TOL,
            "{what}: <Z_{q}> differs: {ez_g} vs {ez_o}"
        );
    }
}

/// Strategy: a random circuit over `lo..=hi` qubits drawing from EVERY
/// gate template the circuit crate ships (mirrors `sim_differential`).
fn arb_circuit(lo: usize, hi: usize, max_ops: usize) -> impl Strategy<Value = (Circuit, Vec<f64>)> {
    (
        lo..=hi,
        prop::collection::vec(
            (
                0..GateKind::all().len(),
                0usize..8,
                0usize..8,
                prop::collection::vec(-3.0..3.0f64, 3),
            ),
            1..max_ops,
        ),
    )
        .prop_map(|(n, ops)| {
            let mut c = Circuit::new(n);
            let mut train = Vec::new();
            for (gi, a, b, vals) in ops {
                let kind = GateKind::all()[gi];
                if kind.num_qubits() == 2 && n == 1 {
                    continue; // no pair available on a single wire
                }
                let (a, b) = (a % n, b % n);
                let qs: Vec<usize> = if kind.num_qubits() == 1 {
                    vec![a]
                } else if a != b {
                    vec![a, b]
                } else {
                    vec![a, (a + 1) % n]
                };
                let ps: Vec<Param> = (0..kind.num_params())
                    .map(|k| {
                        train.push(vals[k]);
                        Param::Train(train.len() - 1)
                    })
                    .collect();
                c.push(kind, &qs, &ps);
            }
            (c, train)
        })
}

/// Runs `circuit` on a fresh MPS with the given config and densifies.
fn run_on_mps(circuit: &Circuit, train: &[f64], config: MpsConfig) -> StateVec {
    let mut mps = MpsState::zero_state(circuit.num_qubits(), config);
    qns_sim::run_mps(circuit, train, &[], ExecMode::Dynamic, &mut mps);
    mps.to_statevec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact-regime MPS agrees with the oracle in both execution modes
    /// (per-gate replay and the fused `SimPlan` static path) and when
    /// replaying every explicit fusion level 0..=3.
    #[test]
    fn mps_exact_agrees_with_reference_all_modes_and_fusion_levels(
        (circuit, train) in arb_circuit(1, 8, 40)
    ) {
        let oracle = run_with(&circuit, &train, &[], ExecMode::Dynamic, SimBackend::Reference);
        let exact = SimBackend::Mps(MpsConfig::exact());
        for mode in [ExecMode::Dynamic, ExecMode::Static] {
            let got = run_with(&circuit, &train, &[], mode, exact);
            assert_amplitudes_close(&got, &oracle, &format!("mps {mode:?}"));
        }
        for level in 0..=3u8 {
            let blocks = SimPlan::compile(&circuit, level).materialize(&circuit, &train, &[]);
            let mut mps = MpsState::zero_state(circuit.num_qubits(), MpsConfig::exact());
            for b in &blocks {
                match b {
                    FusedOp::One(q, m) => mps.apply_1q(m, *q),
                    FusedOp::Two(a, b2, m) => mps.apply_2q(m, *a, *b2),
                }
            }
            assert_amplitudes_close(&mps.to_statevec(), &oracle, &format!("fusion level {level}"));
        }
    }

    /// Exact-regime MPS agrees with the oracle on the SAME circuit after
    /// every transpiler optimization level reshapes it.
    #[test]
    fn mps_exact_agrees_with_reference_across_opt_levels(
        (circuit, train) in arb_circuit(1, 8, 40)
    ) {
        for level in 0..=3u8 {
            let opt = optimize(&circuit, level);
            let oracle = run_with(&opt, &train, &[], ExecMode::Dynamic, SimBackend::Reference);
            let got = run_with(&opt, &train, &[], ExecMode::Static, SimBackend::Mps(MpsConfig::exact()));
            assert_amplitudes_close(&got, &oracle, &format!("opt level {level}"));
        }
    }

    /// After `canonicalize_left` every non-final site is a left isometry,
    /// in the exact regime and after aggressive truncation alike.
    #[test]
    fn canonical_form_is_left_isometric((circuit, train) in arb_circuit(2, 8, 40)) {
        for config in [MpsConfig::exact(), MpsConfig::with_max_bond(2)] {
            let mut mps = MpsState::zero_state(circuit.num_qubits(), config);
            qns_sim::run_mps(&circuit, &train, &[], ExecMode::Dynamic, &mut mps);
            mps.canonicalize_left();
            for q in 0..circuit.num_qubits() - 1 {
                let defect = mps.isometry_defect(q);
                prop_assert!(
                    defect <= TOL,
                    "site {q} isometry defect {defect:e} (max_bond {})",
                    config.max_bond
                );
            }
        }
    }

    /// Unitary circuits preserve the norm exactly; truncation renormalizes
    /// so the state stays unit-norm even when Schmidt weight is dropped.
    #[test]
    fn norm_is_preserved((circuit, train) in arb_circuit(2, 8, 40)) {
        for config in [MpsConfig::exact(), MpsConfig::with_max_bond(2)] {
            let mut mps = MpsState::zero_state(circuit.num_qubits(), config);
            qns_sim::run_mps(&circuit, &train, &[], ExecMode::Dynamic, &mut mps);
            let norm = mps.norm_sqr();
            prop_assert!(
                (norm - 1.0).abs() <= 1e-9,
                "norm^2 {norm} drifted (max_bond {})",
                config.max_bond
            );
        }
    }

    /// Raising `max_bond` never loses fidelity against the exact state,
    /// and the full-rank bond recovers it to solver precision.
    #[test]
    fn fidelity_is_monotone_in_max_bond((circuit, train) in arb_circuit(6, 6, 30)) {
        let exact = run_on_mps(&circuit, &train, MpsConfig::exact());
        let mut last = -1.0f64;
        for bond in [1usize, 2, 4, 8] {
            let approx = run_on_mps(&circuit, &train, MpsConfig::with_max_bond(bond));
            let f = exact.inner(&approx).norm_sqr();
            prop_assert!(
                f >= last - 1e-9,
                "fidelity dropped {last} -> {f} at max_bond {bond}"
            );
            last = f;
        }
        // Bond 8 is full rank for 6 qubits: the "truncated" run is exact.
        prop_assert!(last >= 1.0 - 1e-9, "full-rank fidelity {last} < 1");
    }
}

/// For a fixed candidate the MPS trajectory path is bit-identical at
/// every worker count — expectations, parity masks, and sampled counts.
#[test]
fn mps_trajectories_bit_identical_across_worker_counts() {
    let mut c = Circuit::new(3);
    c.push(GateKind::H, &[0], &[]);
    c.push(GateKind::CX, &[0, 1], &[]);
    c.push(GateKind::RY, &[1], &[Param::Fixed(0.8)]);
    c.push(GateKind::CX, &[1, 2], &[]);
    c.push(GateKind::RZZ, &[0, 2], &[Param::Fixed(0.3)]);
    let phys = [0usize, 1, 2];
    let cfg = TrajectoryConfig {
        trajectories: 33,
        seed: 7,
        readout: true,
    };
    let backend = SimBackend::Mps(MpsConfig::exact());
    let sequential = TrajectoryExecutor::new(Device::yorktown(), cfg).with_backend(backend);
    let seq_e = sequential.expect_z(&c, &[], &[], &phys);
    let seq_m = sequential.expect_z_masks(&c, &[], &[], &phys, &[0b101, 0b011]);
    let seq_s = sequential.sample_counts(&c, &[], &[], &phys, 256);
    for workers in [Workers::Fixed(2), Workers::Fixed(4), Workers::Auto] {
        let parallel = TrajectoryExecutor::new(Device::yorktown(), cfg)
            .with_backend(backend)
            .with_workers(workers);
        let par_e = parallel.expect_z(&c, &[], &[], &phys);
        assert_eq!(
            seq_e.expect_z, par_e.expect_z,
            "{workers:?}: expectations drifted"
        );
        let par_m = parallel.expect_z_masks(&c, &[], &[], &phys, &[0b101, 0b011]);
        assert_eq!(seq_m, par_m, "{workers:?}: parity masks drifted");
        let par_s = parallel.sample_counts(&c, &[], &[], &phys, 256);
        assert_eq!(seq_s, par_s, "{workers:?}: sampled counts drifted");
    }
}

fn drill_setup() -> (SuperCircuit, Vec<f64>, Task, Estimator) {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let task = Task::qml_digits(&[1, 8], 15, 4, 4);
    let params: Vec<f64> = (0..sc.num_params())
        .map(|i| 0.2 * ((i % 5) as f64) - 0.4)
        .collect();
    let est = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1)
        .with_valid_cap(4)
        .with_backend(SimBackend::Mps(MpsConfig::exact()));
    (sc, params, task, est)
}

fn drill_evo_cfg(runtime: RuntimeOptions) -> EvoConfig {
    EvoConfig {
        iterations: 4,
        population: 8,
        parents: 3,
        mutations: 3,
        crossovers: 2,
        runtime,
        ..EvoConfig::fast(17)
    }
}

fn ckpt_options(dir: &std::path::Path, workers: usize, resume: bool) -> RuntimeOptions {
    let ck = CheckpointOptions::new(dir);
    RuntimeOptions {
        workers,
        cache: true,
        checkpoint: Some(if resume { ck.resume() } else { ck }),
        ..Default::default()
    }
}

/// Runs `f`, asserting it dies with an injected boundary crash.
fn expect_boundary_crash(f: impl FnOnce()) {
    let payload = catch_unwind(AssertUnwindSafe(f)).expect_err("run should crash");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.starts_with(FAULT_MARKER),
        "crash was not the injected one: {msg:?}"
    );
}

fn assert_search_bitwise_eq(resumed: &SearchResult, reference: &SearchResult) {
    assert_eq!(resumed.best, reference.best);
    assert_eq!(resumed.best_score.to_bits(), reference.best_score.to_bits());
    assert_eq!(resumed.history.len(), reference.history.len());
    for (a, b) in resumed.history.iter().zip(&reference.history) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(resumed.evaluations, reference.evaluations);
    assert_eq!(resumed.memo_hits, reference.memo_hits);
}

/// A search scored on the MPS backend, killed at a generation boundary
/// and resumed, is bitwise identical to the uninterrupted run — at one
/// and at several workers.
#[test]
fn mps_search_killed_and_resumed_is_bitwise_identical() {
    let (sc, params, task, est) = drill_setup();
    for workers in [1usize, 2] {
        let reference = {
            let cfg = drill_evo_cfg(RuntimeOptions {
                workers,
                ..Default::default()
            });
            let rt = SearchRuntime::new(cfg.runtime.clone());
            evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt)
        };
        for boundary in [1u64, 2] {
            let dir = common::TempDir::new(&format!("mps-search-w{workers}-b{boundary}"));
            let crash_cfg = drill_evo_cfg(ckpt_options(dir.path(), workers, false));
            let rt = SearchRuntime::new(crash_cfg.runtime.clone())
                .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(boundary)));
            expect_boundary_crash(|| {
                evolutionary_search_seeded_rt(&sc, &params, &task, &est, &crash_cfg, &[], &rt);
            });

            let resume_cfg = drill_evo_cfg(ckpt_options(dir.path(), workers, true));
            let rt = SearchRuntime::new(resume_cfg.runtime.clone());
            let resumed =
                evolutionary_search_seeded_rt(&sc, &params, &task, &est, &resume_cfg, &[], &rt);
            assert_eq!(
                rt.metrics().counter(counters::CHECKPOINT_RESUMES),
                1,
                "resume was not recorded (workers {workers}, boundary {boundary})"
            );
            assert_search_bitwise_eq(&resumed, &reference);
        }
    }
}

/// Snapshots carry the simulator backend in their context digest: a
/// checkpoint written under the fast state-vector backend must NOT be
/// resumed by an MPS-scored search (and vice versa the rejected run
/// still completes, from scratch, bitwise equal to an uninterrupted one).
#[test]
fn backend_mismatch_rejects_resume() {
    let (sc, params, task, est_mps) = drill_setup();
    let est_fast = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1)
        .with_valid_cap(4)
        .with_backend(SimBackend::Fast);
    let workers = 2usize;

    // Uninterrupted MPS reference.
    let reference = {
        let cfg = drill_evo_cfg(RuntimeOptions {
            workers,
            ..Default::default()
        });
        let rt = SearchRuntime::new(cfg.runtime.clone());
        evolutionary_search_seeded_rt(&sc, &params, &task, &est_mps, &cfg, &[], &rt)
    };

    // Crash a FAST-backend run, leaving its snapshot behind.
    let dir = common::TempDir::new("mps-backend-mismatch");
    let crash_cfg = drill_evo_cfg(ckpt_options(dir.path(), workers, false));
    let rt = SearchRuntime::new(crash_cfg.runtime.clone())
        .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(2)));
    expect_boundary_crash(|| {
        evolutionary_search_seeded_rt(&sc, &params, &task, &est_fast, &crash_cfg, &[], &rt);
    });

    // Resume with the MPS backend: the snapshot context can't match.
    let resume_cfg = drill_evo_cfg(ckpt_options(dir.path(), workers, true));
    let rt = SearchRuntime::new(resume_cfg.runtime.clone());
    let resumed =
        evolutionary_search_seeded_rt(&sc, &params, &task, &est_mps, &resume_cfg, &[], &rt);
    assert_eq!(
        rt.metrics().counter(counters::CHECKPOINT_RESUMES),
        0,
        "a statevector snapshot was resumed by the MPS backend"
    );
    assert_eq!(
        rt.metrics().counter(counters::CHECKPOINT_REJECTED),
        1,
        "the stale snapshot should be rejected, not ignored"
    );
    assert_search_bitwise_eq(&resumed, &reference);
}

/// A 12-qubit transverse-field Ising Hamiltonian — wide enough that
/// `max_bond = 2` genuinely truncates.
fn tfim_12() -> Task {
    let n = 12usize;
    let mut h = PauliSum::new(n);
    for q in 0..n - 1 {
        h.add(
            -1.0,
            PauliString {
                x: 0,
                z: (1 << q) | (1 << (q + 1)),
            },
        );
    }
    for q in 0..n {
        h.add(-0.7, PauliString::x_on(q));
    }
    Task::Vqe {
        name: "tfim12".to_string(),
        hamiltonian: h,
        n_qubits: n,
    }
}

/// The acceptance smoke: a full pipeline run at 12 qubits on the MPS
/// backend with an aggressive bond cap finishes, produces a finite
/// energy, and surfaces truncation telemetry in the runtime summary
/// (what the CLI prints under `--stats`).
#[test]
fn twelve_qubit_search_smoke_on_mps_backend() {
    let mut config = QuantumNasConfig::fast();
    config.blocks = Some(2);
    config.super_train = SuperTrainConfig {
        steps: 4,
        batch_size: 4,
        warmup_steps: 1,
        ..Default::default()
    };
    config.evo = EvoConfig {
        iterations: 2,
        population: 4,
        parents: 2,
        mutations: 2,
        crossovers: 1,
        ..EvoConfig::fast(5)
    };
    config.estimator = EstimatorKind::Noiseless;
    config.backend = SimBackend::Mps(MpsConfig {
        max_bond: 2,
        ..Default::default()
    });
    config.train = TrainConfig {
        epochs: 2,
        batch_size: 8,
        ..Default::default()
    };
    config.prune = None;
    config.measure = TrajectoryConfig {
        trajectories: 2,
        seed: 0,
        readout: false,
    };
    config.n_test = 4;

    let nas = QuantumNas::new(SpaceKind::U3Cu3, Device::guadalupe(), tfim_12(), config);
    let report = nas.run(11);

    assert!(
        report.final_energy.is_finite(),
        "12-qubit VQE smoke produced no energy"
    );
    let stats = qns_sim::mps_stats();
    assert!(
        stats.max_bond_seen >= 2,
        "MPS backend never ran (max bond seen {})",
        stats.max_bond_seen
    );
    assert!(
        stats.truncation_events > 0,
        "max_bond = 2 at 12 qubits should truncate"
    );
    for counter in [counters::MPS_TRUNCATIONS, counters::MPS_MAX_BOND] {
        assert!(
            report.runtime_summary.contains(counter),
            "truncation telemetry '{counter}' missing from runtime summary:\n{}",
            report.runtime_summary
        );
    }
}
