//! Differential battery for the batched multi-state engine.
//!
//! [`StateBatch`] packs B lanes structure-of-arrays and sweeps them with
//! the same structure-specialized kernels as the single-state path, so
//! every lane must reproduce a standalone [`StateVec`] run exactly. The
//! tests here drive random circuits — every gate template the circuit
//! crate ships, 1–8 qubits, trainable / input-encoded / affine / fixed
//! parameter slots — through `replay_batch_into` and
//! `adjoint_gradient_batch` at batch sizes {1, 3, 8, 32} and fusion
//! levels 0–3, demanding ≤1e-12 agreement with N sequential
//! single-state runs. A final check pins the batched trajectory path
//! bitwise across worker counts.

use proptest::prelude::*;
use qns_circuit::{Circuit, GateKind, Param};
use qns_noise::{Device, TrajectoryConfig, TrajectoryExecutor};
use qns_runtime::Workers;
use qns_sim::{
    adjoint_gradient, adjoint_gradient_batch, run, DiagObservable, ExecMode, SimPlan, StateBatch,
    StateVec,
};

const TOL: f64 = 1e-12;
const BATCH_SIZES: [usize; 4] = [1, 3, 8, 32];

/// Deterministic per-lane input vector: distinct across lanes and
/// features so an encoder bug on any lane shows up.
fn lane_input(dim: usize, lane: usize) -> Vec<f64> {
    (0..dim)
        .map(|q| 0.35 * (lane as f64 + 1.0) * ((q as f64) + 0.5).sin())
        .collect()
}

/// Strategy: a random circuit over 1..=8 qubits drawing from EVERY gate
/// template, with each parameter slot independently chosen to be a
/// trainable, a raw input feature, an affine input encoding, or a fixed
/// angle. Returns (circuit, train values, input dimension).
fn arb_batched_circuit() -> impl Strategy<Value = (Circuit, Vec<f64>, usize)> {
    (
        1usize..=8,
        prop::collection::vec(
            (
                0..GateKind::all().len(),
                0usize..8,
                0usize..8,
                prop::collection::vec(-3.0..3.0f64, 3),
                prop::collection::vec(0u8..4, 3),
            ),
            1..30,
        ),
    )
        .prop_map(|(n, ops)| {
            let mut c = Circuit::new(n);
            let mut train = Vec::new();
            for (gi, a, b, vals, modes) in ops {
                let kind = GateKind::all()[gi];
                if kind.num_qubits() == 2 && n == 1 {
                    continue; // no pair available on a single wire
                }
                let (a, b) = (a % n, b % n);
                let qs: Vec<usize> = if kind.num_qubits() == 1 {
                    vec![a]
                } else if a != b {
                    vec![a, b]
                } else {
                    vec![a, (a + 1) % n]
                };
                let ps: Vec<Param> = (0..kind.num_params())
                    .map(|k| match modes[k] {
                        0 => Param::Input((k + a) % n),
                        1 => Param::AffineInput {
                            index: (k + b) % n,
                            scale: 0.7,
                            offset: vals[k] * 0.1,
                        },
                        2 => Param::Fixed(vals[k]),
                        _ => {
                            train.push(vals[k]);
                            Param::Train(train.len() - 1)
                        }
                    })
                    .collect();
                c.push(kind, &qs, &ps);
            }
            (c, train, n)
        })
}

fn assert_lane_matches(batch: &StateBatch, lane: usize, oracle: &StateVec, what: &str) {
    let lane_state = batch.lane_state(lane);
    for (i, (a, b)) in lane_state
        .amplitudes()
        .iter()
        .zip(oracle.amplitudes())
        .enumerate()
    {
        let d = ((a.re - b.re).powi(2) + (a.im - b.im).powi(2)).sqrt();
        assert!(
            d < TOL,
            "{what}: lane {lane} amplitude {i} differs by {d:e}"
        );
    }
}

/// Bitwise comparison for the planar↔single-state differential: the
/// split-complex kernels transcribe the exact expression shapes of the
/// interleaved `C64` arithmetic, so agreement is to the bit (`to_bits`,
/// which even distinguishes `-0.0` from `0.0`), not to a tolerance.
fn assert_lane_bitwise(batch: &StateBatch, lane: usize, oracle: &StateVec, what: &str) {
    let lane_state = batch.lane_state(lane);
    for (i, (a, b)) in lane_state
        .amplitudes()
        .iter()
        .zip(oracle.amplitudes())
        .enumerate()
    {
        assert!(
            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
            "{what}: lane {lane} amplitude {i} not bit-identical: {a:?} vs {b:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Planar↔interleaved bitwise differential: every lane of the
    /// split-complex batched replay must equal the single-state
    /// (interleaved `C64`) replay BIT-FOR-BIT — every gate template,
    /// batch sizes {1, 3, 8, 32}, fusion levels 0–3. This is the hard
    /// contract that lets the trajectory executor batch lanes without
    /// perturbing results.
    #[test]
    fn planar_batch_is_bitwise_identical_to_interleaved_single(
        (circuit, train, dim) in arb_batched_circuit()
    ) {
        let samples: Vec<Vec<f64>> = (0..32).map(|l| lane_input(dim, l)).collect();
        let n = circuit.num_qubits();
        for level in 0..=3u8 {
            let plan = SimPlan::compile(&circuit, level);
            let base = plan.materialize(&circuit, &train, &samples[0]);
            let mut single = StateVec::zero_state(n);
            for &bs in &BATCH_SIZES {
                let inputs: Vec<&[f64]> =
                    samples[..bs].iter().map(|s| s.as_slice()).collect();
                let mut batch = StateBatch::zero_state(n, bs);
                plan.replay_batch_into(&circuit, &base, &train, &inputs, &mut batch);
                for (lane, input) in inputs.iter().enumerate() {
                    plan.replay_input_into(&circuit, &base, &train, input, &mut single);
                    assert_lane_bitwise(
                        &batch,
                        lane,
                        &single,
                        &format!("fusion {level}, batch {bs}"),
                    );
                }
            }
        }
    }

    /// Batched replay: every lane of `replay_batch_into` matches a
    /// standalone `replay_input_into` run, at every fusion level and
    /// batch size.
    #[test]
    fn batched_replay_matches_per_sample_replay(
        (circuit, train, dim) in arb_batched_circuit()
    ) {
        let samples: Vec<Vec<f64>> = (0..32).map(|l| lane_input(dim, l)).collect();
        let n = circuit.num_qubits();
        for level in 0..=3u8 {
            let plan = SimPlan::compile(&circuit, level);
            let base = plan.materialize(&circuit, &train, &samples[0]);
            let mut single = StateVec::zero_state(n);
            for &bs in &BATCH_SIZES {
                let inputs: Vec<&[f64]> =
                    samples[..bs].iter().map(|s| s.as_slice()).collect();
                let mut batch = StateBatch::zero_state(n, bs);
                plan.replay_batch_into(&circuit, &base, &train, &inputs, &mut batch);
                for (lane, input) in inputs.iter().enumerate() {
                    plan.replay_input_into(&circuit, &base, &train, input, &mut single);
                    assert_lane_matches(
                        &batch,
                        lane,
                        &single,
                        &format!("fusion {level}, batch {bs}"),
                    );
                }
            }
        }
    }

    /// Batched adjoint: per-lane losses match per-sample Dynamic runs
    /// and the summed gradient matches the sum of per-sample
    /// `adjoint_gradient` calls, at every batch size.
    #[test]
    fn batched_adjoint_matches_per_sample_adjoint(
        (circuit, train, dim) in arb_batched_circuit()
    ) {
        let samples: Vec<Vec<f64>> = (0..32).map(|l| lane_input(dim, l)).collect();
        let n = circuit.num_qubits();
        for &bs in &BATCH_SIZES {
            let inputs: Vec<&[f64]> = samples[..bs].iter().map(|s| s.as_slice()).collect();
            // Distinct diagonal weights per lane, as QML loss gradients are.
            let weights: Vec<Vec<f64>> = (0..bs)
                .map(|l| {
                    (0..n)
                        .map(|q| 0.4 * (l as f64 + 1.0) * ((q as f64) - 0.7))
                        .collect()
                })
                .collect();
            let (losses, grad) = adjoint_gradient_batch(
                &circuit,
                &train,
                &inputs,
                |lane, ez| (ez.iter().sum::<f64>(), weights[lane].clone()),
            );
            prop_assert_eq!(losses.len(), bs);
            prop_assert_eq!(grad.len(), circuit.num_train_params());
            let mut expected_grad = vec![0.0; circuit.num_train_params()];
            for (lane, input) in inputs.iter().enumerate() {
                let psi = run(&circuit, &train, input, ExecMode::Dynamic);
                let expected_loss: f64 = psi.expect_z_all().iter().sum();
                prop_assert!(
                    (losses[lane] - expected_loss).abs() < TOL,
                    "batch {}: lane {} loss {} vs {}",
                    bs, lane, losses[lane], expected_loss
                );
                let obs = DiagObservable::new(weights[lane].clone());
                let (_, g) = adjoint_gradient(&circuit, &train, input, &obs);
                for (acc, gi) in expected_grad.iter_mut().zip(&g) {
                    *acc += gi;
                }
            }
            for (ti, (a, b)) in grad.iter().zip(&expected_grad).enumerate() {
                prop_assert!(
                    (a - b).abs() < TOL,
                    "batch {}: grad[{}] batched {} vs sequential {}",
                    bs, ti, a, b
                );
            }
        }
    }
}

/// Trajectory lanes are chunked by a fixed constant, never by worker
/// count, so the batched fast path must return bitwise-identical
/// results for ANY worker policy — including a trajectory count that
/// straddles the lane-chunk boundary and a circuit with trainable and
/// input-encoded parameters.
#[test]
fn batched_trajectory_lanes_bitwise_stable_for_any_worker_count() {
    let mut c = Circuit::new(3);
    c.push(GateKind::H, &[0], &[]);
    c.push(GateKind::RX, &[1], &[Param::Input(0)]);
    c.push(GateKind::CX, &[0, 1], &[]);
    c.push(GateKind::RY, &[1], &[Param::Train(0)]);
    c.push(GateKind::CX, &[1, 2], &[]);
    c.push(GateKind::RZZ, &[0, 2], &[Param::Train(1)]);
    let train = [0.8, 0.3];
    let input = [0.45];
    let phys = [0usize, 1, 2];
    let cfg = TrajectoryConfig {
        trajectories: 40, // crosses the 16-lane chunk boundary
        seed: 13,
        readout: true,
    };
    let baseline = TrajectoryExecutor::new(Device::belem(), cfg).with_workers(Workers::Fixed(1));
    let base_e = baseline.expect_z(&c, &train, &input, &phys);
    let base_m = baseline.expect_z_masks(&c, &train, &input, &phys, &[0b101, 0b011]);
    let base_s = baseline.sample_counts(&c, &train, &input, &phys, 500);
    for workers in [Workers::Fixed(2), Workers::Fixed(5), Workers::Auto] {
        let exec = TrajectoryExecutor::new(Device::belem(), cfg).with_workers(workers);
        assert_eq!(
            base_e.expect_z,
            exec.expect_z(&c, &train, &input, &phys).expect_z,
            "{workers:?}: expectations drifted"
        );
        assert_eq!(
            base_m,
            exec.expect_z_masks(&c, &train, &input, &phys, &[0b101, 0b011]),
            "{workers:?}: parity masks drifted"
        );
        assert_eq!(
            base_s,
            exec.sample_counts(&c, &train, &input, &phys, 500),
            "{workers:?}: sampled counts drifted"
        );
    }
}

// ---------------------------------------------------------------------------
// Pool-semantics suite: `parallel_map` now runs on a persistent process-wide
// worker pool, and every observable contract of the old per-call scoped
// spawn must survive — input ordering, mid-process `set_parallelism`,
// `sequential_scope` suppression, and panic payloads reaching the runtime's
// isolation scope with their message intact.
// ---------------------------------------------------------------------------

/// Results come back in input order for every worker count, including
/// counts that exceed the item count and the auto policy.
#[test]
fn pool_preserves_input_order_at_any_worker_count() {
    let items: Vec<usize> = (0..513).collect();
    for workers in [0, 1, 2, 3, 7, 16, 1024] {
        let out = qns_sim::parallel_map_with(&items, workers, |&x| x * 3);
        assert_eq!(out.len(), items.len(), "workers {workers}");
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3, "workers {workers}: slot {i} out of order");
        }
    }
}

/// `set_parallelism` keeps taking effect after the pool has already
/// spawned workers: forcing 1 later must pull everything back onto the
/// calling thread even though pool threads still exist.
#[test]
fn pool_honors_set_parallelism_mid_process() {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            qns_sim::set_parallelism(0);
        }
    }
    let _reset = Reset;
    let items: Vec<usize> = (0..64).collect();
    qns_sim::set_parallelism(4);
    let _warm = qns_sim::parallel_map(&items, |&x| x); // pool is live now
    qns_sim::set_parallelism(1);
    let caller = std::thread::current().id();
    let ids = qns_sim::parallel_map(&items, |_| std::thread::current().id());
    assert!(
        ids.iter().all(|&id| id == caller),
        "late override to 1 worker must bypass the live pool"
    );
}

/// `sequential_scope` still suppresses fan-out entirely (the trajectory
/// executor relies on this inside its own worker threads) and restores
/// the flag afterwards so later maps parallelize again.
#[test]
fn pool_respects_sequential_scope() {
    let items: Vec<usize> = (0..64).collect();
    let caller = std::thread::current().id();
    let ids = qns_sim::sequential_scope(|| {
        qns_sim::parallel_map_with(&items, 8, |_| std::thread::current().id())
    });
    assert!(
        ids.iter().all(|&id| id == caller),
        "sequential_scope must keep every item on the caller"
    );
    let out = qns_sim::parallel_map_with(&items, 2, |&x| x + 1);
    assert_eq!(out[63], 64, "parallelism must be restored after the scope");
}

/// A panic inside a pooled chunk propagates out of `parallel_map` with
/// its original payload, and the runtime's `EvalEngine` isolation scope
/// classifies it into the same telemetry message a scoped spawn produced
/// (the downcast-to-String path in `panic_message`).
#[test]
fn pool_panics_classify_correctly_in_telemetry() {
    use qns_runtime::EvalEngine;

    // Payload survives the pool boundary verbatim.
    let items: Vec<usize> = (0..32).collect();
    let caught = std::panic::catch_unwind(|| {
        qns_sim::parallel_map_with(&items, 4, |&x| {
            if x == 17 {
                panic!("lane {x} diverged");
            }
            x
        })
    });
    let payload = caught.expect_err("panic must cross the pool boundary");
    let msg = payload
        .downcast_ref::<String>()
        .expect("String payload must be preserved, not wrapped");
    assert!(msg.contains("lane 17 diverged"), "{msg}");

    // And the engine's isolation scope turns it into a classified error
    // string for telemetry, while healthy slots keep their results. The
    // engine evaluates candidates which themselves fan per-sample maps
    // over the pool — the nesting must not deadlock either.
    let engine = EvalEngine::new(Workers::Fixed(2));
    let results = engine.try_run(&[1usize, 2, 3, 4], |&x| {
        let inner: Vec<usize> = (0..8).collect();
        let sum: usize = qns_sim::parallel_map_with(&inner, 2, |&y| y * x)
            .into_iter()
            .sum();
        if x == 3 {
            panic!("candidate {x} is degenerate");
        }
        sum
    });
    assert_eq!(results.len(), 4);
    assert_eq!(results[0], Ok(28));
    assert_eq!(results[1], Ok(56));
    assert_eq!(results[3], Ok(112));
    let err = results[2].as_ref().expect_err("slot 2 must be isolated");
    assert!(
        err.contains("candidate 3 is degenerate"),
        "telemetry must carry the panic message, got: {err}"
    );
}
