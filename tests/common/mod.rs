//! Helpers shared by the integration suites (each pulls this in with
//! `mod common;`, so every item must tolerate being unused in some
//! suites).
#![allow(dead_code)]

use std::path::{Path, PathBuf};

use qns_sim::{MpsConfig, SimBackend};

/// Every simulator backend a differential suite should cover, with a
/// label for assertion messages. The MPS entry runs in the exact regime
/// (unbounded bond, zero cutoff) so it owes the oracle full precision.
pub fn all_backends() -> Vec<(SimBackend, &'static str)> {
    vec![
        (SimBackend::Reference, "reference"),
        (SimBackend::Fast, "fast"),
        (SimBackend::Mps(MpsConfig::exact()), "mps-exact"),
    ]
}

/// Runs `f` once per [`SimBackend`] variant. Adding a backend extends
/// every suite built on this matrix without touching the suites.
pub fn for_each_backend(mut f: impl FnMut(SimBackend, &'static str)) {
    for (backend, label) in all_backends() {
        f(backend, label);
    }
}

/// A self-deleting scratch directory for checkpoint drills.
pub struct TempDir(pub PathBuf);

impl TempDir {
    pub fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("qns-it-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Byte offset of the kind tag in the snapshot wire header
/// (magic 8 + format version 4).
pub const KIND_OFFSET: usize = 12;

/// Reads the wire kind tag of one snapshot file.
pub fn snapshot_file_kind(path: &Path) -> u32 {
    let bytes = std::fs::read(path).expect("readable snapshot");
    assert!(
        bytes.len() >= KIND_OFFSET + 4,
        "snapshot too short for a header: {}",
        path.display()
    );
    u32::from_le_bytes(bytes[KIND_OFFSET..KIND_OFFSET + 4].try_into().unwrap())
}

/// The wire kind tag of the newest `{label}-{seq}.ckpt` snapshot under
/// `dir`. Suites assert this against the engine they actually ran, so a
/// new snapshot kind (e.g. the Pareto search's) can't silently pass a
/// drill written for another engine's wire format.
pub fn snapshot_kind(dir: &Path, label: &str) -> u32 {
    let prefix = format!("{label}-");
    let mut newest: Option<(String, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).expect("checkpoint dir").flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.starts_with(&prefix) || !name.ends_with(".ckpt") {
            continue;
        }
        if newest
            .as_ref()
            .map(|(n, _)| name > n.as_str())
            .unwrap_or(true)
        {
            newest = Some((name.to_string(), path));
        }
    }
    let (_, path) = newest.unwrap_or_else(|| panic!("no '{label}-*.ckpt' snapshot in dir"));
    snapshot_file_kind(&path)
}

/// All distinct wire kinds present under `dir`, ascending.
pub fn snapshot_kinds(dir: &Path) -> Vec<u32> {
    let mut kinds = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(dir).expect("checkpoint dir").flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("ckpt") {
            kinds.insert(snapshot_file_kind(&path));
        }
    }
    kinds.into_iter().collect()
}
