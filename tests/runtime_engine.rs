//! Integration tests for the search runtime: determinism across worker
//! counts and cache settings, and cache-key isolation properties.

use proptest::prelude::*;
use qns_noise::Device;
use qns_runtime::{counters, CacheKey, EvalEngine, StructuralHasher, Workers};
use qns_transpile::Layout;
use qns_verify::VerifyLevel;
use quantumnas::{
    evolutionary_search, hash_device, random_search, transpile_key, DesignSpace, Estimator,
    EstimatorKind, EvoConfig, Gene, RuntimeOptions, SearchRuntime, SpaceKind, SuperCircuit, Task,
};

fn setup() -> (SuperCircuit, Vec<f64>, Task, Estimator) {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let task = Task::qml_digits(&[1, 8], 15, 4, 4);
    let params: Vec<f64> = (0..sc.num_params())
        .map(|i| 0.2 * ((i % 5) as f64) - 0.4)
        .collect();
    let est = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1).with_valid_cap(4);
    (sc, params, task, est)
}

fn cfg_with(runtime: RuntimeOptions) -> EvoConfig {
    EvoConfig {
        iterations: 4,
        population: 8,
        parents: 3,
        mutations: 3,
        crossovers: 2,
        runtime,
        ..EvoConfig::fast(17)
    }
}

/// The tentpole acceptance criterion: the engine at `workers = 1` must be
/// bit-identical to the historical sequential loop, and adding workers
/// must not change any result — scores are pure per-gene functions and
/// collection is in input order.
#[test]
fn search_is_bit_identical_across_worker_counts() {
    let (sc, params, task, est) = setup();
    let results: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&w| {
            let cfg = cfg_with(RuntimeOptions {
                workers: w,
                cache: true,
                ..Default::default()
            });
            evolutionary_search(&sc, &params, &task, &est, &cfg)
        })
        .collect();
    for r in &results[1..] {
        assert_eq!(r.best, results[0].best);
        assert_eq!(r.best_score.to_bits(), results[0].best_score.to_bits());
        assert_eq!(r.history, results[0].history);
        assert_eq!(r.evaluations, results[0].evaluations);
        assert_eq!(r.memo_hits, results[0].memo_hits);
    }
}

#[test]
fn search_is_bit_identical_with_and_without_cache() {
    let (sc, params, task, est) = setup();
    let on = evolutionary_search(
        &sc,
        &params,
        &task,
        &est,
        &cfg_with(RuntimeOptions {
            workers: 1,
            cache: true,
            ..Default::default()
        }),
    );
    let off = evolutionary_search(
        &sc,
        &params,
        &task,
        &est,
        &cfg_with(RuntimeOptions {
            workers: 1,
            cache: false,
            ..Default::default()
        }),
    );
    assert_eq!(on.best, off.best);
    assert_eq!(on.best_score.to_bits(), off.best_score.to_bits());
    assert_eq!(on.history, off.history);
    assert_eq!(
        on.evaluations + on.memo_hits,
        off.evaluations + off.memo_hits
    );
    assert_eq!(off.memo_hits, 0);
}

#[test]
fn random_search_is_deterministic_across_runtime_settings() {
    let (sc, params, task, est) = setup();
    let reference = random_search(
        &sc,
        &params,
        &task,
        &est,
        &cfg_with(RuntimeOptions::sequential_uncached()),
    );
    for runtime in [
        RuntimeOptions {
            workers: 3,
            cache: true,
            ..Default::default()
        },
        RuntimeOptions {
            workers: 0,
            cache: true,
            ..Default::default()
        },
    ] {
        let r = random_search(&sc, &params, &task, &est, &cfg_with(runtime));
        assert_eq!(r.best, reference.best);
        assert_eq!(r.best_score.to_bits(), reference.best_score.to_bits());
        assert_eq!(r.history, reference.history);
    }
}

/// A panicking candidate is isolated to its own slot; the other results
/// come back in order.
#[test]
fn engine_poisons_panicking_candidates_only() {
    let engine = EvalEngine::new(Workers::Fixed(4));
    let items: Vec<i64> = (0..32).collect();
    let out = engine.run(
        &items,
        |&x| {
            assert!(x % 7 != 3, "synthetic failure");
            x as f64
        },
        f64::INFINITY,
    );
    for (i, v) in out.iter().enumerate() {
        if i % 7 == 3 {
            assert!(v.is_infinite(), "slot {i} must be poisoned");
        } else {
            assert_eq!(*v, i as f64);
        }
    }
}

/// A verify-enabled runtime classifies contract violations separately
/// from generic worker panics: the offending gene is poisoned to `+inf`,
/// its error message carries the verifier marker, and the violation lands
/// in its own telemetry counter (visible in the summary) while the panic
/// counter stays at zero.
#[test]
fn verify_violations_are_classified_and_counted() {
    let (sc, params, task, est) = setup();
    let encoder = match &task {
        Task::Qml { encoder, .. } => encoder.clone(),
        _ => unreachable!(),
    };
    let rt = SearchRuntime::new(RuntimeOptions {
        workers: 1,
        cache: false,
        verify: VerifyLevel::Contracts,
        checkpoint: None,
    });
    let est = rt.instrument_estimator(&est);
    let genes = [
        // A clean gene on the trivial mapping...
        Gene {
            config: sc.max_config(),
            layout: (0..4).collect(),
        },
        // ...and one whose mapping targets a qubit yorktown doesn't have.
        Gene {
            config: sc.max_config(),
            layout: vec![0, 1, 2, 40],
        },
    ];
    let out = rt.score_batch(CacheKey { lo: 7, hi: 7 }, &genes, |g| {
        let circuit = sc.build(&g.config, Some(&encoder));
        est.score(&circuit, &params, &task, &g.layout())
    });

    assert!(out.scores[0].is_finite(), "clean gene must score normally");
    assert!(
        out.scores[1].is_infinite(),
        "violating gene must be poisoned"
    );
    assert_eq!(out.errors.len(), 1);
    assert_eq!(out.errors[0].0, 1, "error must name the violating slot");
    assert!(
        out.errors[0].1.contains("qns-verify:"),
        "message must carry the verifier marker, got: {}",
        out.errors[0].1
    );

    let m = rt.metrics();
    assert_eq!(m.counter(counters::VERIFY_VIOLATIONS), 1);
    assert_eq!(m.counter(counters::PANICS), 0);
    assert!(m.counter(counters::VERIFY_CHECKS) >= 1);
    assert!(m.summary().contains("verify violations"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache-correctness property: transpile keys for distinct devices or
    /// distinct optimization levels never collide, so cached artifacts
    /// can never leak across compilation contexts.
    #[test]
    fn transpile_keys_separate_devices_and_opt_levels(
        seed in 0..1000u64,
        opt_a in 0..3u64,
        opt_b in 0..3u64,
        scale_tenths in 11..40u64,
    ) {
        let (sc, _, task, _) = setup();
        let encoder = match &task {
            Task::Qml { encoder, .. } => encoder.clone(),
            _ => unreachable!(),
        };
        // A seed-dependent circuit from the design space.
        let mut cfg = sc.max_config();
        cfg.n_blocks = 1 + (seed as usize) % sc.num_blocks();
        let circuit = sc.build(&cfg, Some(&encoder));
        let layout = Layout::trivial(4);
        let base = Device::yorktown();
        let scaled = base.scaled_errors(scale_tenths as f64 / 10.0);

        let k_base = transpile_key(&circuit, &base, &layout, opt_a as u8);
        let k_scaled = transpile_key(&circuit, &scaled, &layout, opt_a as u8);
        prop_assert!(k_base != k_scaled, "distinct devices must not share");

        if opt_a != opt_b {
            let k_other = transpile_key(&circuit, &base, &layout, opt_b as u8);
            prop_assert!(k_base != k_other, "distinct opt levels must not share");
        }

        // Key stability: the same inputs always produce the same digest.
        prop_assert_eq!(k_base, transpile_key(&circuit, &base, &layout, opt_a as u8));
    }

    /// Device fingerprints are injective over the calibration data the
    /// transpiler and noise model read.
    #[test]
    fn device_fingerprints_differ_across_catalogue(a in 0..6usize, b in 0..6usize) {
        let names = ["santiago", "athens", "rome", "belem", "quito", "yorktown"];
        let da = Device::by_name(names[a]).unwrap();
        let db = Device::by_name(names[b]).unwrap();
        let digest = |d: &Device| {
            let mut h = StructuralHasher::new();
            hash_device(&mut h, d);
            h.finish()
        };
        if a == b {
            prop_assert_eq!(digest(&da), digest(&db));
        } else {
            prop_assert!(digest(&da) != digest(&db));
        }
    }
}
