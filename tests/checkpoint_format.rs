//! Property tests for the snapshot wire format: encode→decode is the
//! identity on arbitrary checkpoint states, and any single-byte
//! corruption or truncation of a frame is detected with a typed error —
//! never a panic, never a silently wrong state.

use proptest::prelude::*;
use qns_runtime::{decode_snapshot, encode_snapshot, CacheKey, CheckpointError, StructuralHasher};
use quantumnas::{
    DesignSpace, Gene, ParetoState, Prescreener, ProxyFeatures, ProxyOptions, SearchCheckpoint,
    SpaceKind, SubConfig, SuperCircuit, TrainCheckpoint,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn key_from(lo: u64, hi: u64) -> CacheKey {
    CacheKey { lo, hi }
}

/// Strategy: an arbitrary search snapshot over real genes of the U3+CU3
/// space (layouts are rotations; widths are clamped to the legal range).
fn arb_search_checkpoint() -> impl Strategy<Value = SearchCheckpoint> {
    let gene = (0usize..4, prop::collection::vec(1usize..=4, 2..=6));
    (
        (0u64..u64::MAX, 0u64..u64::MAX),
        (0usize..64, 0usize..10_000, 0usize..10_000),
        prop::collection::vec(gene, 1..=6),
        prop::collection::vec(0u64..u64::MAX, 4),
        prop::collection::vec(-10.0..10.0f64, 0..8),
        (
            prop::collection::vec((0u64..1000, 0u64..1000, -5.0..5.0f64), 0..8),
            // Optional prescreener state, built through the public API:
            // fusion observations, feature-cache entries, counters.
            (
                prop::bool::ANY,
                prop::collection::vec(
                    (
                        -3.0..3.0f64,
                        -3.0..3.0f64,
                        -3.0..3.0f64,
                        -3.0..3.0f64,
                        -3.0..3.0f64,
                        -2.0..2.0f64,
                    ),
                    0..6,
                ),
                prop::collection::vec(
                    (
                        (0u64..1000, 0u64..1000),
                        (
                            -3.0..3.0f64,
                            -3.0..3.0f64,
                            -3.0..3.0f64,
                            -3.0..3.0f64,
                            -3.0..3.0f64,
                        ),
                    ),
                    0..6,
                ),
                (0u64..1000, 0u64..1000, 0u64..1000),
            ),
        ),
    )
        .prop_map(
            |(
                ctx,
                (generation, evaluations, memo_hits),
                genes,
                rng_words,
                history,
                (memo, (with_proxy, proxy_obs, proxy_cache, proxy_counters)),
            )| {
                let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
                let population: Vec<Gene> = genes
                    .into_iter()
                    .map(|(rot, widths)| {
                        let mut config = sc.max_config();
                        for (w, pick) in config
                            .widths
                            .iter_mut()
                            .flat_map(|b| b.iter_mut())
                            .zip(widths.iter().cycle())
                        {
                            *w = (*w).min(*pick);
                        }
                        Gene {
                            config,
                            layout: (0..4).map(|q| (q + rot) % 4).collect(),
                        }
                    })
                    .collect();
                let best = population
                    .first()
                    .map(|g| (g.clone(), history.first().copied().unwrap_or(0.5)));
                let proxy = with_proxy.then(|| {
                    let mut pre = Prescreener::new(ProxyOptions {
                        enabled: true,
                        keep: 0.5,
                        warmup: 1,
                    });
                    for ((lo, hi), (a, b, c, d, e)) in proxy_cache {
                        pre.record_features(key_from(lo, hi), ProxyFeatures([a, b, c, d, e]));
                    }
                    for (a, b, c, d, e, score) in proxy_obs {
                        pre.observe(&ProxyFeatures([a, b, c, d, e]), score);
                    }
                    pre.snapshot(proxy_counters.0, proxy_counters.1, proxy_counters.2)
                });
                SearchCheckpoint {
                    context: key_from(ctx.0, ctx.1),
                    generation,
                    population,
                    rng: [rng_words[0], rng_words[1], rng_words[2], rng_words[3]],
                    best,
                    history,
                    evaluations,
                    memo_hits,
                    memo: memo
                        .into_iter()
                        .map(|(lo, hi, s)| (key_from(lo, hi), s))
                        .collect(),
                    proxy,
                }
            },
        )
}

/// Strategy: an arbitrary training snapshot (vectors of various lengths,
/// extreme floats included via bit patterns that stay finite).
fn arb_train_checkpoint() -> impl Strategy<Value = TrainCheckpoint> {
    (
        (0u64..u64::MAX, 0u64..u64::MAX),
        (0usize..512, 0usize..512),
        prop::collection::vec(-1e12..1e12f64, 0..24),
        prop::collection::vec(0u64..u64::MAX, 8),
        prop::collection::vec(-100.0..100.0f64, 0..12),
        (1usize..4, prop::collection::vec(1usize..=4, 4)),
    )
        .prop_map(
            |(ctx, (step, sampler_step), params, words, history, (n_blocks, widths))| {
                TrainCheckpoint {
                    context: key_from(ctx.0, ctx.1),
                    step,
                    params: params.clone(),
                    opt_m: params.iter().map(|p| p * 0.5).collect(),
                    opt_v: params.iter().map(|p| p * p).collect(),
                    opt_t: step as u64,
                    history,
                    rng: [words[0], words[1], words[2], words[3]],
                    sampler_prev: SubConfig {
                        n_blocks,
                        widths: vec![widths.clone(); n_blocks],
                    },
                    sampler_step,
                    sampler_rng: [words[4], words[5], words[6], words[7]],
                }
            },
        )
}

/// Strategy: an arbitrary Pareto snapshot — the scalar search's state
/// plus a non-dominated archive of (gene, objective-vector) pairs, with
/// `+inf` poison values included.
fn arb_pareto_state() -> impl Strategy<Value = ParetoState> {
    (
        arb_search_checkpoint(),
        prop::collection::vec((0usize..6, -5.0..5.0f64, prop::bool::ANY), 0..6),
        1usize..=3,
    )
        .prop_map(|(s, raw_archive, dims)| {
            let archive = raw_archive
                .into_iter()
                .map(|(gi, v, poison)| {
                    let gene = s.population[gi % s.population.len()].clone();
                    let objs = (0..dims)
                        .map(|d| {
                            if poison && d == 0 {
                                f64::INFINITY
                            } else {
                                v + d as f64
                            }
                        })
                        .collect();
                    (gene, objs)
                })
                .collect();
            ParetoState {
                context: s.context,
                generation: s.generation,
                population: s.population,
                rng: s.rng,
                archive,
                best: s.best,
                history: s.history,
                evaluations: s.evaluations,
                memo_hits: s.memo_hits,
                memo: s.memo,
                proxy: s.proxy,
            }
        })
}

/// Deterministic per-case byte picker (the shim has no independent index
/// strategy that can depend on the frame's length).
fn pick(seed: u64, bound: usize) -> usize {
    let mut h = StructuralHasher::new();
    h.write_u64(seed);
    (h.finish().lo % bound as u64) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode→decode is the identity on arbitrary search snapshots.
    #[test]
    fn search_snapshot_round_trips(state in arb_search_checkpoint()) {
        let frame = encode_snapshot(&state);
        let back: SearchCheckpoint = decode_snapshot(&frame).expect("valid frame");
        prop_assert_eq!(back, state);
    }

    /// encode→decode is the identity on arbitrary training snapshots,
    /// with every float compared bitwise.
    #[test]
    fn train_snapshot_round_trips(state in arb_train_checkpoint()) {
        let frame = encode_snapshot(&state);
        let back: TrainCheckpoint = decode_snapshot(&frame).expect("valid frame");
        for (a, b) in back.params.iter().zip(&state.params) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(back, state);
    }

    /// encode→decode is the identity on arbitrary Pareto snapshots, with
    /// every archive objective compared bitwise.
    #[test]
    fn pareto_snapshot_round_trips(state in arb_pareto_state()) {
        let frame = encode_snapshot(&state);
        let back: ParetoState = decode_snapshot(&frame).expect("valid frame");
        for ((ga, oa), (gb, ob)) in back.archive.iter().zip(&state.archive) {
            prop_assert_eq!(ga, gb);
            for (x, y) in oa.iter().zip(ob) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        prop_assert_eq!(back, state);
    }

    /// Corrupting any single byte of a Pareto frame is always detected:
    /// decode returns a typed error and never panics.
    #[test]
    fn pareto_single_byte_corruption_is_always_detected(
        state in arb_pareto_state(),
        flip_at in 0u64..u64::MAX,
        mask in 1u8..=255,
    ) {
        let mut frame = encode_snapshot(&state);
        let i = pick(flip_at, frame.len());
        frame[i] ^= mask;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            decode_snapshot::<ParetoState>(&frame)
        }));
        let decoded = outcome.expect("decode must never panic");
        prop_assert!(
            decoded.is_err(),
            "flipping byte {} (mask {:#04x}) went undetected",
            i,
            mask
        );
    }

    /// The scalar and Pareto search kinds can never cross-decode: a frame
    /// written by one engine is rejected by the other with a typed kind
    /// mismatch, before any payload is touched.
    #[test]
    fn scalar_and_pareto_frames_never_cross_decode(state in arb_pareto_state()) {
        let pareto_frame = encode_snapshot(&state);
        prop_assert!(matches!(
            decode_snapshot::<SearchCheckpoint>(&pareto_frame),
            Err(CheckpointError::KindMismatch { .. })
        ));
        let scalar = SearchCheckpoint {
            context: state.context,
            generation: state.generation,
            population: state.population.clone(),
            rng: state.rng,
            best: state.best.clone(),
            history: state.history.clone(),
            evaluations: state.evaluations,
            memo_hits: state.memo_hits,
            memo: state.memo.clone(),
            proxy: state.proxy.clone(),
        };
        let scalar_frame = encode_snapshot(&scalar);
        prop_assert!(matches!(
            decode_snapshot::<ParetoState>(&scalar_frame),
            Err(CheckpointError::KindMismatch { .. })
        ));
    }

    /// Corrupting any single byte of a frame is always detected: decode
    /// returns a typed error and never panics.
    #[test]
    fn single_byte_corruption_is_always_detected(
        state in arb_search_checkpoint(),
        flip_at in 0u64..u64::MAX,
        mask in 1u8..=255,
    ) {
        let mut frame = encode_snapshot(&state);
        let i = pick(flip_at, frame.len());
        frame[i] ^= mask;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            decode_snapshot::<SearchCheckpoint>(&frame)
        }));
        let decoded = outcome.expect("decode must never panic");
        prop_assert!(
            decoded.is_err(),
            "flipping byte {} (mask {:#04x}) went undetected",
            i,
            mask
        );
    }

    /// Truncating a frame at any point yields a typed error, never a
    /// panic and never a partial state.
    #[test]
    fn truncation_is_always_detected(
        state in arb_train_checkpoint(),
        cut_at in 0u64..u64::MAX,
    ) {
        let frame = encode_snapshot(&state);
        let cut = pick(cut_at, frame.len());
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            decode_snapshot::<TrainCheckpoint>(&frame[..cut])
        }));
        let decoded = outcome.expect("decode must never panic");
        match decoded {
            Err(
                CheckpointError::Truncated { .. }
                | CheckpointError::BadMagic
                | CheckpointError::CrcMismatch { .. }
                | CheckpointError::Malformed(_),
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
            Ok(_) => prop_assert!(false, "truncation at {} went undetected", cut),
        }
    }
}
