//! Cross-crate test of the paper's central approximation: SubCircuit
//! performance with inherited SuperCircuit parameters predicts the ranking
//! of from-scratch-trained SubCircuits (Figure 9's property).

use qns_ml::spearman;
use quantumnas::{
    eval_task, inherited_eval, train_supercircuit, train_task, DesignSpace, SpaceKind, Split,
    SubConfig, SuperCircuit, SuperTrainConfig, Task, TrainConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn inherited_ranking_correlates_with_scratch_training() {
    let task = Task::qml_digits(&[3, 6], 160, 4, 13);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let (shared, _) = train_supercircuit(
        &sc,
        &task,
        &SuperTrainConfig {
            steps: 300,
            batch_size: 16,
            warmup_steps: 20,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut inherited = Vec::new();
    let mut scratch = Vec::new();
    for k in 0..6u64 {
        let cfg = SubConfig {
            n_blocks: rng.gen_range(1..=2),
            widths: (0..2)
                .map(|_| (0..2).map(|_| rng.gen_range(1..=4)).collect())
                .collect(),
        };
        let (inh, _) = inherited_eval(&sc, &shared, &cfg, &task, Split::Valid);
        let circuit = match &task {
            Task::Qml { encoder, .. } => sc.build(&cfg, Some(encoder)),
            _ => unreachable!(),
        };
        let (params, _) = train_task(
            &circuit,
            &task,
            &TrainConfig {
                epochs: 12,
                batch_size: 12,
                lr: 0.02,
                seed: k,
                ..Default::default()
            },
            None,
        );
        let (scr, _) = eval_task(&circuit, &params, &task, Split::Valid);
        inherited.push(inh);
        scratch.push(scr);
    }
    let rho = spearman(&inherited, &scratch);
    assert!(
        rho > 0.2,
        "inherited/scratch correlation too weak: {rho} ({inherited:?} vs {scratch:?})"
    );
}

#[test]
fn supercircuit_parameters_transfer_across_subconfigs() {
    // A SubCircuit evaluated with inherited parameters must beat random
    // parameters on average — the sharing actually trains the subsets.
    let task = Task::qml_digits(&[1, 8], 160, 4, 17);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::ZzRy), 4, 2);
    let (shared, _) = train_supercircuit(
        &sc,
        &task,
        &SuperTrainConfig {
            steps: 150,
            batch_size: 8,
            warmup_steps: 15,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(23);
    let random: Vec<f64> = (0..sc.num_params())
        .map(|_| rng.gen_range(-0.3..0.3))
        .collect();
    let mut inherited_better = 0;
    let n = 6;
    for _ in 0..n {
        let cfg = SubConfig {
            n_blocks: rng.gen_range(1..=2),
            widths: (0..2)
                .map(|_| (0..2).map(|_| rng.gen_range(2..=4)).collect())
                .collect(),
        };
        let (trained_loss, _) = inherited_eval(&sc, &shared, &cfg, &task, Split::Valid);
        let circuit = match &task {
            Task::Qml { encoder, .. } => sc.build(&cfg, Some(encoder)),
            _ => unreachable!(),
        };
        let (random_loss, _) = eval_task(&circuit, &random, &task, Split::Valid);
        if trained_loss < random_loss {
            inherited_better += 1;
        }
    }
    assert!(
        inherited_better * 2 > n,
        "inherited params beat random on only {inherited_better}/{n} configs"
    );
}
