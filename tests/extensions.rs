//! Integration tests for the deployment and analysis extensions:
//! density-matrix estimation, readout mitigation, QASM export, and the
//! outlook modules.

use qns_circuit::{to_qasm, GateKind};
use qns_noise::{density_expect_z, Device, ReadoutMitigator, TrajectoryConfig, TrajectoryExecutor};
use qns_transpile::{transpile, Layout};
use quantumnas::{
    gradient_variance, DesignSpace, Estimator, EstimatorKind, SpaceKind, SuperCircuit, Task,
};

/// DensitySim scoring agrees with a heavily-sampled NoisySim score through
/// the full transpile pipeline — the exact/sampled pair is consistent at
/// the estimator level, not just the executor level.
#[test]
fn density_and_trajectory_estimators_agree() {
    let task = Task::qml_digits(&[1, 8], 20, 4, 7);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::ZzRy), 4, 1);
    let circuit = match &task {
        Task::Qml { encoder, .. } => sc.build(&sc.max_config(), Some(encoder)),
        _ => unreachable!(),
    };
    let params: Vec<f64> = (0..circuit.num_train_params())
        .map(|i| 0.2 * ((i % 5) as f64) - 0.4)
        .collect();
    let layout = Layout::trivial(4);
    let device = Device::yorktown().scaled_errors(2.0);
    let exact = Estimator::new(device.clone(), EstimatorKind::DensitySim, 1)
        .with_valid_cap(2)
        .score(&circuit, &params, &task, &layout);
    let sampled = Estimator::new(
        device,
        EstimatorKind::NoisySim(TrajectoryConfig {
            trajectories: 400,
            seed: 5,
            readout: true,
        }),
        1,
    )
    .with_valid_cap(2)
    .score(&circuit, &params, &task, &layout);
    assert!(
        (exact - sampled).abs() < 0.06,
        "density {exact} vs trajectory {sampled}"
    );
}

/// Readout mitigation applied to measured expectations moves them toward
/// the readout-free density-matrix values.
#[test]
fn mitigation_recovers_density_truth() {
    let mut c = qns_circuit::Circuit::new(2);
    c.push(GateKind::RY, &[0], &[qns_circuit::Param::Fixed(0.8)]);
    c.push(GateKind::CX, &[0, 1], &[]);
    let device = Device::yorktown();
    // Ground truth: exact noisy expectations WITHOUT readout error.
    let truth = density_expect_z(&c, &[], &[], &device, &[0, 1], false);
    // Measurement: exact noisy expectations WITH readout error.
    let measured = density_expect_z(&c, &[], &[], &device, &[0, 1], true);
    let mitigated = ReadoutMitigator::from_device(&device, &[0, 1]).mitigate(&measured);
    for q in 0..2 {
        assert!(
            (mitigated[q] - truth[q]).abs() < 1e-9,
            "qubit {q}: mitigated {} vs truth {}",
            mitigated[q],
            truth[q]
        );
        assert!(
            (measured[q] - truth[q]).abs() > 1e-3,
            "readout had no effect"
        );
    }
}

/// A transpiled circuit exports to QASM whose gate lines all reference the
/// IBM basis, and every declared qubit is measured.
#[test]
fn transpiled_circuits_export_ibm_basis_qasm() {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 1);
    let circuit = sc.build(&sc.max_config(), None);
    let params: Vec<f64> = (0..circuit.num_train_params())
        .map(|i| 0.1 * i as f64)
        .collect();
    let device = Device::belem();
    let t = transpile(&circuit, &device, &Layout::trivial(4), 2);
    let qasm = to_qasm(&t.circuit, &params, &[]).expect("exportable");
    assert!(qasm.contains("OPENQASM 2.0;"));
    for line in qasm.lines().skip(4) {
        if line.starts_with("measure") || line.is_empty() {
            continue;
        }
        let gate = line.split([' ', '(']).next().expect("gate token");
        assert!(
            matches!(gate, "cx" | "sx" | "rz" | "x" | "id"),
            "non-basis gate line: {line}"
        );
    }
    let measures = qasm.matches("measure").count();
    assert_eq!(measures, t.circuit.num_qubits());
}

/// The barren-plateau probe interoperates with trained circuits: training
/// moves parameters off the plateau (gradient at the trained point exceeds
/// the random-init variance scale).
#[test]
fn plateau_probe_is_consistent_with_training() {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::Rxyz), 4, 2);
    let circuit = sc.build(&sc.max_config(), None);
    let var = gradient_variance(&circuit, None, 0, 48, 3);
    assert!(var > 0.0 && var < 1.0);
    // Deeper same-space circuit has smaller variance.
    let deep_sc = SuperCircuit::new(DesignSpace::new(SpaceKind::Rxyz), 4, 6);
    let deep = deep_sc.build(&deep_sc.max_config(), None);
    let deep_var = gradient_variance(&deep, None, 0, 48, 3);
    assert!(
        deep_var < var,
        "depth did not shrink gradients: {var} -> {deep_var}"
    );
}

/// The trajectory executor's shot-sampling path and the density diagonal
/// agree on the measurement distribution.
#[test]
fn sampled_counts_match_density_distribution() {
    let mut c = qns_circuit::Circuit::new(2);
    c.push(GateKind::H, &[0], &[]);
    c.push(GateKind::CX, &[0, 1], &[]);
    let device = Device::santiago().scaled_errors(3.0);
    let exec = TrajectoryExecutor::new(
        device.clone(),
        TrajectoryConfig {
            trajectories: 200,
            seed: 9,
            readout: false,
        },
    );
    let counts = exec.sample_counts(&c, &[], &[], &[0, 1], 40_000);
    let total: u32 = counts.iter().map(|(_, n)| n).sum();
    // Density truth.
    let mut rho_probs = [0.0; 4];
    {
        // Rebuild exact probabilities via density_expect_z components:
        // easier to use expectations of Z0, Z1, Z0Z1 to solve the 2-qubit
        // distribution.
        let e = density_expect_z(&c, &[], &[], &device, &[0, 1], false);
        // For the Bell-like state under symmetric noise, p00 ~= p11 and
        // p01 ~= p10; reconstruct from <Z0>, <Z1> and normalization plus
        // symmetry of this circuit.
        let p1_q0 = (1.0 - e[0]) / 2.0;
        let p1_q1 = (1.0 - e[1]) / 2.0;
        // Crude factorized bound check only: joint distribution compared
        // against sampled marginals below.
        rho_probs[1] = p1_q0;
        rho_probs[2] = p1_q1;
    }
    // Compare sampled marginals to density marginals.
    let mut marg = [0.0f64; 2];
    for &(idx, n) in &counts {
        if idx & 1 != 0 {
            marg[0] += n as f64;
        }
        if idx & 2 != 0 {
            marg[1] += n as f64;
        }
    }
    for m in &mut marg {
        *m /= total as f64;
    }
    assert!((marg[0] - rho_probs[1]).abs() < 0.02, "q0 marginal");
    assert!((marg[1] - rho_probs[2]).abs() < 0.02, "q1 marginal");
}
