//! End-to-end integration tests: every crate cooperating through the full
//! QuantumNAS pipeline, at miniature scale.

use qns_noise::{Device, TrajectoryConfig};
use quantumnas::{
    EvoConfig, PruneConfig, QuantumNas, QuantumNasConfig, SpaceKind, SuperTrainConfig, Task,
    TrainConfig,
};

fn tiny_config() -> QuantumNasConfig {
    let mut cfg = QuantumNasConfig::fast();
    cfg.super_train = SuperTrainConfig {
        steps: 25,
        batch_size: 6,
        warmup_steps: 3,
        ..Default::default()
    };
    cfg.evo = EvoConfig {
        iterations: 3,
        population: 6,
        parents: 2,
        mutations: 2,
        crossovers: 2,
        ..EvoConfig::fast(0)
    };
    cfg.train = TrainConfig {
        epochs: 5,
        batch_size: 12,
        lr: 0.02,
        ..Default::default()
    };
    cfg.prune = Some(PruneConfig {
        final_ratio: 0.25,
        steps: 1,
        finetune_epochs: 1,
        ..Default::default()
    });
    cfg.measure = TrajectoryConfig {
        trajectories: 3,
        seed: 0,
        readout: true,
    };
    cfg.n_test = 16;
    cfg
}

#[test]
fn qml_pipeline_produces_valid_report() {
    let task = Task::qml_digits(&[1, 8], 25, 4, 3);
    let nas = QuantumNas::new(SpaceKind::U3Cu3, Device::yorktown(), task, tiny_config());
    let report = nas.run(7);
    assert!((0.0..=1.0).contains(&report.final_accuracy));
    assert!((0.0..=1.0).contains(&report.accuracy_before_prune));
    assert!(report.trained_loss.is_finite() && report.trained_loss > 0.0);
    assert!(report.n_params > 0);
    assert!(report.pruned_ratio > 0.0 && report.pruned_ratio < 1.0);
    // The searched mapping is injective onto the device.
    let mut seen = std::collections::HashSet::new();
    for &p in &report.gene.layout {
        assert!(p < 5);
        assert!(seen.insert(p));
    }
}

#[test]
fn pipeline_works_in_every_design_space() {
    let mut cfg = tiny_config();
    cfg.prune = None;
    cfg.super_train.steps = 12;
    cfg.evo.iterations = 2;
    cfg.train.epochs = 2;
    for &space in SpaceKind::all() {
        let task = Task::qml_digits(&[3, 6], 15, 4, 11);
        let mut space_cfg = cfg.clone();
        // The IBMQ-basis space is depth-elastic with 6 layers per block.
        if space == SpaceKind::IbmqBasis {
            space_cfg.blocks = Some(2);
        }
        let nas = QuantumNas::new(space, Device::belem(), task, space_cfg);
        let report = nas.run(1);
        assert!(
            (0.0..=1.0).contains(&report.final_accuracy),
            "space {space:?}"
        );
    }
}

#[test]
fn vqe_pipeline_finds_bound_state() {
    let mol = qns_chem::Molecule::h2();
    let task = Task::vqe(&mol);
    let mut cfg = tiny_config();
    cfg.train = TrainConfig {
        epochs: 150,
        lr: 0.05,
        ..Default::default()
    };
    cfg.prune = None;
    let nas = QuantumNas::new(SpaceKind::U3Cu3, Device::santiago(), task, cfg);
    let report = nas.run(3);
    // Exact is about -1.85; a tiny run must still find a clearly bound state.
    assert!(
        report.final_energy < -0.9,
        "measured energy {}",
        report.final_energy
    );
    assert!(report.final_accuracy.is_nan());
}

#[test]
fn reports_are_reproducible_for_a_seed() {
    let make = || {
        let task = Task::qml_digits(&[1, 8], 20, 4, 5);
        QuantumNas::new(SpaceKind::ZzRy, Device::quito(), task, tiny_config()).run(99)
    };
    let a = make();
    let b = make();
    assert_eq!(a.gene.layout, b.gene.layout);
    assert_eq!(a.n_params, b.n_params);
    assert!((a.final_accuracy - b.final_accuracy).abs() < 1e-12);
}
