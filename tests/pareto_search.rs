//! The multi-objective Pareto search battery: property tests for the
//! NSGA-II front invariants, the single-objective degeneration
//! differential against the scalar engine, worker-count bitwise identity
//! of fronts, wire-kind isolation from the scalar search, and the
//! one-search-many-devices front matching helper.

mod common;

use proptest::prelude::*;
use qns_noise::Device;
use qns_runtime::{counters, CacheKey, StructuralHasher};
use quantumnas::{
    crowding_distance, dominates, evolutionary_search_pareto_rt, evolutionary_search_seeded_rt,
    front_json, match_front_to_device, non_dominated_sort, selection_order, CheckpointOptions,
    DesignSpace, Estimator, EstimatorKind, EvoConfig, FaultPlan, FrontPoint, Gene, Objective,
    ParetoSearchResult, ProxyOptions, RuntimeOptions, SearchRuntime, SpaceKind, SuperCircuit, Task,
    FAULT_MARKER,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;

const ALL_OBJECTIVES: [Objective; 3] = [Objective::Loss, Objective::Depth, Objective::TwoQ];
const PARETO_KIND: u32 = u32::from_le_bytes(*b"PARE");
const SCALAR_KIND: u32 = u32::from_le_bytes(*b"SEAR");

fn setup() -> (SuperCircuit, Vec<f64>, Task, Estimator) {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let task = Task::qml_digits(&[1, 8], 15, 4, 4);
    let params: Vec<f64> = (0..sc.num_params())
        .map(|i| 0.2 * ((i % 5) as f64) - 0.4)
        .collect();
    let est = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1).with_valid_cap(4);
    (sc, params, task, est)
}

fn evo_cfg(seed: u64, runtime: RuntimeOptions) -> EvoConfig {
    EvoConfig {
        iterations: 4,
        population: 8,
        parents: 3,
        mutations: 3,
        crossovers: 2,
        runtime,
        ..EvoConfig::fast(seed)
    }
}

fn ckpt_options(dir: &Path, workers: usize, resume: bool) -> RuntimeOptions {
    let ck = CheckpointOptions::new(dir);
    RuntimeOptions {
        workers,
        cache: true,
        checkpoint: Some(if resume { ck.resume() } else { ck }),
        ..Default::default()
    }
}

fn expect_boundary_crash(f: impl FnOnce()) {
    let payload = catch_unwind(AssertUnwindSafe(f)).expect_err("run should crash");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.starts_with(FAULT_MARKER),
        "crash was not the injected one: {msg:?}"
    );
}

fn assert_pareto_bitwise_eq(a: &ParetoSearchResult, b: &ParetoSearchResult) {
    assert_eq!(a.front.len(), b.front.len(), "front size mismatch");
    for (pa, pb) in a.front.iter().zip(&b.front) {
        assert_eq!(pa.gene, pb.gene);
        assert_eq!(pa.objectives.len(), pb.objectives.len());
        for (x, y) in pa.objectives.iter().zip(&pb.objectives) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    assert_eq!(a.best, b.best);
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.memo_hits, b.memo_hits);
}

/// Deterministic value picker for the property strategies.
fn pick(seed: u64, bound: u64) -> u64 {
    let mut h = StructuralHasher::new();
    h.write_u64(seed);
    h.finish().lo % bound
}

/// Strategy: an arbitrary objective matrix (1–9 candidates, 1–3 dims)
/// over a coarse value grid — small enough to force exact ties and
/// duplicate vectors — with occasional `+inf` and `NaN` poison, plus a
/// distinct digest per candidate in scrambled order.
fn arb_matrix() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<CacheKey>)> {
    (1usize..=9, 1usize..=3, 0u64..u64::MAX).prop_map(|(n, dims, seed)| {
        let objs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..dims)
                    .map(|d| {
                        let code = pick(seed ^ (i as u64 * 131 + d as u64 + 1), 8);
                        match code {
                            6 => f64::INFINITY,
                            7 => f64::NAN,
                            c => c as f64,
                        }
                    })
                    .collect()
            })
            .collect();
        let keys: Vec<CacheKey> = (0..n)
            .map(|i| CacheKey {
                lo: pick(seed.wrapping_add(i as u64), u64::MAX),
                hi: i as u64, // guarantees distinctness
            })
            .collect();
        (objs, keys)
    })
}

/// Like [`arb_matrix`] but with per-candidate perturbations making every
/// value within a dimension distinct (no ties, all finite) — the regime
/// where selection must be fully permutation-invariant.
fn arb_distinct_matrix() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<CacheKey>)> {
    arb_matrix().prop_map(|(objs, keys)| {
        let distinct = objs
            .iter()
            .enumerate()
            .map(|(i, row)| {
                row.iter()
                    .map(|v| {
                        let base = if v.is_finite() { *v } else { 9.0 };
                        base + (i as f64) * 1e-3
                    })
                    .collect()
            })
            .collect();
        (distinct, keys)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Front invariants: the fronts partition the candidate set; no
    /// member of front k dominates another member of front k; every
    /// member of front k>0 is dominated by at least one member of front
    /// k−1.
    #[test]
    fn fronts_partition_and_respect_dominance((objs, _) in arb_matrix()) {
        let fronts = non_dominated_sort(&objs);
        let mut seen = vec![false; objs.len()];
        for front in &fronts {
            for w in front.windows(2) {
                prop_assert!(w[0] < w[1], "front indices must ascend");
            }
            for &i in front {
                prop_assert!(!seen[i], "candidate {} in two fronts", i);
                seen[i] = true;
            }
            for &a in front {
                for &b in front {
                    if a != b {
                        prop_assert!(
                            !dominates(&objs[a], &objs[b]),
                            "{} dominates {} within one front",
                            a,
                            b
                        );
                    }
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some candidate lost");
        for k in 1..fronts.len() {
            for &b in &fronts[k] {
                prop_assert!(
                    fronts[k - 1].iter().any(|&a| dominates(&objs[a], &objs[b])),
                    "front-{} member {} not dominated by front {}",
                    k,
                    b,
                    k - 1
                );
            }
        }
    }

    /// Boundary points — the extreme of any objective within a front,
    /// under the module's total value-then-index order — get infinite
    /// crowding distance.
    #[test]
    fn boundary_points_get_infinite_crowding((objs, _) in arb_matrix()) {
        for front in non_dominated_sort(&objs) {
            let dist = crowding_distance(&objs, &front);
            prop_assert_eq!(dist.len(), front.len());
            let dims = objs[front[0]].len();
            // `dim` indexes the inner objective vectors through `front`,
            // so an iterator rewrite would not apply.
            #[allow(clippy::needless_range_loop)]
            for dim in 0..dims {
                let lo = (0..front.len()).min_by(|&a, &b| {
                    objs[front[a]][dim]
                        .total_cmp(&objs[front[b]][dim])
                        .then(front[a].cmp(&front[b]))
                }).unwrap();
                let hi = (0..front.len()).max_by(|&a, &b| {
                    objs[front[a]][dim]
                        .total_cmp(&objs[front[b]][dim])
                        .then(front[a].cmp(&front[b]))
                }).unwrap();
                prop_assert!(dist[lo].is_infinite(), "min of dim {} not infinite", dim);
                prop_assert!(dist[hi].is_infinite(), "max of dim {} not infinite", dim);
            }
        }
    }

    /// Selection is a deterministic total order: a permutation of the
    /// candidate indices, stable across calls, consistent with the
    /// (rank, crowding, digest, index) comparator at every adjacent pair.
    #[test]
    fn selection_is_a_deterministic_total_order((objs, keys) in arb_matrix()) {
        let order = selection_order(&objs, &keys);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..objs.len()).collect::<Vec<_>>());
        prop_assert_eq!(&selection_order(&objs, &keys), &order, "not stable across calls");

        let mut rank = vec![0usize; objs.len()];
        let fronts = non_dominated_sort(&objs);
        let mut crowd = vec![0.0f64; objs.len()];
        for (r, front) in fronts.iter().enumerate() {
            let d = crowding_distance(&objs, front);
            for (pos, &i) in front.iter().enumerate() {
                rank[i] = r;
                crowd[i] = d[pos];
            }
        }
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            let cmp = rank[a]
                .cmp(&rank[b])
                .then(crowd[b].total_cmp(&crowd[a]))
                .then(keys[a].cmp(&keys[b]))
                .then(a.cmp(&b));
            prop_assert!(cmp.is_lt(), "adjacent pair ({}, {}) out of order", a, b);
        }
    }

    /// With distinct objective values and distinct digests, selection is
    /// invariant under permutation of the input: relabeling candidates
    /// relabels the order, nothing else.
    #[test]
    fn selection_is_permutation_invariant((objs, keys) in arb_distinct_matrix()) {
        let n = objs.len();
        let order = selection_order(&objs, &keys);
        let rev_objs: Vec<Vec<f64>> = objs.iter().rev().cloned().collect();
        let rev_keys: Vec<CacheKey> = keys.iter().rev().copied().collect();
        let rev_order: Vec<usize> = selection_order(&rev_objs, &rev_keys)
            .into_iter()
            .map(|j| n - 1 - j)
            .collect();
        prop_assert_eq!(rev_order, order);
    }
}

/// The degeneration differential: with the single objective `loss`, the
/// Pareto engine must reproduce the scalar engine — same best candidate,
/// bitwise-same best score and per-generation history, same evaluation
/// budget — across three seeds. (Singleton fronts make NSGA-II selection
/// collapse to the scalar score ordering.)
#[test]
fn single_objective_pareto_degenerates_to_the_scalar_engine() {
    let (sc, params, task, est) = setup();
    for seed in [5u64, 17, 23] {
        let cfg = evo_cfg(seed, RuntimeOptions::default());
        let scalar = {
            let rt = SearchRuntime::new(cfg.runtime.clone());
            evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt)
        };
        let pareto = {
            let rt = SearchRuntime::new(cfg.runtime.clone());
            evolutionary_search_pareto_rt(
                &sc,
                &params,
                &task,
                &est,
                &cfg,
                &[Objective::Loss],
                &[],
                &rt,
            )
        };
        assert_eq!(pareto.best, scalar.best, "seed {seed}: best gene differs");
        assert_eq!(
            pareto.best_score.to_bits(),
            scalar.best_score.to_bits(),
            "seed {seed}: best score differs"
        );
        assert_eq!(pareto.history.len(), scalar.history.len());
        for (g, (a, b)) in pareto.history.iter().zip(&scalar.history).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "seed {seed}: generation {g} log differs"
            );
        }
        assert_eq!(pareto.evaluations, scalar.evaluations, "seed {seed}");
        assert_eq!(pareto.memo_hits, scalar.memo_hits, "seed {seed}");
        // Every front member's loss sits at the best score (a 1D front is
        // the set of exact minima).
        assert!(!pareto.front.is_empty());
        for point in &pareto.front {
            assert_eq!(point.objectives.len(), 1);
            assert_eq!(point.objectives[0].to_bits(), pareto.best_score.to_bits());
        }
    }
}

/// The final front (genes and objective bits), best, and history are
/// identical at any worker count, and the emitted front JSON is stable.
#[test]
fn front_is_bitwise_identical_across_worker_counts() {
    let (sc, params, task, est) = setup();
    let run = |workers: usize| {
        let cfg = evo_cfg(
            17,
            RuntimeOptions {
                workers,
                ..Default::default()
            },
        );
        let rt = SearchRuntime::new(cfg.runtime.clone());
        evolutionary_search_pareto_rt(&sc, &params, &task, &est, &cfg, &ALL_OBJECTIVES, &[], &rt)
    };
    let reference = run(1);
    assert!(!reference.front.is_empty());
    let ref_json = front_json(&ALL_OBJECTIVES, &reference.front);
    for workers in [2usize, 4] {
        let result = run(workers);
        assert_pareto_bitwise_eq(&result, &reference);
        assert_eq!(
            front_json(&ALL_OBJECTIVES, &result.front),
            ref_json,
            "front JSON differs at {workers} workers"
        );
    }
}

/// Pareto snapshots carry their own wire kind: the scalar engine neither
/// lists them (different label) nor decodes them (kind tag mismatch when
/// one is planted under the scalar label), and falls back to a clean
/// start either way.
#[test]
fn pareto_snapshots_cannot_leak_into_the_scalar_engine() {
    let (sc, params, task, est) = setup();
    let dir = common::TempDir::new("pareto-kind");
    let crash_cfg = evo_cfg(17, ckpt_options(dir.path(), 1, false));
    let rt = SearchRuntime::new(crash_cfg.runtime.clone())
        .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(2)));
    expect_boundary_crash(|| {
        evolutionary_search_pareto_rt(
            &sc,
            &params,
            &task,
            &est,
            &crash_cfg,
            &ALL_OBJECTIVES,
            &[],
            &rt,
        );
    });
    assert_eq!(common::snapshot_kind(dir.path(), "pareto"), PARETO_KIND);
    assert_eq!(common::snapshot_kinds(dir.path()), vec![PARETO_KIND]);

    // A scalar resume in the same directory finds nothing under its label
    // and must run fresh.
    let fresh = {
        let cfg = evo_cfg(17, RuntimeOptions::default());
        let rt = SearchRuntime::new(cfg.runtime.clone());
        evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &[], &rt)
    };
    let resume_cfg = evo_cfg(17, ckpt_options(dir.path(), 1, true));
    let rt = SearchRuntime::new(resume_cfg.runtime.clone());
    let resumed = evolutionary_search_seeded_rt(&sc, &params, &task, &est, &resume_cfg, &[], &rt);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_RESUMES), 0);
    assert_eq!(resumed.best, fresh.best);
    assert_eq!(resumed.best_score.to_bits(), fresh.best_score.to_bits());

    // Plant a Pareto frame under the scalar label in a clean directory
    // (the resume attempt above wrote genuine scalar snapshots next to
    // the Pareto ones): the wire kind tag must reject it (counted as
    // corrupt), again falling back to a fresh run.
    let plant_dir = common::TempDir::new("pareto-kind-planted");
    let planted = plant_dir.path().join("search-00000009.ckpt");
    let pareto_file = std::fs::read_dir(dir.path())
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("pareto-"))
        })
        .expect("a pareto snapshot");
    std::fs::copy(&pareto_file, &planted).unwrap();
    assert_eq!(common::snapshot_file_kind(&planted), PARETO_KIND);
    assert_ne!(PARETO_KIND, SCALAR_KIND);
    let plant_cfg = evo_cfg(17, ckpt_options(plant_dir.path(), 1, true));
    let rt = SearchRuntime::new(plant_cfg.runtime.clone());
    let resumed = evolutionary_search_seeded_rt(&sc, &params, &task, &est, &plant_cfg, &[], &rt);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_RESUMES), 0);
    assert!(rt.metrics().counter(counters::CHECKPOINT_CORRUPT) >= 1);
    assert_eq!(resumed.best, fresh.best);
    assert_eq!(resumed.best_score.to_bits(), fresh.best_score.to_bits());
}

/// A proxy-on Pareto snapshot must be rejected by a proxy-off resume (and
/// the run must then match a fresh proxy-off run bitwise).
#[test]
fn proxy_presence_mismatch_rejects_the_pareto_snapshot() {
    let (sc, params, task, est) = setup();
    let dir = common::TempDir::new("pareto-proxy-mismatch");
    let proxy_on = ProxyOptions {
        enabled: true,
        keep: 0.5,
        warmup: 1,
    };
    let mut crash_cfg = evo_cfg(17, ckpt_options(dir.path(), 1, false));
    crash_cfg.proxy = proxy_on;
    let rt = SearchRuntime::new(crash_cfg.runtime.clone())
        .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(2)));
    expect_boundary_crash(|| {
        evolutionary_search_pareto_rt(
            &sc,
            &params,
            &task,
            &est,
            &crash_cfg,
            &ALL_OBJECTIVES,
            &[],
            &rt,
        );
    });

    let fresh = {
        let cfg = evo_cfg(17, RuntimeOptions::default());
        let rt = SearchRuntime::new(cfg.runtime.clone());
        evolutionary_search_pareto_rt(&sc, &params, &task, &est, &cfg, &ALL_OBJECTIVES, &[], &rt)
    };
    let resume_cfg = evo_cfg(17, ckpt_options(dir.path(), 1, true));
    let rt = SearchRuntime::new(resume_cfg.runtime.clone());
    let resumed = evolutionary_search_pareto_rt(
        &sc,
        &params,
        &task,
        &est,
        &resume_cfg,
        &ALL_OBJECTIVES,
        &[],
        &rt,
    );
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_REJECTED), 1);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_RESUMES), 0);
    assert_pareto_bitwise_eq(&resumed, &fresh);
}

/// An objective-vector change (same seed, same everything else) must also
/// reject the snapshot: the front being optimized is part of the context.
#[test]
fn objective_vector_mismatch_rejects_the_pareto_snapshot() {
    let (sc, params, task, est) = setup();
    let dir = common::TempDir::new("pareto-objs-mismatch");
    let crash_cfg = evo_cfg(17, ckpt_options(dir.path(), 1, false));
    let rt = SearchRuntime::new(crash_cfg.runtime.clone())
        .with_fault_plan(Arc::new(FaultPlan::new().crash_at_boundary(2)));
    expect_boundary_crash(|| {
        evolutionary_search_pareto_rt(
            &sc,
            &params,
            &task,
            &est,
            &crash_cfg,
            &ALL_OBJECTIVES,
            &[],
            &rt,
        );
    });

    let two = [Objective::Loss, Objective::TwoQ];
    let fresh = {
        let cfg = evo_cfg(17, RuntimeOptions::default());
        let rt = SearchRuntime::new(cfg.runtime.clone());
        evolutionary_search_pareto_rt(&sc, &params, &task, &est, &cfg, &two, &[], &rt)
    };
    let resume_cfg = evo_cfg(17, ckpt_options(dir.path(), 1, true));
    let rt = SearchRuntime::new(resume_cfg.runtime.clone());
    let resumed =
        evolutionary_search_pareto_rt(&sc, &params, &task, &est, &resume_cfg, &two, &[], &rt);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_REJECTED), 1);
    assert_eq!(rt.metrics().counter(counters::CHECKPOINT_RESUMES), 0);
    assert_pareto_bitwise_eq(&resumed, &fresh);
}

/// "One search, many devices": the matcher picks a valid front point for
/// every device that fits, skips mappings the device cannot host, and the
/// estimated error is a probability.
#[test]
fn front_matches_across_devices() {
    let (sc, params, task, est) = setup();
    let cfg = evo_cfg(17, RuntimeOptions::default());
    let rt = SearchRuntime::new(cfg.runtime.clone());
    let result =
        evolutionary_search_pareto_rt(&sc, &params, &task, &est, &cfg, &ALL_OBJECTIVES, &[], &rt);
    assert!(!result.front.is_empty());
    for name in ["yorktown", "santiago", "guadalupe"] {
        let device = Device::by_name(name).unwrap();
        let (idx, err) =
            match_front_to_device(&sc, &task, &result.front, &device, 1).expect("front point fits");
        assert!(idx < result.front.len());
        assert!((0.0..=1.0).contains(&err), "{name}: error {err}");
    }
    // A point whose mapping references a physical qubit the device lacks
    // is skipped; when no point fits the matcher reports that.
    let unmappable = vec![FrontPoint {
        gene: Gene {
            config: sc.max_config(),
            layout: vec![0, 1, 2, 9],
        },
        objectives: vec![0.1, 1.0, 1.0],
    }];
    assert_eq!(
        match_front_to_device(&sc, &task, &unmappable, &Device::yorktown(), 1),
        None
    );
}
