//! Property-based tests over the core cross-crate invariants.

use proptest::prelude::*;
use qns_circuit::{Circuit, GateKind, Param};
use qns_sim::{adjoint_gradient, run, DiagObservable, ExecMode};
use qns_tensor::C64;
use qns_transpile::{optimize, to_ibm_basis};

/// Strategy: a random parameterized circuit over `n` qubits.
fn arb_circuit(n_qubits: usize, max_ops: usize) -> impl Strategy<Value = (Circuit, Vec<f64>)> {
    let gate_pool: Vec<GateKind> = vec![
        GateKind::H,
        GateKind::X,
        GateKind::SX,
        GateKind::RX,
        GateKind::RY,
        GateKind::RZ,
        GateKind::U3,
        GateKind::CX,
        GateKind::CZ,
        GateKind::CU3,
        GateKind::RZZ,
        GateKind::CRY,
    ];
    prop::collection::vec(
        (
            0..gate_pool.len(),
            0..n_qubits,
            0..n_qubits,
            prop::collection::vec(-3.0..3.0f64, 3),
        ),
        1..max_ops,
    )
    .prop_map(move |ops| {
        let mut c = Circuit::new(n_qubits);
        let mut train = Vec::new();
        for (gi, a, b, vals) in ops {
            let kind = gate_pool[gi];
            let qs: Vec<usize> = if kind.num_qubits() == 1 {
                vec![a]
            } else if a != b {
                vec![a, b]
            } else {
                vec![a, (a + 1) % n_qubits]
            };
            let ps: Vec<Param> = (0..kind.num_params())
                .map(|k| {
                    train.push(vals[k]);
                    Param::Train(train.len() - 1)
                })
                .collect();
            c.push(kind, &qs, &ps);
        }
        (c, train)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dynamic and static (fused) execution agree on any circuit.
    #[test]
    fn exec_modes_agree((circuit, train) in arb_circuit(3, 20)) {
        let a = run(&circuit, &train, &[], ExecMode::Dynamic);
        let b = run(&circuit, &train, &[], ExecMode::Static);
        prop_assert!((a.inner(&b).abs() - 1.0).abs() < 1e-9);
    }

    /// States stay normalized through any circuit.
    #[test]
    fn norm_is_preserved((circuit, train) in arb_circuit(3, 25)) {
        let s = run(&circuit, &train, &[], ExecMode::Dynamic);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Basis lowering preserves semantics up to global phase.
    #[test]
    fn basis_lowering_is_exact((circuit, train) in arb_circuit(3, 15)) {
        let lowered = to_ibm_basis(&circuit);
        let a = run(&circuit, &train, &[], ExecMode::Dynamic);
        let b = run(&lowered, &train, &[], ExecMode::Dynamic);
        prop_assert!((a.inner(&b).abs() - 1.0).abs() < 1e-8);
    }

    /// Peephole optimization never changes semantics and never grows the
    /// circuit, at any level.
    #[test]
    fn optimization_is_sound(
        (circuit, train) in arb_circuit(3, 15),
        level in 0u8..=3,
    ) {
        let lowered = to_ibm_basis(&circuit);
        let optimized = optimize(&lowered, level);
        prop_assert!(optimized.num_ops() <= lowered.num_ops());
        let a = run(&lowered, &train, &[], ExecMode::Dynamic);
        let b = run(&optimized, &train, &[], ExecMode::Dynamic);
        prop_assert!((a.inner(&b).abs() - 1.0).abs() < 1e-7);
    }

    /// The adjoint gradient matches central finite differences on every
    /// trainable parameter of any circuit.
    #[test]
    fn adjoint_gradient_is_correct((circuit, train) in arb_circuit(3, 10)) {
        let obs = DiagObservable::new(vec![0.5, -1.0, 0.25]);
        let (_, grad) = adjoint_gradient(&circuit, &train, &[], &obs);
        let h = 1e-5;
        for i in 0..train.len().min(4) {
            let mut plus = train.clone();
            plus[i] += h;
            let mut minus = train.clone();
            minus[i] -= h;
            let ep = {
                use qns_sim::Observable as _;
                obs.expect(&run(&circuit, &plus, &[], ExecMode::Dynamic))
            };
            let em = {
                use qns_sim::Observable as _;
                obs.expect(&run(&circuit, &minus, &[], ExecMode::Dynamic))
            };
            let fd = (ep - em) / (2.0 * h);
            prop_assert!((grad[i] - fd).abs() < 1e-5,
                "param {}: adjoint {} vs fd {}", i, grad[i], fd);
        }
    }

    /// Pauli-string application is involutive (P · P = I) for any string.
    #[test]
    fn pauli_strings_are_involutive(x in 0u64..8, z in 0u64..8) {
        let p = qns_chem::PauliString { x, z };
        let mut amps = vec![C64::ZERO; 8];
        amps[5] = C64::new(0.6, 0.0);
        amps[2] = C64::new(0.0, 0.8);
        let s = qns_sim::StateVec::from_amplitudes(amps);
        let twice = p.apply(&p.apply(&s));
        prop_assert!((twice.inner(&s).abs() - 1.0).abs() < 1e-9);
    }
}
