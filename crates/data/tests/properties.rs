//! Property-based tests for the dataset generators and preprocessing.

use proptest::prelude::*;
use qns_data::{avg_pool, center_crop, image_to_input, synthetic_digits, synthetic_vowel, Dataset};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Average pooling preserves the global mean exactly.
    #[test]
    fn pooling_preserves_mean(pixels in prop::collection::vec(0.0..1.0f64, 24 * 24)) {
        let pooled = avg_pool(&pixels, 24, 4);
        let mean_in: f64 = pixels.iter().sum::<f64>() / pixels.len() as f64;
        let mean_out: f64 = pooled.iter().sum::<f64>() / pooled.len() as f64;
        prop_assert!((mean_in - mean_out).abs() < 1e-10);
    }

    /// Cropping then padding bounds: crop output values are a subset of
    /// the input values (no interpolation).
    #[test]
    fn crop_takes_existing_pixels(pixels in prop::collection::vec(0.0..1.0f64, 28 * 28)) {
        let cropped = center_crop(&pixels, 28, 24);
        prop_assert_eq!(cropped.len(), 24 * 24);
        for v in &cropped {
            prop_assert!(pixels.iter().any(|p| (p - v).abs() < 1e-15));
        }
    }

    /// The full image pipeline yields angles in [0, π].
    #[test]
    fn pipeline_outputs_valid_angles(pixels in prop::collection::vec(0.0..1.0f64, 28 * 28)) {
        for side in [4usize, 6] {
            let x = image_to_input(&pixels, side);
            prop_assert_eq!(x.len(), side * side);
            for v in x {
                prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&v));
            }
        }
    }

    /// Dataset splits are always disjoint and exhaustive.
    #[test]
    fn splits_partition_the_data(n in 10usize..80, seed in 0u64..50) {
        let ds = Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i % 2).collect(),
            2,
        );
        let s = ds.split(0.6, 0.2, seed);
        let total = s.train.num_samples() + s.valid.num_samples() + s.test.num_samples();
        prop_assert_eq!(total, n);
        let mut seen: Vec<f64> = s
            .train
            .features
            .iter()
            .chain(&s.valid.features)
            .chain(&s.test.features)
            .map(|v| v[0])
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        seen.dedup();
        prop_assert_eq!(seen.len(), n, "overlap between splits");
    }

    /// Digit generation is label-balanced for any class subset.
    #[test]
    fn digits_are_balanced(k in 2usize..5, n_per in 3usize..10, seed in 0u64..20) {
        let classes: Vec<usize> = (0..k).collect();
        let ds = synthetic_digits(&classes, n_per, seed);
        for label in 0..k {
            let count = ds.labels.iter().filter(|&&l| l == label).count();
            prop_assert_eq!(count, n_per);
        }
    }

    /// Vowel features are finite and the dataset deterministic per seed.
    #[test]
    fn vowel_generation_is_sane(seed in 0u64..20) {
        let a = synthetic_vowel(4, 100, seed);
        let b = synthetic_vowel(4, 100, seed);
        prop_assert_eq!(&a.features, &b.features);
        for row in &a.features {
            prop_assert!(row.iter().all(|v| v.is_finite()));
        }
    }
}
