//! Seeded synthetic QML datasets and rotation-gate data encoders.
//!
//! The paper evaluates on MNIST, Fashion-MNIST, and the Deterding vowel
//! dataset. Those datasets are not redistributable inside this repository,
//! so this crate generates **class-structured synthetic analogues** that
//! exercise exactly the same pipeline (see `DESIGN.md` for the substitution
//! argument):
//!
//! - [`synthetic_digits`] — 28×28 grayscale images drawn from per-digit
//!   stroke templates (seven-segment-style skeletons) with random
//!   translation, stroke jitter, and pixel noise,
//! - [`synthetic_fashion`] — 28×28 garment silhouettes (t-shirt, trouser,
//!   pullover, dress, shirt) with the same augmentations,
//! - [`synthetic_vowel`] — 10-dimensional formant-like Gaussian clusters
//!   (990 samples, matching the paper's dataset size),
//!
//! plus the paper's exact preprocessing ([`center_crop`], [`avg_pool`]) and
//! the encoder circuits of Section IV-A ([`encoder_4x4`], [`encoder_6x6`],
//! [`encoder_vowel`]).
//!
//! # Examples
//!
//! ```
//! use qns_data::{synthetic_digits, image_to_input, encoder_4x4};
//!
//! let ds = synthetic_digits(&[3, 6], 20, 7);
//! assert_eq!(ds.num_samples(), 40);
//! let x = image_to_input(&ds.features[0], 4);
//! assert_eq!(x.len(), 16);
//! let enc = encoder_4x4();
//! assert_eq!(enc.num_inputs(), 16);
//! ```

mod dataset;
mod encoder;
mod preprocess;
mod synth;

pub use dataset::{Dataset, Splits};
pub use encoder::{encoder_4x4, encoder_6x6, encoder_vowel};
pub use preprocess::{avg_pool, center_crop, image_to_input, normalize_to_angles};
pub use synth::{synthetic_digits, synthetic_fashion, synthetic_vowel};
