//! Image preprocessing: the paper's center-crop + average-pool pipeline.

/// Center-crops a square image given as a flat row-major vector.
///
/// The paper crops 28×28 inputs to 24×24.
///
/// # Panics
///
/// Panics if `image.len() != from * from` or `to > from`.
///
/// # Examples
///
/// ```
/// let img = vec![1.0; 28 * 28];
/// let cropped = qns_data::center_crop(&img, 28, 24);
/// assert_eq!(cropped.len(), 24 * 24);
/// ```
pub fn center_crop(image: &[f64], from: usize, to: usize) -> Vec<f64> {
    assert_eq!(image.len(), from * from, "image must be {from}x{from}");
    assert!(to <= from, "crop target larger than source");
    let off = (from - to) / 2;
    let mut out = Vec::with_capacity(to * to);
    for y in 0..to {
        for x in 0..to {
            out.push(image[(y + off) * from + (x + off)]);
        }
    }
    out
}

/// Average-pools a square image down to `to`×`to` (the paper pools 24×24 to
/// 4×4 for 2/4-class tasks and to 6×6 for MNIST-10).
///
/// # Panics
///
/// Panics if `from` is not divisible by `to` or sizes mismatch.
pub fn avg_pool(image: &[f64], from: usize, to: usize) -> Vec<f64> {
    assert_eq!(image.len(), from * from, "image must be {from}x{from}");
    assert!(
        to > 0 && from.is_multiple_of(to),
        "{from} not divisible by {to}"
    );
    let k = from / to;
    let mut out = Vec::with_capacity(to * to);
    for by in 0..to {
        for bx in 0..to {
            let mut sum = 0.0;
            for dy in 0..k {
                for dx in 0..k {
                    sum += image[(by * k + dy) * from + (bx * k + dx)];
                }
            }
            out.push(sum / (k * k) as f64);
        }
    }
    out
}

/// Rescales pooled pixel values (≈[0, 1]) to rotation angles in `[0, π]`.
pub fn normalize_to_angles(values: &[f64]) -> Vec<f64> {
    values
        .iter()
        .map(|&v| v.clamp(0.0, 1.0) * std::f64::consts::PI)
        .collect()
}

/// The full image pipeline: 28×28 → center-crop 24×24 → average-pool to
/// `side`×`side` → angles in `[0, π]`, flattened for the encoder circuit.
///
/// # Panics
///
/// Panics if the image is not 28×28 or `side` does not divide 24.
pub fn image_to_input(image: &[f64], side: usize) -> Vec<f64> {
    let cropped = center_crop(image, 28, 24);
    let pooled = avg_pool(&cropped, 24, side);
    normalize_to_angles(&pooled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crop_keeps_center() {
        // Mark the exact center pixel of a 4x4 and crop to 2x2.
        let mut img = vec![0.0; 16];
        img[4 + 1] = 1.0; // inside the center 2x2 window (rows 1-2, cols 1-2)
        let c = center_crop(&img, 4, 2);
        assert_eq!(c, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pool_averages_blocks() {
        // 4x4 image of one block of ones and three blocks of zeros.
        let mut img = vec![0.0; 16];
        for y in 0..2 {
            for x in 0..2 {
                img[y * 4 + x] = 1.0;
            }
        }
        let p = avg_pool(&img, 4, 2);
        assert_eq!(p, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pool_of_constant_is_constant() {
        let img = vec![0.5; 24 * 24];
        let p = avg_pool(&img, 24, 4);
        assert_eq!(p.len(), 16);
        assert!(p.iter().all(|&v| (v - 0.5).abs() < 1e-12));
    }

    #[test]
    fn angles_are_bounded() {
        let a = normalize_to_angles(&[-0.5, 0.0, 0.5, 1.0, 2.0]);
        assert_eq!(a[0], 0.0);
        assert!((a[2] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((a[4] - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn full_pipeline_shapes() {
        let img = vec![0.3; 28 * 28];
        assert_eq!(image_to_input(&img, 4).len(), 16);
        assert_eq!(image_to_input(&img, 6).len(), 36);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_pool_size_panics() {
        let _ = avg_pool(&vec![0.0; 24 * 24], 24, 5);
    }
}
