//! Labelled datasets and split handling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A labelled dataset: flat feature vectors plus class labels in
/// `0..num_classes`.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    /// One flat feature vector per sample (raw pixels or formant features).
    pub features: Vec<Vec<f64>>,
    /// Class label per sample, in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of distinct classes.
    pub num_classes: usize,
}

/// Train/validation/test split of a [`Dataset`].
#[derive(Clone, Debug, PartialEq)]
pub struct Splits {
    /// Training split.
    pub train: Dataset,
    /// Validation split (the evolutionary search's fitness data).
    pub valid: Dataset,
    /// Test split (reported accuracy).
    pub test: Dataset,
}

impl Dataset {
    /// Creates a dataset, checking invariants.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or a label is out of range.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.len(), labels.len(), "one label per sample");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            features,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.labels.len()
    }

    /// Feature dimension (0 if empty).
    pub fn dim(&self) -> usize {
        self.features.first().map(Vec::len).unwrap_or(0)
    }

    /// Deterministically shuffles and splits by the given fractions.
    /// The paper uses train:valid = 95:5 for MNIST/Fashion and
    /// train:valid:test = 6:1:3 for vowel.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are not positive or sum above 1.
    pub fn split(&self, train_frac: f64, valid_frac: f64, seed: u64) -> Splits {
        assert!(
            train_frac > 0.0 && valid_frac > 0.0,
            "fractions must be positive"
        );
        assert!(train_frac + valid_frac <= 1.0 + 1e-12, "fractions exceed 1");
        let mut idx: Vec<usize> = (0..self.num_samples()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_train = (self.num_samples() as f64 * train_frac).round() as usize;
        let n_valid = (self.num_samples() as f64 * valid_frac).round() as usize;
        let take = |ids: &[usize]| -> Dataset {
            Dataset {
                features: ids.iter().map(|&i| self.features[i].clone()).collect(),
                labels: ids.iter().map(|&i| self.labels[i]).collect(),
                num_classes: self.num_classes,
            }
        };
        Splits {
            train: take(&idx[..n_train]),
            valid: take(&idx[n_train..(n_train + n_valid).min(idx.len())]),
            test: take(&idx[(n_train + n_valid).min(idx.len())..]),
        }
    }

    /// A deterministic subsample of `n` items (the paper's 300-image test
    /// subset for measured accuracy).
    pub fn subsample(&self, n: usize, seed: u64) -> Dataset {
        let mut idx: Vec<usize> = (0..self.num_samples()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        idx.truncate(n.min(self.num_samples()));
        Dataset {
            features: idx.iter().map(|&i| self.features[i].clone()).collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Applies a per-sample transform to the features.
    pub fn map_features(&self, f: impl Fn(&[f64]) -> Vec<f64>) -> Dataset {
        Dataset {
            features: self.features.iter().map(|x| f(x)).collect(),
            labels: self.labels.clone(),
            num_classes: self.num_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i % 2).collect(),
            2,
        )
    }

    #[test]
    fn split_sizes_add_up() {
        let ds = toy(100);
        let s = ds.split(0.6, 0.1, 1);
        assert_eq!(s.train.num_samples(), 60);
        assert_eq!(s.valid.num_samples(), 10);
        assert_eq!(s.test.num_samples(), 30);
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let ds = toy(50);
        let a = ds.split(0.5, 0.2, 9);
        let b = ds.split(0.5, 0.2, 9);
        assert_eq!(a.train.features, b.train.features);
        let mut all: Vec<f64> = a
            .train
            .features
            .iter()
            .chain(a.valid.features.iter())
            .chain(a.test.features.iter())
            .map(|v| v[0])
            .collect();
        all.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let expected: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn subsample_is_bounded_and_seeded() {
        let ds = toy(40);
        let a = ds.subsample(10, 3);
        let b = ds.subsample(10, 3);
        assert_eq!(a.features, b.features);
        assert_eq!(a.num_samples(), 10);
        assert_eq!(ds.subsample(1000, 3).num_samples(), 40);
    }

    #[test]
    fn map_features_preserves_labels() {
        let ds = toy(4);
        let doubled = ds.map_features(|x| vec![2.0 * x[0]]);
        assert_eq!(doubled.labels, ds.labels);
        assert_eq!(doubled.features[1][0], 2.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let _ = Dataset::new(vec![vec![0.0]], vec![5], 2);
    }
}
