//! Rotation-gate data encoders from Section IV-A of the paper.

use qns_circuit::{Circuit, GateKind, Param};

/// Appends one encoding layer of `kind` gates over the first `count`
/// qubits, consuming consecutive input indices starting at `next_input`.
fn encode_layer(c: &mut Circuit, kind: GateKind, count: usize, next_input: &mut usize) {
    for q in 0..count {
        c.push(kind, &[q], &[Param::Input(*next_input)]);
        *next_input += 1;
    }
}

/// Encoder for 4×4 down-sampled images on 4 qubits: four layers of
/// 4×RX, 4×RY, 4×RZ, 4×RX consuming the 16 pixels as rotation angles.
///
/// # Examples
///
/// ```
/// let enc = qns_data::encoder_4x4();
/// assert_eq!(enc.num_qubits(), 4);
/// assert_eq!(enc.num_inputs(), 16);
/// assert_eq!(enc.num_ops(), 16);
/// ```
pub fn encoder_4x4() -> Circuit {
    let mut c = Circuit::new(4);
    let mut i = 0;
    encode_layer(&mut c, GateKind::RX, 4, &mut i);
    encode_layer(&mut c, GateKind::RY, 4, &mut i);
    encode_layer(&mut c, GateKind::RZ, 4, &mut i);
    encode_layer(&mut c, GateKind::RX, 4, &mut i);
    c
}

/// Encoder for 6×6 down-sampled images on 10 qubits (MNIST-10): layers of
/// 10×RX, 10×RY, 10×RZ, 6×RX consuming the 36 pixels.
pub fn encoder_6x6() -> Circuit {
    let mut c = Circuit::new(10);
    let mut i = 0;
    encode_layer(&mut c, GateKind::RX, 10, &mut i);
    encode_layer(&mut c, GateKind::RY, 10, &mut i);
    encode_layer(&mut c, GateKind::RZ, 10, &mut i);
    encode_layer(&mut c, GateKind::RX, 6, &mut i);
    c
}

/// Encoder for the 10 PCA'd vowel features on 4 qubits: layers of 4×RX,
/// 4×RY, 2×RZ.
pub fn encoder_vowel() -> Circuit {
    let mut c = Circuit::new(4);
    let mut i = 0;
    encode_layer(&mut c, GateKind::RX, 4, &mut i);
    encode_layer(&mut c, GateKind::RY, 4, &mut i);
    encode_layer(&mut c, GateKind::RZ, 2, &mut i);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_sim::{run, ExecMode};

    #[test]
    fn encoder_6x6_consumes_36_inputs() {
        let enc = encoder_6x6();
        assert_eq!(enc.num_qubits(), 10);
        assert_eq!(enc.num_inputs(), 36);
        assert_eq!(enc.num_ops(), 36);
    }

    #[test]
    fn encoder_vowel_consumes_10_inputs() {
        let enc = encoder_vowel();
        assert_eq!(enc.num_qubits(), 4);
        assert_eq!(enc.num_inputs(), 10);
    }

    #[test]
    fn encoders_have_no_trainable_params() {
        for enc in [encoder_4x4(), encoder_6x6(), encoder_vowel()] {
            assert_eq!(enc.num_train_params(), 0);
        }
    }

    #[test]
    fn different_inputs_give_different_states() {
        let enc = encoder_4x4();
        let a = run(&enc, &[], &[0.3; 16], ExecMode::Dynamic);
        let b = run(&enc, &[], &[1.2; 16], ExecMode::Dynamic);
        assert!(a.inner(&b).abs() < 0.999);
    }

    #[test]
    fn zero_input_is_zero_state_up_to_phase() {
        let enc = encoder_4x4();
        let s = run(&enc, &[], &[0.0; 16], ExecMode::Dynamic);
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
    }
}
