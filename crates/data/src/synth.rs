//! Seeded synthetic image and feature generators.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const W: usize = 28;

/// A 28×28 canvas with simple rasterization helpers.
struct Canvas {
    px: Vec<f64>,
}

impl Canvas {
    fn new() -> Self {
        Canvas {
            px: vec![0.0; W * W],
        }
    }

    fn set(&mut self, x: i32, y: i32, v: f64) {
        if (0..W as i32).contains(&x) && (0..W as i32).contains(&y) {
            let i = y as usize * W + x as usize;
            self.px[i] = self.px[i].max(v);
        }
    }

    /// Thick line from `(x0, y0)` to `(x1, y1)`.
    fn line(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, thickness: f64) {
        let steps = ((x1 - x0).abs().max((y1 - y0).abs()) * 2.0).ceil() as usize + 1;
        for s in 0..=steps {
            let t = s as f64 / steps as f64;
            let cx = x0 + t * (x1 - x0);
            let cy = y0 + t * (y1 - y0);
            let r = thickness.ceil() as i32;
            for dy in -r..=r {
                for dx in -r..=r {
                    let d = ((dx * dx + dy * dy) as f64).sqrt();
                    if d <= thickness {
                        self.set(cx.round() as i32 + dx, cy.round() as i32 + dy, 1.0);
                    }
                }
            }
        }
    }

    /// Filled axis-aligned rectangle.
    fn rect(&mut self, x0: f64, y0: f64, x1: f64, y1: f64) {
        for y in y0.round() as i32..=y1.round() as i32 {
            for x in x0.round() as i32..=x1.round() as i32 {
                self.set(x, y, 1.0);
            }
        }
    }

    /// Filled trapezoid symmetric about a vertical axis.
    fn trapezoid(&mut self, cx: f64, y0: f64, y1: f64, w_top: f64, w_bottom: f64) {
        for y in y0.round() as i32..=y1.round() as i32 {
            let t = (y as f64 - y0) / (y1 - y0).max(1.0);
            let half = 0.5 * (w_top + t * (w_bottom - w_top));
            for x in (cx - half).round() as i32..=(cx + half).round() as i32 {
                self.set(x, y, 1.0);
            }
        }
    }

    /// Applies translation, multiplicative intensity, and pixel noise.
    fn finish(mut self, rng: &mut StdRng) -> Vec<f64> {
        let dx = rng.gen_range(-3i32..=3);
        let dy = rng.gen_range(-3i32..=3);
        let intensity = rng.gen_range(0.55..1.0);
        let mut out = vec![0.0; W * W];
        for y in 0..W as i32 {
            for x in 0..W as i32 {
                let sx = x - dx;
                let sy = y - dy;
                let v = if (0..W as i32).contains(&sx) && (0..W as i32).contains(&sy) {
                    self.px[sy as usize * W + sx as usize]
                } else {
                    0.0
                };
                let noise = rng.gen_range(-0.22..0.22);
                out[y as usize * W + x as usize] = (v * intensity + noise).clamp(0.0, 1.0);
            }
        }
        self.px.clear();
        out
    }
}

/// Seven-segment-style segment endpoints on the 28×28 canvas.
/// Segments: 0 top, 1 top-left, 2 top-right, 3 middle, 4 bottom-left,
/// 5 bottom-right, 6 bottom.
fn segment_coords(seg: usize, j: f64) -> (f64, f64, f64, f64) {
    let (l, r, t, m, b) = (8.0 + j, 20.0 - j, 5.0, 14.0, 23.0);
    match seg {
        0 => (l, t, r, t),
        1 => (l, t, l, m),
        2 => (r, t, r, m),
        3 => (l, m, r, m),
        4 => (l, m, l, b),
        5 => (r, m, r, b),
        6 => (l, b, r, b),
        _ => unreachable!("7 segments"),
    }
}

/// Which segments make up each digit, seven-segment style.
fn digit_segments(d: usize) -> &'static [usize] {
    match d {
        0 => &[0, 1, 2, 4, 5, 6],
        1 => &[2, 5],
        2 => &[0, 2, 3, 4, 6],
        3 => &[0, 2, 3, 5, 6],
        4 => &[1, 2, 3, 5],
        5 => &[0, 1, 3, 5, 6],
        6 => &[0, 1, 3, 4, 5, 6],
        7 => &[0, 2, 5],
        8 => &[0, 1, 2, 3, 4, 5, 6],
        9 => &[0, 1, 2, 3, 5, 6],
        _ => panic!("digit {d} out of range"),
    }
}

/// Generates an MNIST-like synthetic digit dataset.
///
/// Each class uses a seven-segment-style stroke skeleton rendered at 28×28
/// with per-sample stroke jitter, ±2 px translation, intensity variation,
/// and pixel noise — enough intra-class variance to make classification
/// non-trivial while keeping classes separable, which is what the NAS
/// pipeline needs from MNIST. Labels are re-indexed to `0..classes.len()`.
///
/// # Panics
///
/// Panics if `classes` is empty or contains a digit above 9.
pub fn synthetic_digits(classes: &[usize], n_per_class: usize, seed: u64) -> Dataset {
    assert!(!classes.is_empty(), "need at least one class");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(classes.len() * n_per_class);
    let mut labels = Vec::with_capacity(classes.len() * n_per_class);
    for (label, &digit) in classes.iter().enumerate() {
        for _ in 0..n_per_class {
            let mut canvas = Canvas::new();
            let jitter = rng.gen_range(-1.8..1.8);
            let thickness = rng.gen_range(1.0..2.6);
            for &seg in digit_segments(digit) {
                let (x0, y0, x1, y1) = segment_coords(seg, jitter);
                let wob = rng.gen_range(-1.4..1.4);
                canvas.line(x0 + wob, y0, x1 + wob, y1, thickness);
            }
            features.push(canvas.finish(&mut rng));
            labels.push(label);
        }
    }
    Dataset::new(features, labels, classes.len())
}

/// Garment silhouettes for the Fashion-MNIST analogue. Class ids follow
/// Fashion-MNIST: 0 t-shirt/top, 1 trouser, 2 pullover, 3 dress, 6 shirt.
fn draw_garment(canvas: &mut Canvas, class: usize, rng: &mut StdRng) {
    let j = rng.gen_range(-2.0..2.0);
    match class {
        0 => {
            // T-shirt: torso + short sleeves.
            canvas.rect(9.0 + j, 8.0, 19.0 + j, 24.0);
            canvas.rect(4.0 + j, 8.0, 9.0 + j, 13.0);
            canvas.rect(19.0 + j, 8.0, 24.0 + j, 13.0);
        }
        1 => {
            // Trouser: waist + two legs.
            canvas.rect(9.0 + j, 5.0, 19.0 + j, 10.0);
            canvas.rect(9.0 + j, 10.0, 13.0 + j, 25.0);
            canvas.rect(15.0 + j, 10.0, 19.0 + j, 25.0);
        }
        2 => {
            // Pullover: torso + long sleeves.
            canvas.rect(9.0 + j, 7.0, 19.0 + j, 24.0);
            canvas.rect(3.0 + j, 7.0, 9.0 + j, 22.0);
            canvas.rect(19.0 + j, 7.0, 25.0 + j, 22.0);
        }
        3 => {
            // Dress: mildly flared trapezoid (kept close to a shirt torso
            // so 2-class fashion stays non-trivial after pooling).
            canvas.trapezoid(14.0 + j, 6.0, 24.0, 8.0, 12.0);
        }
        6 => {
            // Shirt: torso + long sleeves + collar notch (kept dark).
            canvas.rect(9.0 + j, 7.0, 19.0 + j, 24.0);
            canvas.rect(4.0 + j, 7.0, 9.0 + j, 18.0);
            canvas.rect(19.0 + j, 7.0, 24.0 + j, 18.0);
            for y in 5..9 {
                for x in 12..=16 {
                    canvas.px[y * W + x] = 0.0;
                }
            }
            canvas.line(12.0 + j, 7.0, 14.0 + j, 11.0, 0.8);
            canvas.line(16.0 + j, 7.0, 14.0 + j, 11.0, 0.8);
        }
        _ => panic!("unsupported fashion class {class}"),
    }
}

/// Generates a Fashion-MNIST-like synthetic dataset.
///
/// Supported class ids (Fashion-MNIST numbering): 0 t-shirt/top, 1 trouser,
/// 2 pullover, 3 dress, 6 shirt — the classes the paper uses. Labels are
/// re-indexed to `0..classes.len()`.
///
/// # Panics
///
/// Panics if `classes` is empty or contains an unsupported class id.
pub fn synthetic_fashion(classes: &[usize], n_per_class: usize, seed: u64) -> Dataset {
    assert!(!classes.is_empty(), "need at least one class");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA510);
    let mut features = Vec::with_capacity(classes.len() * n_per_class);
    let mut labels = Vec::with_capacity(classes.len() * n_per_class);
    for (label, &class) in classes.iter().enumerate() {
        for _ in 0..n_per_class {
            let mut canvas = Canvas::new();
            draw_garment(&mut canvas, class, &mut rng);
            features.push(canvas.finish(&mut rng));
            labels.push(label);
        }
    }
    Dataset::new(features, labels, classes.len())
}

/// Generates a vowel-like dataset: `n_total` samples of 10-dimensional
/// formant-style features in class-conditional Gaussian clusters (the
/// paper's vowel-4 task uses 990 samples, 4 classes, PCA to 10 dims).
///
/// Cluster centers are seeded per class; overlapping covariance keeps the
/// task non-trivial. Labels are `0..n_classes`.
///
/// # Panics
///
/// Panics if `n_classes` is zero.
pub fn synthetic_vowel(n_classes: usize, n_total: usize, seed: u64) -> Dataset {
    assert!(n_classes > 0, "need at least one class");
    let dim = 10;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x70E1);
    // Class centers: well separated but with overlapping spread.
    let centers: Vec<Vec<f64>> = (0..n_classes)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.5..1.5)).collect())
        .collect();
    let mut features = Vec::with_capacity(n_total);
    let mut labels = Vec::with_capacity(n_total);
    for i in 0..n_total {
        let label = i % n_classes;
        let x: Vec<f64> = centers[label]
            .iter()
            .map(|&c| {
                // Approximate Gaussian: sum of uniforms.
                let g: f64 = (0..4).map(|_| rng.gen_range(-0.5..0.5)).sum();
                c + 1.3 * g
            })
            .collect();
        features.push(x);
        labels.push(label);
    }
    Dataset::new(features, labels, n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_have_correct_shape_and_range() {
        let ds = synthetic_digits(&[0, 1, 2, 3], 5, 1);
        assert_eq!(ds.num_samples(), 20);
        assert_eq!(ds.dim(), 28 * 28);
        assert_eq!(ds.num_classes, 4);
        for x in &ds.features {
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_digits(&[3, 6], 4, 42);
        let b = synthetic_digits(&[3, 6], 4, 42);
        assert_eq!(a.features, b.features);
        let c = synthetic_digits(&[3, 6], 4, 43);
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean images of different digits should differ substantially.
        let ds = synthetic_digits(&[1, 8], 20, 7);
        let mean_of = |label: usize| -> Vec<f64> {
            let rows: Vec<&Vec<f64>> = ds
                .features
                .iter()
                .zip(&ds.labels)
                .filter(|(_, &l)| l == label)
                .map(|(f, _)| f)
                .collect();
            (0..ds.dim())
                .map(|j| rows.iter().map(|r| r[j]).sum::<f64>() / rows.len() as f64)
                .collect()
        };
        let m1 = mean_of(0);
        let m8 = mean_of(1);
        let dist: f64 = m1
            .iter()
            .zip(&m8)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 3.0, "digit means too close: {dist}");
    }

    #[test]
    fn same_class_samples_vary() {
        let ds = synthetic_digits(&[5], 2, 11);
        assert_ne!(ds.features[0], ds.features[1]);
    }

    #[test]
    fn fashion_supports_paper_classes() {
        let ds = synthetic_fashion(&[0, 1, 2, 3], 3, 2);
        assert_eq!(ds.num_samples(), 12);
        let ds2 = synthetic_fashion(&[3, 6], 3, 2);
        assert_eq!(ds2.num_classes, 2);
    }

    #[test]
    #[should_panic(expected = "unsupported fashion class")]
    fn unknown_fashion_class_panics() {
        let _ = synthetic_fashion(&[9], 1, 0);
    }

    #[test]
    fn vowel_shape_and_balance() {
        let ds = synthetic_vowel(4, 990, 5);
        assert_eq!(ds.num_samples(), 990);
        assert_eq!(ds.dim(), 10);
        for class in 0..4 {
            let count = ds.labels.iter().filter(|&&l| l == class).count();
            assert!((246..=249).contains(&count), "class {class}: {count}");
        }
    }

    #[test]
    fn vowel_clusters_are_separated() {
        let ds = synthetic_vowel(2, 200, 9);
        let mean_of = |label: usize| -> Vec<f64> {
            let rows: Vec<&Vec<f64>> = ds
                .features
                .iter()
                .zip(&ds.labels)
                .filter(|(_, &l)| l == label)
                .map(|(f, _)| f)
                .collect();
            (0..10)
                .map(|j| rows.iter().map(|r| r[j]).sum::<f64>() / rows.len() as f64)
                .collect()
        };
        let d: f64 = mean_of(0)
            .iter()
            .zip(mean_of(1))
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(d > 0.5, "cluster centers too close: {d}");
    }
}
