//! OpenQASM 2.0 export — the "push-the-button deployment" path.
//!
//! The paper's QuantumEngine converts trained circuits into Qiskit
//! `QuantumCircuit`s for execution on IBMQ. The portable equivalent is an
//! OpenQASM 2.0 dump: every gate in the library maps to `qelib1.inc`
//! gates, with parameters resolved against a trained parameter vector and
//! a per-sample input.

use crate::{Circuit, GateKind};
use std::fmt::Write as _;

/// Renders a circuit as an OpenQASM 2.0 program.
///
/// Parameters are resolved with `train`/`input` (QASM has no symbolic
/// parameters), and every qubit is measured at the end into a classical
/// register, matching how deployed QML/VQE circuits are read out.
///
/// # Errors
///
/// Returns the offending gate if the circuit contains a gate with no
/// `qelib1.inc` counterpart (none currently — every [`GateKind`] maps).
///
/// # Panics
///
/// Panics if a referenced parameter index is out of bounds.
///
/// # Examples
///
/// ```
/// use qns_circuit::{to_qasm, Circuit, GateKind, Param};
///
/// let mut c = Circuit::new(2);
/// c.push(GateKind::H, &[0], &[]);
/// c.push(GateKind::CX, &[0, 1], &[]);
/// c.push(GateKind::RY, &[1], &[Param::Train(0)]);
/// let qasm = to_qasm(&c, &[0.5], &[]).unwrap();
/// assert!(qasm.contains("OPENQASM 2.0"));
/// assert!(qasm.contains("cx q[0],q[1];"));
/// assert!(qasm.contains("ry(0.5"));
/// ```
pub fn to_qasm(circuit: &Circuit, train: &[f64], input: &[f64]) -> Result<String, GateKind> {
    let n = circuit.num_qubits();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{n}];");
    let _ = writeln!(out, "creg c[{n}];");

    for op in circuit.iter() {
        let p = op.resolve_params(train, input);
        let (q0, q1) = (op.qubits[0], op.qubits[1]);
        match op.kind {
            GateKind::I => {
                let _ = writeln!(out, "id q[{q0}];");
            }
            GateKind::X => {
                let _ = writeln!(out, "x q[{q0}];");
            }
            GateKind::Y => {
                let _ = writeln!(out, "y q[{q0}];");
            }
            GateKind::Z => {
                let _ = writeln!(out, "z q[{q0}];");
            }
            GateKind::H => {
                let _ = writeln!(out, "h q[{q0}];");
            }
            GateKind::S => {
                let _ = writeln!(out, "s q[{q0}];");
            }
            GateKind::Sdg => {
                let _ = writeln!(out, "sdg q[{q0}];");
            }
            GateKind::T => {
                let _ = writeln!(out, "t q[{q0}];");
            }
            GateKind::Tdg => {
                let _ = writeln!(out, "tdg q[{q0}];");
            }
            GateKind::SX => {
                let _ = writeln!(out, "sx q[{q0}];");
            }
            GateKind::SXdg => {
                let _ = writeln!(out, "sxdg q[{q0}];");
            }
            // √H has no qelib1 name. It is a π/2 rotation about the
            // (x+z)/√2 axis, i.e. RY(π/4)·RZ(π/2)·RY(−π/4) up to phase.
            GateKind::SH => {
                let q = std::f64::consts::FRAC_PI_4;
                let _ = writeln!(out, "ry(-{q:.12}) q[{q0}];");
                let _ = writeln!(out, "rz({:.12}) q[{q0}];", 2.0 * q);
                let _ = writeln!(out, "ry({q:.12}) q[{q0}];");
            }
            GateKind::RX => {
                let _ = writeln!(out, "rx({:.12}) q[{q0}];", p[0]);
            }
            GateKind::RY => {
                let _ = writeln!(out, "ry({:.12}) q[{q0}];", p[0]);
            }
            GateKind::RZ => {
                let _ = writeln!(out, "rz({:.12}) q[{q0}];", p[0]);
            }
            GateKind::U1 => {
                let _ = writeln!(out, "u1({:.12}) q[{q0}];", p[0]);
            }
            GateKind::U2 => {
                let _ = writeln!(out, "u2({:.12},{:.12}) q[{q0}];", p[0], p[1]);
            }
            GateKind::U3 => {
                let _ = writeln!(out, "u3({:.12},{:.12},{:.12}) q[{q0}];", p[0], p[1], p[2]);
            }
            GateKind::CX => {
                let _ = writeln!(out, "cx q[{q0}],q[{q1}];");
            }
            GateKind::CY => {
                let _ = writeln!(out, "cy q[{q0}],q[{q1}];");
            }
            GateKind::CZ => {
                let _ = writeln!(out, "cz q[{q0}],q[{q1}];");
            }
            GateKind::CH => {
                let _ = writeln!(out, "ch q[{q0}],q[{q1}];");
            }
            GateKind::Swap => {
                let _ = writeln!(out, "swap q[{q0}],q[{q1}];");
            }
            // √SWAP has no qelib1 name: exact XX+YY+ZZ rotation product.
            GateKind::SqrtSwap => {
                let t = std::f64::consts::FRAC_PI_4;
                let _ = writeln!(out, "rxx({t:.12}) q[{q0}],q[{q1}];");
                let _ = writeln!(out, "ryy({t:.12}) q[{q0}],q[{q1}];");
                let _ = writeln!(out, "rzz({t:.12}) q[{q0}],q[{q1}];");
            }
            GateKind::CRX => {
                let _ = writeln!(out, "crx({:.12}) q[{q0}],q[{q1}];", p[0]);
            }
            GateKind::CRY => {
                let _ = writeln!(out, "cry({:.12}) q[{q0}],q[{q1}];", p[0]);
            }
            GateKind::CRZ => {
                let _ = writeln!(out, "crz({:.12}) q[{q0}],q[{q1}];", p[0]);
            }
            GateKind::CU1 => {
                let _ = writeln!(out, "cu1({:.12}) q[{q0}],q[{q1}];", p[0]);
            }
            GateKind::CU3 => {
                let _ = writeln!(
                    out,
                    "cu3({:.12},{:.12},{:.12}) q[{q0}],q[{q1}];",
                    p[0], p[1], p[2]
                );
            }
            GateKind::RZZ => {
                let _ = writeln!(out, "rzz({:.12}) q[{q0}],q[{q1}];", p[0]);
            }
            GateKind::RXX => {
                let _ = writeln!(out, "rxx({:.12}) q[{q0}],q[{q1}];", p[0]);
            }
            GateKind::RYY => {
                let _ = writeln!(out, "ryy({:.12}) q[{q0}],q[{q1}];", p[0]);
            }
            // ZX coupling: H-conjugated rzz, kept explicit.
            GateKind::RZX => {
                let _ = writeln!(out, "h q[{q1}];");
                let _ = writeln!(out, "rzz({:.12}) q[{q0}],q[{q1}];", p[0]);
                let _ = writeln!(out, "h q[{q1}];");
            }
        }
    }
    for q in 0..n {
        let _ = writeln!(out, "measure q[{q}] -> c[{q}];");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Param;

    #[test]
    fn header_registers_and_measures() {
        let mut c = Circuit::new(3);
        c.push(GateKind::H, &[0], &[]);
        let q = to_qasm(&c, &[], &[]).expect("qasm export");
        assert!(q.starts_with("OPENQASM 2.0;"));
        assert!(q.contains("qreg q[3];"));
        assert!(q.contains("creg c[3];"));
        assert_eq!(q.matches("measure").count(), 3);
    }

    #[test]
    fn every_gate_kind_exports() {
        for &kind in GateKind::all() {
            let mut c = Circuit::new(2);
            let qs: Vec<usize> = (0..kind.num_qubits()).collect();
            let ps: Vec<Param> = (0..kind.num_params())
                .map(|i| Param::Fixed(0.1 * (i + 1) as f64))
                .collect();
            c.push(kind, &qs, &ps);
            let q = to_qasm(&c, &[], &[]).expect("every gate maps");
            assert!(q.lines().count() >= 5, "{kind}: {q}");
        }
    }

    #[test]
    fn parameters_are_resolved() {
        let mut c = Circuit::new(1);
        c.push(GateKind::RX, &[0], &[Param::Input(0)]);
        c.push(GateKind::RZ, &[0], &[Param::Train(0)]);
        let q = to_qasm(&c, &[2.5], &[1.25]).expect("qasm export");
        assert!(q.contains("rx(1.25"));
        assert!(q.contains("rz(2.5"));
    }

    #[test]
    fn sqrt_h_expansion_is_exact_up_to_phase() {
        // The QASM emission for SH is ry(-π/4) rz(π/2) ry(π/4); check the
        // matrix product against the gate's own matrix.
        let q = std::f64::consts::FRAC_PI_4;
        let seq = |kind: GateKind, angle: f64| match kind.matrix(&[angle]) {
            crate::GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        // Applied first = rightmost in the product.
        let m = seq(GateKind::RY, q)
            .mul_mat(&seq(GateKind::RZ, 2.0 * q))
            .mul_mat(&seq(GateKind::RY, -q));
        let sh = match GateKind::SH.matrix(&[]) {
            crate::GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        // m ≅ sh up to global phase: m† sh must be a phase times identity.
        let prod = m.adjoint().mul_mat(&sh);
        let phase = prod.m[0];
        assert!((phase.abs() - 1.0).abs() < 1e-10);
        assert!(prod.approx_eq(&qns_tensor::Mat2::identity().scale(phase), 1e-10));
    }

    #[test]
    fn affine_parameters_resolve_numerically() {
        let mut c = Circuit::new(1);
        c.push(
            GateKind::RZ,
            &[0],
            &[Param::AffineTrain {
                index: 0,
                scale: 2.0,
                offset: 1.0,
            }],
        );
        let q = to_qasm(&c, &[0.5], &[]).expect("qasm export");
        assert!(q.contains("rz(2."), "{q}");
    }
}
