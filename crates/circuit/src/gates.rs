//! The gate library: matrices and analytic parameter derivatives.

use qns_tensor::{Mat2, Mat4, C64};

/// Either a one-qubit or a two-qubit gate matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GateMatrix {
    /// A 2×2 unitary acting on one qubit.
    One(Mat2),
    /// A 4×4 unitary acting on two qubits (first qubit = high bit).
    Two(Mat4),
}

/// Every gate used by the paper's six circuit design spaces plus the IBMQ
/// hardware basis set.
///
/// Parameterized rotation gates follow the Qiskit convention
/// `R_P(θ) = exp(-i θ/2 P)`; `U1`/`U2`/`U3` are the standard IBM generic
/// single-qubit gates. Two-qubit couplers `RZZ`/`RZX`/`RXX`/`RYY` are
/// `exp(-i θ/2 P⊗P')` (the paper's "ZZ", "ZX", "XX" layers).
///
/// # Examples
///
/// ```
/// use qns_circuit::GateKind;
/// assert_eq!(GateKind::U3.num_params(), 3);
/// assert_eq!(GateKind::CX.num_qubits(), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    // --- one-qubit, fixed ---
    /// Identity (used as an explicit placeholder by some passes).
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Square root of Hadamard (the RXYZ space's leading layer).
    SH,
    /// Phase gate S = diag(1, i).
    S,
    /// S dagger.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T dagger.
    Tdg,
    /// Square root of X (IBM basis gate).
    SX,
    /// SX dagger.
    SXdg,
    // --- one-qubit, parameterized ---
    /// X rotation `exp(-iθ/2 X)`; 1 parameter.
    RX,
    /// Y rotation `exp(-iθ/2 Y)`; 1 parameter.
    RY,
    /// Z rotation `exp(-iθ/2 Z)`; 1 parameter.
    RZ,
    /// Phase gate `diag(1, e^{iλ})`; 1 parameter.
    U1,
    /// `U2(φ, λ)`; 2 parameters.
    U2,
    /// Generic single-qubit gate `U3(θ, φ, λ)`; 3 parameters.
    U3,
    // --- two-qubit, fixed ---
    /// Controlled-X (CNOT). First operand is the control.
    CX,
    /// Controlled-Y.
    CY,
    /// Controlled-Z.
    CZ,
    /// Controlled-H.
    CH,
    /// SWAP.
    Swap,
    /// Square root of SWAP.
    SqrtSwap,
    // --- two-qubit, parameterized ---
    /// Controlled RX; 1 parameter.
    CRX,
    /// Controlled RY; 1 parameter.
    CRY,
    /// Controlled RZ; 1 parameter.
    CRZ,
    /// Controlled U1 (a.k.a. CPhase); 1 parameter.
    CU1,
    /// Controlled U3; 3 parameters.
    CU3,
    /// Ising ZZ coupling `exp(-iθ/2 Z⊗Z)`; 1 parameter.
    RZZ,
    /// Cross-resonance style `exp(-iθ/2 Z⊗X)`; 1 parameter.
    RZX,
    /// Ising XX coupling `exp(-iθ/2 X⊗X)`; 1 parameter.
    RXX,
    /// Ising YY coupling `exp(-iθ/2 Y⊗Y)`; 1 parameter.
    RYY,
}

impl GateKind {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn num_qubits(self) -> usize {
        use GateKind::*;
        match self {
            I | X | Y | Z | H | SH | S | Sdg | T | Tdg | SX | SXdg | RX | RY | RZ | U1 | U2
            | U3 => 1,
            _ => 2,
        }
    }

    /// Number of continuous parameters the gate takes.
    pub fn num_params(self) -> usize {
        use GateKind::*;
        match self {
            RX | RY | RZ | U1 | CRX | CRY | CRZ | CU1 | RZZ | RZX | RXX | RYY => 1,
            U2 => 2,
            U3 | CU3 => 3,
            _ => 0,
        }
    }

    /// Lowercase mnemonic, matching common OpenQASM names where they exist.
    pub fn name(self) -> &'static str {
        use GateKind::*;
        match self {
            I => "id",
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            SH => "sh",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            SX => "sx",
            SXdg => "sxdg",
            RX => "rx",
            RY => "ry",
            RZ => "rz",
            U1 => "u1",
            U2 => "u2",
            U3 => "u3",
            CX => "cx",
            CY => "cy",
            CZ => "cz",
            CH => "ch",
            Swap => "swap",
            SqrtSwap => "sswap",
            CRX => "crx",
            CRY => "cry",
            CRZ => "crz",
            CU1 => "cu1",
            CU3 => "cu3",
            RZZ => "rzz",
            RZX => "rzx",
            RXX => "rxx",
            RYY => "ryy",
        }
    }

    /// Returns `true` if every parameter admits the two-term parameter-shift
    /// rule for *expectation values*.
    ///
    /// This holds for `exp(-iθ/2 P)` rotations directly, and for `U1`/`U2`/
    /// `U3` because each of their parameters enters expectation values only
    /// through an `RZ`/`RY` factor of the ZYZ decomposition (the residual
    /// global phase cancels in `<ψ|O|ψ>`). Controlled rotations need the
    /// four-term rule and return `false`.
    pub fn supports_parameter_shift(self) -> bool {
        use GateKind::*;
        matches!(self, RX | RY | RZ | RZZ | RZX | RXX | RYY | U1 | U2 | U3)
    }

    /// The gate's unitary for the given parameter values.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()`.
    pub fn matrix(self, params: &[f64]) -> GateMatrix {
        use GateKind::*;
        assert_eq!(
            params.len(),
            self.num_params(),
            "gate {} expects {} params, got {}",
            self.name(),
            self.num_params(),
            params.len()
        );
        match self {
            I => GateMatrix::One(Mat2::identity()),
            X => GateMatrix::One(Mat2::pauli_x()),
            Y => GateMatrix::One(Mat2::pauli_y()),
            Z => GateMatrix::One(Mat2::pauli_z()),
            H => GateMatrix::One(Mat2::hadamard()),
            SH => GateMatrix::One(sqrt_hadamard()),
            S => GateMatrix::One(phase(std::f64::consts::FRAC_PI_2)),
            Sdg => GateMatrix::One(phase(-std::f64::consts::FRAC_PI_2)),
            T => GateMatrix::One(phase(std::f64::consts::FRAC_PI_4)),
            Tdg => GateMatrix::One(phase(-std::f64::consts::FRAC_PI_4)),
            SX => GateMatrix::One(sqrt_x()),
            SXdg => GateMatrix::One(sqrt_x().adjoint()),
            RX => GateMatrix::One(rx(params[0])),
            RY => GateMatrix::One(ry(params[0])),
            RZ => GateMatrix::One(rz(params[0])),
            U1 => GateMatrix::One(phase(params[0])),
            U2 => GateMatrix::One(u3(std::f64::consts::FRAC_PI_2, params[0], params[1])),
            U3 => GateMatrix::One(u3(params[0], params[1], params[2])),
            CX => GateMatrix::Two(Mat4::controlled(&Mat2::pauli_x())),
            CY => GateMatrix::Two(Mat4::controlled(&Mat2::pauli_y())),
            CZ => GateMatrix::Two(Mat4::controlled(&Mat2::pauli_z())),
            CH => GateMatrix::Two(Mat4::controlled(&Mat2::hadamard())),
            Swap => GateMatrix::Two(swap()),
            SqrtSwap => GateMatrix::Two(sqrt_swap()),
            CRX => GateMatrix::Two(Mat4::controlled(&rx(params[0]))),
            CRY => GateMatrix::Two(Mat4::controlled(&ry(params[0]))),
            CRZ => GateMatrix::Two(Mat4::controlled(&rz(params[0]))),
            CU1 => GateMatrix::Two(Mat4::controlled(&phase(params[0]))),
            CU3 => GateMatrix::Two(Mat4::controlled(&u3(params[0], params[1], params[2]))),
            RZZ => GateMatrix::Two(rzz(params[0])),
            RZX => GateMatrix::Two(two_pauli_rotation(
                params[0],
                Mat2::pauli_z(),
                Mat2::pauli_x(),
            )),
            RXX => GateMatrix::Two(two_pauli_rotation(
                params[0],
                Mat2::pauli_x(),
                Mat2::pauli_x(),
            )),
            RYY => GateMatrix::Two(two_pauli_rotation(
                params[0],
                Mat2::pauli_y(),
                Mat2::pauli_y(),
            )),
        }
    }

    /// Analytic derivative of the unitary with respect to parameter `which`.
    ///
    /// The returned matrix is `∂U/∂θ_which` (not unitary). Used by the
    /// adjoint differentiation engine in `qns-sim`.
    ///
    /// # Panics
    ///
    /// Panics if the gate takes no parameters, if `which` is out of range,
    /// or if `params.len() != self.num_params()`.
    pub fn dmatrix(self, params: &[f64], which: usize) -> GateMatrix {
        use GateKind::*;
        assert!(
            which < self.num_params(),
            "gate {} has {} params; derivative {} requested",
            self.name(),
            self.num_params(),
            which
        );
        assert_eq!(params.len(), self.num_params());
        let half = C64::new(0.0, -0.5);
        match self {
            RX => GateMatrix::One(Mat2::pauli_x().mul_mat(&rx(params[0])).scale(half)),
            RY => GateMatrix::One(Mat2::pauli_y().mul_mat(&ry(params[0])).scale(half)),
            RZ => GateMatrix::One(Mat2::pauli_z().mul_mat(&rz(params[0])).scale(half)),
            U1 => {
                // d/dλ diag(1, e^{iλ}) = diag(0, i e^{iλ})
                let mut m = Mat2::zero();
                m.m[3] = C64::I * C64::cis(params[0]);
                GateMatrix::One(m)
            }
            U2 => GateMatrix::One(du3(
                std::f64::consts::FRAC_PI_2,
                params[0],
                params[1],
                which + 1,
            )),
            U3 => GateMatrix::One(du3(params[0], params[1], params[2], which)),
            CRX => {
                let d = Mat2::pauli_x().mul_mat(&rx(params[0])).scale(half);
                GateMatrix::Two(controlled_block(&d))
            }
            CRY => {
                let d = Mat2::pauli_y().mul_mat(&ry(params[0])).scale(half);
                GateMatrix::Two(controlled_block(&d))
            }
            CRZ => {
                let d = Mat2::pauli_z().mul_mat(&rz(params[0])).scale(half);
                GateMatrix::Two(controlled_block(&d))
            }
            CU1 => {
                let mut m = Mat2::zero();
                m.m[3] = C64::I * C64::cis(params[0]);
                GateMatrix::Two(controlled_block(&m))
            }
            CU3 => {
                let d = du3(params[0], params[1], params[2], which);
                GateMatrix::Two(controlled_block(&d))
            }
            RZZ | RZX | RXX | RYY => {
                let (a, b) = match self {
                    RZZ => (Mat2::pauli_z(), Mat2::pauli_z()),
                    RZX => (Mat2::pauli_z(), Mat2::pauli_x()),
                    RXX => (Mat2::pauli_x(), Mat2::pauli_x()),
                    RYY => (Mat2::pauli_y(), Mat2::pauli_y()),
                    _ => unreachable!(),
                };
                let u = two_pauli_rotation(params[0], a, b);
                let g = a.kron(&b);
                GateMatrix::Two(g.mul_mat(&u).scale(half))
            }
            // lint:allow(no-panic) — documented API-misuse panic, guarded by the `which` assert above
            _ => panic!("gate {} has no parameters", self.name()),
        }
    }

    /// All gates, in declaration order. Useful for exhaustive tests.
    pub fn all() -> &'static [GateKind] {
        use GateKind::*;
        &[
            I, X, Y, Z, H, SH, S, Sdg, T, Tdg, SX, SXdg, RX, RY, RZ, U1, U2, U3, CX, CY, CZ, CH,
            Swap, SqrtSwap, CRX, CRY, CRZ, CU1, CU3, RZZ, RZX, RXX, RYY,
        ]
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn rx(theta: f64) -> Mat2 {
    let c = C64::real((theta / 2.0).cos());
    let s = C64::new(0.0, -(theta / 2.0).sin());
    Mat2::new([c, s, s, c])
}

fn ry(theta: f64) -> Mat2 {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Mat2::new([C64::real(c), C64::real(-s), C64::real(s), C64::real(c)])
}

fn rz(theta: f64) -> Mat2 {
    Mat2::new([
        C64::cis(-theta / 2.0),
        C64::ZERO,
        C64::ZERO,
        C64::cis(theta / 2.0),
    ])
}

fn phase(lambda: f64) -> Mat2 {
    Mat2::new([C64::ONE, C64::ZERO, C64::ZERO, C64::cis(lambda)])
}

fn u3(theta: f64, phi: f64, lambda: f64) -> Mat2 {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Mat2::new([
        C64::real(c),
        -C64::cis(lambda) * s,
        C64::cis(phi) * s,
        C64::cis(phi + lambda) * c,
    ])
}

/// Analytic partial derivative of U3 with respect to θ (0), φ (1), or λ (2).
fn du3(theta: f64, phi: f64, lambda: f64, which: usize) -> Mat2 {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    match which {
        0 => Mat2::new([
            C64::real(-s / 2.0),
            -C64::cis(lambda) * (c / 2.0),
            C64::cis(phi) * (c / 2.0),
            -C64::cis(phi + lambda) * (s / 2.0),
        ]),
        1 => Mat2::new([
            C64::ZERO,
            C64::ZERO,
            C64::I * C64::cis(phi) * s,
            C64::I * C64::cis(phi + lambda) * c,
        ]),
        2 => Mat2::new([
            C64::ZERO,
            -C64::I * C64::cis(lambda) * s,
            C64::ZERO,
            C64::I * C64::cis(phi + lambda) * c,
        ]),
        _ => unreachable!(),
    }
}

fn sqrt_x() -> Mat2 {
    let a = C64::new(0.5, 0.5);
    let b = C64::new(0.5, -0.5);
    Mat2::new([a, b, b, a])
}

/// √H: the principal square root of the Hadamard gate.
///
/// H = e^{iπ/2} exp(-iπ/2 n·σ) with n = (1,0,1)/√2, so
/// √H = e^{iπ/4} (cos(π/4) I − i sin(π/4) n·σ).
fn sqrt_hadamard() -> Mat2 {
    let n = std::f64::consts::FRAC_1_SQRT_2;
    let cos = std::f64::consts::FRAC_1_SQRT_2;
    let sin = std::f64::consts::FRAC_1_SQRT_2;
    let i = C64::I;
    let id = Mat2::identity();
    let ns = Mat2::pauli_x()
        .scale(C64::real(n))
        .add(&Mat2::pauli_z().scale(C64::real(n)));
    let inner = id.scale(C64::real(cos)).add(&ns.scale(-i * sin));
    inner.scale(C64::cis(std::f64::consts::FRAC_PI_4))
}

fn swap() -> Mat4 {
    let mut m = Mat4::zero();
    m.m[0] = C64::ONE;
    m.m[4 + 2] = C64::ONE;
    m.m[2 * 4 + 1] = C64::ONE;
    m.m[15] = C64::ONE;
    m
}

fn sqrt_swap() -> Mat4 {
    let mut m = Mat4::zero();
    let a = C64::new(0.5, 0.5);
    let b = C64::new(0.5, -0.5);
    m.m[0] = C64::ONE;
    m.m[4 + 1] = a;
    m.m[4 + 2] = b;
    m.m[2 * 4 + 1] = b;
    m.m[2 * 4 + 2] = a;
    m.m[15] = C64::ONE;
    m
}

fn rzz(theta: f64) -> Mat4 {
    let e_minus = C64::cis(-theta / 2.0);
    let e_plus = C64::cis(theta / 2.0);
    let mut m = Mat4::zero();
    m.m[0] = e_minus;
    m.m[4 + 1] = e_plus;
    m.m[2 * 4 + 2] = e_plus;
    m.m[15] = e_minus;
    m
}

/// `exp(-i θ/2 A⊗B)` for Pauli `A`, `B` (so `(A⊗B)² = I`).
fn two_pauli_rotation(theta: f64, a: Mat2, b: Mat2) -> Mat4 {
    let g = a.kron(&b);
    let cos = Mat4::identity().scale(C64::real((theta / 2.0).cos()));
    let sin = g.scale(C64::new(0.0, -(theta / 2.0).sin()));
    cos.add(&sin)
}

/// `|0><0| ⊗ 0 + |1><1| ⊗ m` — the controlled derivative block.
fn controlled_block(m: &Mat2) -> Mat4 {
    let mut out = Mat4::zero();
    out.m[2 * 4 + 2] = m.m[0];
    out.m[2 * 4 + 3] = m.m[1];
    out.m[3 * 4 + 2] = m.m[2];
    out.m[3 * 4 + 3] = m.m[3];
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.3 + 0.4 * i as f64).collect()
    }

    #[test]
    fn all_gates_are_unitary() {
        for &g in GateKind::all() {
            let p = sample_params(g.num_params());
            match g.matrix(&p) {
                GateMatrix::One(m) => assert!(m.is_unitary(1e-10), "{} not unitary", g),
                GateMatrix::Two(m) => assert!(m.is_unitary(1e-10), "{} not unitary", g),
            }
        }
    }

    #[test]
    fn rotation_at_zero_is_identity() {
        for g in [GateKind::RX, GateKind::RY, GateKind::RZ, GateKind::U1] {
            match g.matrix(&[0.0]) {
                GateMatrix::One(m) => assert!(m.approx_eq(&Mat2::identity(), 1e-12)),
                _ => unreachable!(),
            }
        }
        for g in [GateKind::RZZ, GateKind::RZX, GateKind::RXX, GateKind::RYY] {
            match g.matrix(&[0.0]) {
                GateMatrix::Two(m) => assert!(m.approx_eq(&Mat4::identity(), 1e-12)),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn sqrt_gates_square_correctly() {
        let sh = match GateKind::SH.matrix(&[]) {
            GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        assert!(sh.mul_mat(&sh).approx_eq(&Mat2::hadamard(), 1e-10));

        let sx = match GateKind::SX.matrix(&[]) {
            GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        assert!(sx.mul_mat(&sx).approx_eq(&Mat2::pauli_x(), 1e-10));

        let ss = match GateKind::SqrtSwap.matrix(&[]) {
            GateMatrix::Two(m) => m,
            _ => unreachable!(),
        };
        let sw = match GateKind::Swap.matrix(&[]) {
            GateMatrix::Two(m) => m,
            _ => unreachable!(),
        };
        assert!(ss.mul_mat(&ss).approx_eq(&sw, 1e-10));
    }

    #[test]
    fn u3_special_cases() {
        // U3(0,0,0) = I
        match GateKind::U3.matrix(&[0.0, 0.0, 0.0]) {
            GateMatrix::One(m) => assert!(m.approx_eq(&Mat2::identity(), 1e-12)),
            _ => unreachable!(),
        }
        // U3(π, 0, π) = X
        match GateKind::U3.matrix(&[std::f64::consts::PI, 0.0, std::f64::consts::PI]) {
            GateMatrix::One(m) => assert!(m.approx_eq(&Mat2::pauli_x(), 1e-12)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn rz_matches_u1_up_to_phase() {
        let t = 1.234;
        let rz = match GateKind::RZ.matrix(&[t]) {
            GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        let u1 = match GateKind::U1.matrix(&[t]) {
            GateMatrix::One(m) => m,
            _ => unreachable!(),
        };
        let phased = rz.scale(C64::cis(t / 2.0));
        assert!(phased.approx_eq(&u1, 1e-12));
    }

    /// Finite-difference check of every analytic gate derivative.
    #[test]
    fn dmatrix_matches_finite_difference() {
        let h = 1e-6;
        for &g in GateKind::all() {
            for which in 0..g.num_params() {
                let p = sample_params(g.num_params());
                let mut p_plus = p.clone();
                let mut p_minus = p.clone();
                p_plus[which] += h;
                p_minus[which] -= h;
                match (g.matrix(&p_plus), g.matrix(&p_minus), g.dmatrix(&p, which)) {
                    (GateMatrix::One(up), GateMatrix::One(um), GateMatrix::One(d)) => {
                        let fd = up.add(&um.scale(C64::real(-1.0))).scale(C64::real(0.5 / h));
                        assert!(
                            fd.approx_eq(&d, 1e-5),
                            "derivative mismatch for {} param {}",
                            g,
                            which
                        );
                    }
                    (GateMatrix::Two(up), GateMatrix::Two(um), GateMatrix::Two(d)) => {
                        let fd = up.add(&um.scale(C64::real(-1.0))).scale(C64::real(0.5 / h));
                        assert!(
                            fd.approx_eq(&d, 1e-5),
                            "derivative mismatch for {} param {}",
                            g,
                            which
                        );
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn rzz_is_diagonal_with_correct_phases() {
        let t = 0.8;
        match GateKind::RZZ.matrix(&[t]) {
            GateMatrix::Two(m) => {
                assert!(m.m[0].approx_eq(C64::cis(-t / 2.0), 1e-12));
                assert!(m.m[5].approx_eq(C64::cis(t / 2.0), 1e-12));
                assert!(m.m[10].approx_eq(C64::cis(t / 2.0), 1e-12));
                assert!(m.m[15].approx_eq(C64::cis(-t / 2.0), 1e-12));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn wrong_param_count_panics() {
        let _ = GateKind::RX.matrix(&[]);
    }

    #[test]
    #[should_panic(expected = "has 0 params")]
    fn derivative_of_fixed_gate_panics() {
        let _ = GateKind::X.dmatrix(&[], 0);
    }
}
