//! Parameter slots: fixed constants, data inputs, and trainable parameters.

/// A single gate-parameter slot.
///
/// QuantumNAS circuits mix three parameter sources: structural constants,
/// classical data encoded as rotation angles, and trainable weights shared
/// with a SuperCircuit. `Param` keeps that distinction in the IR so the
/// simulator can resolve values per sample and the gradient engine knows
/// which slots to differentiate.
///
/// The affine variants exist for the transpiler: basis decompositions turn
/// `U3(θ, φ, λ)` into gates like `RZ(θ + π)`, which stay symbolically tied
/// to their source parameter as `scale * source + offset`.
///
/// # Examples
///
/// ```
/// use qns_circuit::Param;
///
/// let train = vec![0.5];
/// let input = vec![1.5];
/// assert_eq!(Param::Fixed(0.1).resolve(&train, &input), 0.1);
/// assert_eq!(Param::Input(0).resolve(&train, &input), 1.5);
/// assert_eq!(Param::Train(0).resolve(&train, &input), 0.5);
/// let affine = Param::AffineTrain { index: 0, scale: 2.0, offset: 1.0 };
/// assert_eq!(affine.resolve(&train, &input), 2.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Param {
    /// A constant value baked into the circuit.
    Fixed(f64),
    /// Index into the per-sample input vector (data encoding).
    Input(usize),
    /// Index into the trainable parameter vector.
    Train(usize),
    /// `scale * input[index] + offset`.
    AffineInput {
        /// Index into the input vector.
        index: usize,
        /// Multiplier.
        scale: f64,
        /// Additive offset.
        offset: f64,
    },
    /// `scale * train[index] + offset`.
    AffineTrain {
        /// Index into the trainable vector.
        index: usize,
        /// Multiplier.
        scale: f64,
        /// Additive offset.
        offset: f64,
    },
}

impl Param {
    /// Resolves the slot to a concrete angle.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds for the provided vectors.
    #[inline]
    pub fn resolve(self, train: &[f64], input: &[f64]) -> f64 {
        match self {
            Param::Fixed(v) => v,
            Param::Input(i) => input[i],
            Param::Train(i) => train[i],
            Param::AffineInput {
                index,
                scale,
                offset,
            } => scale * input[index] + offset,
            Param::AffineTrain {
                index,
                scale,
                offset,
            } => scale * train[index] + offset,
        }
    }

    /// Returns the trainable index if this slot depends on one.
    #[inline]
    pub fn train_index(self) -> Option<usize> {
        match self {
            Param::Train(i) => Some(i),
            Param::AffineTrain { index, .. } => Some(index),
            _ => None,
        }
    }

    /// Returns `(index, dslot/dtrain)` if this slot depends on a trainable
    /// parameter — the chain-rule factor for gradient engines.
    #[inline]
    pub fn train_component(self) -> Option<(usize, f64)> {
        match self {
            Param::Train(i) => Some((i, 1.0)),
            Param::AffineTrain { index, scale, .. } => Some((index, scale)),
            _ => None,
        }
    }

    /// Returns the input index if this slot depends on one.
    #[inline]
    pub fn input_index(self) -> Option<usize> {
        match self {
            Param::Input(i) => Some(i),
            Param::AffineInput { index, .. } => Some(index),
            _ => None,
        }
    }

    /// Returns `true` if the slot depends on a trainable parameter.
    #[inline]
    pub fn is_trainable(self) -> bool {
        self.train_index().is_some()
    }

    /// Applies an affine transform on top of this slot: the result resolves
    /// to `scale * self + offset`.
    ///
    /// This is how basis decompositions stay symbolic: `RZ(θ + π)` derived
    /// from a `Train(i)` slot becomes `AffineTrain { index: i, scale: 1.0,
    /// offset: π }`.
    pub fn affine(self, scale: f64, offset: f64) -> Param {
        match self {
            Param::Fixed(v) => Param::Fixed(scale * v + offset),
            Param::Input(i) => Param::AffineInput {
                index: i,
                scale,
                offset,
            },
            Param::Train(i) => Param::AffineTrain {
                index: i,
                scale,
                offset,
            },
            Param::AffineInput {
                index,
                scale: s0,
                offset: o0,
            } => Param::AffineInput {
                index,
                scale: scale * s0,
                offset: scale * o0 + offset,
            },
            Param::AffineTrain {
                index,
                scale: s0,
                offset: o0,
            } => Param::AffineTrain {
                index,
                scale: scale * s0,
                offset: scale * o0 + offset,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_index_only_for_trainable() {
        assert_eq!(Param::Train(7).train_index(), Some(7));
        assert_eq!(Param::Fixed(1.0).train_index(), None);
        assert_eq!(Param::Input(2).train_index(), None);
        assert_eq!(
            Param::AffineTrain {
                index: 3,
                scale: -1.0,
                offset: 0.5
            }
            .train_index(),
            Some(3)
        );
    }

    #[test]
    fn train_component_carries_scale() {
        assert_eq!(Param::Train(1).train_component(), Some((1, 1.0)));
        let p = Param::AffineTrain {
            index: 2,
            scale: 0.5,
            offset: 9.0,
        };
        assert_eq!(p.train_component(), Some((2, 0.5)));
    }

    #[test]
    fn affine_composes() {
        let base = Param::Train(0);
        let once = base.affine(2.0, 1.0);
        let twice = once.affine(3.0, -1.0);
        // 3*(2x + 1) - 1 = 6x + 2
        assert_eq!(twice.resolve(&[1.0], &[]), 8.0);
        assert_eq!(twice.train_component(), Some((0, 6.0)));
    }

    #[test]
    fn affine_on_fixed_folds_constant() {
        assert_eq!(Param::Fixed(2.0).affine(3.0, 1.0), Param::Fixed(7.0));
    }

    #[test]
    fn is_trainable_flags() {
        assert!(Param::Train(0).is_trainable());
        assert!(!Param::Input(0).is_trainable());
        assert!(!Param::Fixed(0.0).is_trainable());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_input_panics() {
        let _ = Param::Input(3).resolve(&[], &[1.0]);
    }
}
