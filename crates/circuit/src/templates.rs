//! Ready-to-use circuit templates, mirroring QuantumEngine's
//! `RandomLayer` and `StronglyEntanglingLayers`.

use crate::{Circuit, GateKind, Param};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Appends `layers` strongly-entangling layers (PennyLane/QuantumEngine
/// style): per layer, one trainable `U3` on every qubit followed by a CX
/// ring with stride increasing per layer. Returns the number of trainable
/// parameters appended.
///
/// # Panics
///
/// Panics if the circuit has fewer than 2 qubits.
///
/// # Examples
///
/// ```
/// use qns_circuit::{strongly_entangling_layers, Circuit};
/// let mut c = Circuit::new(4);
/// let n_params = strongly_entangling_layers(&mut c, 2, 0);
/// assert_eq!(n_params, 24); // 2 layers × 4 qubits × 3 angles
/// assert_eq!(c.count_2q(), 8);
/// ```
pub fn strongly_entangling_layers(
    circuit: &mut Circuit,
    layers: usize,
    first_param: usize,
) -> usize {
    let n = circuit.num_qubits();
    assert!(n >= 2, "entangling layers need at least 2 qubits");
    let mut t = first_param;
    for layer in 0..layers {
        for q in 0..n {
            circuit.push(
                GateKind::U3,
                &[q],
                &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
            );
            t += 3;
        }
        // Entangle with stride 1, 2, ... (mod n), never zero.
        let stride = (layer % (n - 1)) + 1;
        for q in 0..n {
            let target = (q + stride) % n;
            circuit.push(GateKind::CX, &[q, target], &[]);
        }
    }
    t - first_param
}

/// Appends a seeded random layer of `n_ops` gates drawn from `gate_pool`
/// (QuantumEngine's `RandomLayer`). Trainable parameters are allocated
/// consecutively from `first_param`; returns how many were added.
///
/// # Panics
///
/// Panics if `gate_pool` is empty or contains a two-qubit gate while the
/// circuit has a single qubit.
pub fn random_layer(
    circuit: &mut Circuit,
    gate_pool: &[GateKind],
    n_ops: usize,
    first_param: usize,
    seed: u64,
) -> usize {
    assert!(!gate_pool.is_empty(), "gate pool must be non-empty");
    let n = circuit.num_qubits();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = first_param;
    for _ in 0..n_ops {
        let kind = gate_pool[rng.gen_range(0..gate_pool.len())];
        let qs: Vec<usize> = if kind.num_qubits() == 1 {
            vec![rng.gen_range(0..n)]
        } else {
            assert!(n >= 2, "two-qubit gate in a 1-qubit circuit");
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            vec![a, b]
        };
        let ps: Vec<Param> = (0..kind.num_params())
            .map(|_| {
                let p = Param::Train(t);
                t += 1;
                p
            })
            .collect();
        circuit.push(kind, &qs, &ps);
    }
    t - first_param
}

/// Appends a basic entangler: one trainable `RY` per qubit plus a CX ring
/// (the cheapest hardware-efficient layer).
pub fn basic_entangler_layers(circuit: &mut Circuit, layers: usize, first_param: usize) -> usize {
    let n = circuit.num_qubits();
    assert!(n >= 2, "entangler needs at least 2 qubits");
    let mut t = first_param;
    for _ in 0..layers {
        for q in 0..n {
            circuit.push(GateKind::RY, &[q], &[Param::Train(t)]);
            t += 1;
        }
        for q in 0..n {
            circuit.push(GateKind::CX, &[q, (q + 1) % n], &[]);
        }
    }
    t - first_param
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strongly_entangling_varies_stride() {
        let mut c = Circuit::new(4);
        strongly_entangling_layers(&mut c, 3, 0);
        // Layer 0 stride 1: cx(0,1); layer 1 stride 2: cx(0,2).
        let cx_targets: Vec<[usize; 2]> = c
            .iter()
            .filter(|o| o.kind == GateKind::CX)
            .map(|o| o.qubits)
            .collect();
        assert_eq!(cx_targets[0], [0, 1]);
        assert_eq!(cx_targets[4], [0, 2]);
        assert_eq!(cx_targets[8], [0, 3]);
    }

    #[test]
    fn random_layer_is_seeded_and_counts_params() {
        let pool = [GateKind::RX, GateKind::CRY, GateKind::CX];
        let mut a = Circuit::new(3);
        let na = random_layer(&mut a, &pool, 12, 0, 5);
        let mut b = Circuit::new(3);
        let nb = random_layer(&mut b, &pool, 12, 0, 5);
        assert_eq!(a, b);
        assert_eq!(na, nb);
        assert_eq!(a.num_ops(), 12);
        assert_eq!(a.num_train_params(), na);
    }

    #[test]
    fn basic_entangler_param_count() {
        let mut c = Circuit::new(5);
        let n = basic_entangler_layers(&mut c, 2, 3);
        assert_eq!(n, 10);
        assert_eq!(c.num_train_params(), 13); // offset 3 + 10 params
        assert_eq!(c.count_2q(), 10);
    }

    #[test]
    fn templates_compose_with_offsets() {
        let mut c = Circuit::new(3);
        let n1 = basic_entangler_layers(&mut c, 1, 0);
        let n2 = strongly_entangling_layers(&mut c, 1, n1);
        assert_eq!(c.num_train_params(), n1 + n2);
        // No parameter index is reused.
        let refs = c.referenced_train_indices();
        assert_eq!(refs.len(), n1 + n2);
    }
}
