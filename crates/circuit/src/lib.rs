//! Parameterized quantum circuit intermediate representation.
//!
//! This crate defines the gate library and circuit IR shared by every other
//! crate in the QuantumNAS reproduction:
//!
//! - [`GateKind`] — the full gate set used by the paper's six design spaces
//!   (U3/CU3, ZZ+RY, RXYZ, ZX+XX, RXYZ+U1+CU3, and the IBMQ basis set), with
//!   analytic matrices *and* analytic parameter derivatives (for adjoint
//!   differentiation),
//! - [`Param`] — a parameter slot that is either a fixed constant, a
//!   per-sample input (data encoding), or a trainable parameter index,
//! - [`Circuit`] / [`Op`] — a flat gate list with structural metrics (depth,
//!   gate counts) used by the transpiler and the NAS search.
//!
//! # Examples
//!
//! Build a tiny trainable circuit and inspect it:
//!
//! ```
//! use qns_circuit::{Circuit, GateKind, Param};
//!
//! let mut c = Circuit::new(2);
//! c.push(GateKind::RX, &[0], &[Param::Input(0)]);
//! c.push(GateKind::RY, &[1], &[Param::Train(0)]);
//! c.push(GateKind::CX, &[0, 1], &[]);
//! assert_eq!(c.num_ops(), 3);
//! assert_eq!(c.depth(), 2);
//! assert_eq!(c.num_train_params(), 1);
//! ```

mod circuit;
mod gates;
mod param;
mod qasm;
mod templates;

pub use circuit::{Circuit, Op};
pub use gates::{GateKind, GateMatrix};
pub use param::Param;
pub use qasm::to_qasm;
pub use templates::{basic_entangler_layers, random_layer, strongly_entangling_layers};
