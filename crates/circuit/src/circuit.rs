//! The circuit IR: a flat list of gate applications with structural metrics.

use crate::{GateKind, Param};
use std::fmt;

/// One gate application inside a [`Circuit`].
#[derive(Clone, Debug, PartialEq)]
pub struct Op {
    /// Which gate.
    pub kind: GateKind,
    /// Target qubits; `qubits[1]` is meaningful only for two-qubit gates.
    /// For controlled gates `qubits[0]` is the control.
    pub qubits: [usize; 2],
    /// Parameter slots, `kind.num_params()` of them.
    pub params: Vec<Param>,
}

impl Op {
    /// Number of qubits this op touches.
    pub fn num_qubits(&self) -> usize {
        self.kind.num_qubits()
    }

    /// Resolves parameter slots to concrete angles.
    pub fn resolve_params(&self, train: &[f64], input: &[f64]) -> Vec<f64> {
        self.params
            .iter()
            .map(|p| p.resolve(train, input))
            .collect()
    }
}

/// A quantum circuit: an ordered list of [`Op`]s over `n_qubits` qubits.
///
/// The circuit tracks how many trainable-parameter and input slots it
/// references so callers can allocate parameter vectors of the right size.
///
/// # Examples
///
/// ```
/// use qns_circuit::{Circuit, GateKind, Param};
///
/// let mut c = Circuit::new(3);
/// c.push(GateKind::H, &[0], &[]);
/// c.push(GateKind::CX, &[0, 1], &[]);
/// c.push(GateKind::CX, &[1, 2], &[]);
/// assert_eq!(c.depth(), 3);
/// assert_eq!(c.count_2q(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Op>,
    n_train: usize,
    n_input: usize,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "circuit must have at least one qubit");
        Circuit {
            n_qubits,
            ops: Vec::new(),
            n_train: 0,
            n_input: 0,
        }
    }

    /// Appends a gate.
    ///
    /// `qubits` must contain exactly `kind.num_qubits()` distinct in-range
    /// indices and `params` exactly `kind.num_params()` slots.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, out-of-range qubits, or duplicate qubits.
    pub fn push(&mut self, kind: GateKind, qubits: &[usize], params: &[Param]) -> &mut Self {
        assert_eq!(
            qubits.len(),
            kind.num_qubits(),
            "gate {} expects {} qubits",
            kind,
            kind.num_qubits()
        );
        assert_eq!(
            params.len(),
            kind.num_params(),
            "gate {} expects {} params",
            kind,
            kind.num_params()
        );
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {} out of range", q);
        }
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "two-qubit gate needs distinct qubits");
        }
        for p in params {
            if let Some(i) = p.train_index() {
                self.n_train = self.n_train.max(i + 1);
            }
            if let Some(i) = p.input_index() {
                self.n_input = self.n_input.max(i + 1);
            }
        }
        let q2 = if qubits.len() == 2 {
            qubits[1]
        } else {
            usize::MAX
        };
        self.ops.push(Op {
            kind,
            qubits: [qubits[0], q2],
            params: params.to_vec(),
        });
        self
    }

    /// Appends a gate without validating arity, qubit ranges, operand
    /// distinctness, or parameter bookkeeping.
    ///
    /// Exists so the verifier's tests (and IR fuzzers) can construct
    /// deliberately malformed circuits that [`Circuit::push`] rejects;
    /// normal construction must go through `push`. Missing qubit operands
    /// are filled with `usize::MAX` (always out of range), and declared
    /// trainable/input widths are *not* grown, so out-of-range symbolic
    /// slots stay out of range.
    pub fn push_unchecked(
        &mut self,
        kind: GateKind,
        qubits: &[usize],
        params: &[Param],
    ) -> &mut Self {
        let q0 = qubits.first().copied().unwrap_or(usize::MAX);
        let q1 = qubits.get(1).copied().unwrap_or(usize::MAX);
        self.ops.push(Op {
            kind,
            qubits: [q0, q1],
            params: params.to_vec(),
        });
        self
    }

    /// Appends every op of `other` (qubit indices unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `other` acts on more qubits than `self` has.
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.n_qubits <= self.n_qubits,
            "cannot extend with a wider circuit"
        );
        for op in &other.ops {
            let qs: Vec<usize> = op.qubits[..op.num_qubits()].to_vec();
            self.push(op.kind, &qs, &op.params);
        }
        self
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gate applications.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Size of the trainable-parameter vector this circuit references.
    pub fn num_train_params(&self) -> usize {
        self.n_train
    }

    /// Size of the input vector this circuit references.
    pub fn num_inputs(&self) -> usize {
        self.n_input
    }

    /// Declares the trainable-parameter vector length even when higher
    /// indices are not (yet) referenced. Used by gate-sharing SuperCircuits
    /// whose SubCircuits reference a prefix of the shared parameters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is smaller than the largest referenced index + 1.
    pub fn set_num_train_params(&mut self, n: usize) {
        assert!(n >= self.n_train, "cannot shrink below referenced params");
        self.n_train = n;
    }

    /// Iterates over the ops in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Op> {
        self.ops.iter()
    }

    /// Borrow of the op list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Circuit depth: the length of the longest qubit-ordered dependency
    /// chain (greedy ASAP scheduling, every gate cost 1).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut max = 0;
        for op in &self.ops {
            let nq = op.num_qubits();
            let start = op.qubits[..nq].iter().map(|&q| level[q]).max().unwrap_or(0);
            let end = start + 1;
            for &q in &op.qubits[..nq] {
                level[q] = end;
            }
            max = max.max(end);
        }
        max
    }

    /// Number of single-qubit gates.
    pub fn count_1q(&self) -> usize {
        self.ops.iter().filter(|o| o.num_qubits() == 1).count()
    }

    /// Number of two-qubit gates.
    pub fn count_2q(&self) -> usize {
        self.ops.iter().filter(|o| o.num_qubits() == 2).count()
    }

    /// Number of gates of a specific kind.
    pub fn count_kind(&self, kind: GateKind) -> usize {
        self.ops.iter().filter(|o| o.kind == kind).count()
    }

    /// The set of distinct trainable indices actually referenced, sorted.
    pub fn referenced_train_indices(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .ops
            .iter()
            .flat_map(|o| o.params.iter().filter_map(|p| p.train_index()))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Rewrites trainable slots using `f` (e.g. to freeze pruned parameters
    /// to zero). `f` receives the trainable index and returns the new slot;
    /// affine slots recombine their transform with the replacement.
    pub fn map_train_params(&self, mut f: impl FnMut(usize) -> Param) -> Circuit {
        let mut out = Circuit::new(self.n_qubits);
        for op in &self.ops {
            let qs: Vec<usize> = op.qubits[..op.num_qubits()].to_vec();
            let ps: Vec<Param> = op
                .params
                .iter()
                .map(|p| match *p {
                    Param::Train(i) => f(i),
                    Param::AffineTrain {
                        index,
                        scale,
                        offset,
                    } => f(index).affine(scale, offset),
                    other => other,
                })
                .collect();
            out.push(op.kind, &qs, &ps);
        }
        out
    }

    /// Relabels qubits: op qubit `q` becomes `mapping[q]`.
    ///
    /// # Panics
    ///
    /// Panics if `mapping.len() != self.num_qubits()` or maps out of
    /// `new_width`.
    pub fn remap_qubits(&self, mapping: &[usize], new_width: usize) -> Circuit {
        assert_eq!(mapping.len(), self.n_qubits, "mapping length mismatch");
        let mut out = Circuit::new(new_width);
        out.n_train = self.n_train;
        out.n_input = self.n_input;
        for op in &self.ops {
            let qs: Vec<usize> = op.qubits[..op.num_qubits()]
                .iter()
                .map(|&q| mapping[q])
                .collect();
            out.push(op.kind, &qs, &op.params);
        }
        out
    }
}

impl fmt::Display for Circuit {
    /// A compact text dump, one op per line, e.g. `cx q0, q1` or
    /// `ry(t3) q2`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} ops]",
            self.n_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            write!(f, "  {}", op.kind)?;
            if !op.params.is_empty() {
                write!(f, "(")?;
                for (i, p) in op.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match p {
                        Param::Fixed(v) => write!(f, "{:.4}", v)?,
                        Param::Input(i) => write!(f, "x{}", i)?,
                        Param::Train(i) => write!(f, "t{}", i)?,
                        Param::AffineInput {
                            index,
                            scale,
                            offset,
                        } => write!(f, "{:.2}*x{}+{:.2}", scale, index, offset)?,
                        Param::AffineTrain {
                            index,
                            scale,
                            offset,
                        } => write!(f, "{:.2}*t{}+{:.2}", scale, index, offset)?,
                    }
                }
                write!(f, ")")?;
            }
            let nq = op.num_qubits();
            write!(f, " q{}", op.qubits[0])?;
            if nq == 2 {
                write!(f, ", q{}", op.qubits[1])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(GateKind::H, &[0], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        c.push(GateKind::CX, &[1, 2], &[]);
        c
    }

    #[test]
    fn depth_of_ghz_is_three() {
        assert_eq!(ghz().depth(), 3);
    }

    #[test]
    fn depth_of_parallel_layer_is_one() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push(GateKind::H, &[q], &[]);
        }
        assert_eq!(c.depth(), 1);
        assert_eq!(c.count_1q(), 4);
        assert_eq!(c.count_2q(), 0);
    }

    #[test]
    fn param_bookkeeping() {
        let mut c = Circuit::new(2);
        c.push(GateKind::RX, &[0], &[Param::Input(3)]);
        c.push(
            GateKind::U3,
            &[1],
            &[Param::Train(5), Param::Fixed(0.0), Param::Train(1)],
        );
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_train_params(), 6);
        assert_eq!(c.referenced_train_indices(), vec![1, 5]);
    }

    #[test]
    fn set_num_train_params_extends() {
        let mut c = Circuit::new(1);
        c.push(GateKind::RX, &[0], &[Param::Train(0)]);
        c.set_num_train_params(10);
        assert_eq!(c.num_train_params(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn set_num_train_params_cannot_shrink() {
        let mut c = Circuit::new(1);
        c.push(GateKind::RX, &[0], &[Param::Train(4)]);
        c.set_num_train_params(2);
    }

    #[test]
    fn map_train_params_freezes() {
        let mut c = Circuit::new(1);
        c.push(GateKind::RX, &[0], &[Param::Train(0)]);
        c.push(GateKind::RY, &[0], &[Param::Train(1)]);
        let frozen = c.map_train_params(|i| {
            if i == 0 {
                Param::Fixed(0.0)
            } else {
                Param::Train(i)
            }
        });
        assert_eq!(frozen.referenced_train_indices(), vec![1]);
        assert_eq!(frozen.ops()[0].params[0], Param::Fixed(0.0));
    }

    #[test]
    fn remap_qubits_relabels() {
        let c = ghz();
        let mapped = c.remap_qubits(&[2, 0, 1], 3);
        assert_eq!(mapped.ops()[0].qubits[0], 2);
        assert_eq!(mapped.ops()[1].qubits, [2, 0]);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = ghz();
        let b = ghz();
        a.extend_from(&b);
        assert_eq!(a.num_ops(), 6);
        // The second H on q0 runs in parallel with the first cx(1,2).
        assert_eq!(a.depth(), 5);
    }

    #[test]
    fn display_contains_gate_names() {
        let mut c = Circuit::new(2);
        c.push(GateKind::RY, &[1], &[Param::Train(2)]);
        let s = format!("{}", c);
        assert!(s.contains("ry(t2) q1"));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_qubits_panic() {
        let mut c = Circuit::new(2);
        c.push(GateKind::CX, &[1, 1], &[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.push(GateKind::H, &[5], &[]);
    }
}
