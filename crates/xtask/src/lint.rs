//! Source-scanning lints for rules clippy cannot express.
//!
//! PR 1 made determinism load-bearing: candidate scores are memoized under
//! content-addressed cache keys, so any wall-clock read or OS-entropy draw
//! inside a search-path crate is a correctness bug, not a style issue.
//! Likewise, the panic-isolating evaluation engine converts worker panics
//! into poisoned scores, so `unwrap()`/`panic!` in library code of the
//! compiler/simulator crates silently corrupts search results.
//!
//! Rules (named in `// lint:allow(<rule>)` escapes):
//!
//! - `wallclock` — no `Instant::now`/`SystemTime` in search-path crates;
//!   allow-listed in `runtime/src/telemetry.rs` (the one sanctioned timing
//!   sink) and bench code (bench crates are not scanned),
//! - `entropy` — no `thread_rng`/`from_entropy`/`OsRng` in search-path
//!   crates; all randomness must flow through seeded `StdRng`s,
//! - `spawn` — no `thread::spawn` outside `qns-runtime`, which owns worker
//!   threads,
//! - `no-panic` — no `.unwrap()`/`panic!` in library (non-test) code of
//!   `circuit`/`transpile`/`sim`/`noise`.
//!
//! Escapes: a `// lint:allow(<rule>)` comment on the same line, or on a
//! standalone comment line immediately above, suppresses one finding; the
//! comment doubles as the written justification.
//!
//! Mechanics: line comments and string-literal contents are stripped before
//! matching, and scanning stops at the first top-level `#[cfg(test)]` line
//! (this workspace keeps test modules at the end of each file).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Search-path crates: everything whose behavior feeds candidate scores or
/// cache keys. Bench code and the offline dependency shims are exempt.
const SEARCH_PATH_CRATES: &[&str] = &[
    "tensor",
    "circuit",
    "sim",
    "noise",
    "transpile",
    "verify",
    "ml",
    "data",
    "chem",
    "core",
    "runtime",
    "proxy",
];

/// Crates where worker threads may not be created (`runtime` owns them).
const NO_SPAWN_CRATES: &[&str] = &[
    "tensor",
    "circuit",
    "sim",
    "noise",
    "transpile",
    "verify",
    "ml",
    "data",
    "chem",
    "core",
    "proxy",
];

/// Crates whose library code must stay panic-free.
const NO_PANIC_CRATES: &[&str] = &["circuit", "transpile", "sim", "noise"];

/// One lint rule: a name, the substrings that trigger it, the crates it
/// scans, and file suffixes that are always exempt.
struct RuleDef {
    name: &'static str,
    patterns: &'static [&'static str],
    crates: &'static [&'static str],
    allow_files: &'static [&'static str],
}

const RULES: &[RuleDef] = &[
    RuleDef {
        name: "wallclock",
        patterns: &["Instant::now", "SystemTime"],
        crates: SEARCH_PATH_CRATES,
        allow_files: &["runtime/src/telemetry.rs"],
    },
    RuleDef {
        name: "entropy",
        patterns: &["thread_rng", "from_entropy", "OsRng"],
        crates: SEARCH_PATH_CRATES,
        allow_files: &[],
    },
    RuleDef {
        name: "spawn",
        patterns: &["thread::spawn"],
        crates: NO_SPAWN_CRATES,
        allow_files: &[],
    },
    RuleDef {
        name: "no-panic",
        patterns: &[".unwrap()", "panic!"],
        crates: NO_PANIC_CRATES,
        allow_files: &[],
    },
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (`wallclock`, `entropy`, `spawn`, `no-panic`).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lint[{}] {}:{}: {}",
            self.rule, self.path, self.line, self.text
        )
    }
}

/// Scans the workspace under `root` and returns all findings, sorted by
/// path then line.
pub fn run(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for rule in RULES {
        for krate in rule.crates {
            let src = root.join("crates").join(krate).join("src");
            if !src.is_dir() {
                continue;
            }
            for file in rust_files(&src)? {
                let rel = file
                    .strip_prefix(root)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/");
                if rule.allow_files.iter().any(|suf| rel.ends_with(suf)) {
                    continue;
                }
                let content = fs::read_to_string(&file)?;
                out.extend(scan_file(rule, &rel, &content));
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            out.extend(rust_files(&path)?);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(out)
}

/// Scans one file against one rule.
fn scan_file(rule: &RuleDef, rel_path: &str, content: &str) -> Vec<Violation> {
    let allow_tag = format!("lint:allow({})", rule.name);
    let mut out = Vec::new();
    let mut prev_line_allows = false;
    for (idx, raw) in content.lines().enumerate() {
        let trimmed = raw.trim();
        // Test modules sit at the end of each file in this workspace; the
        // rules only police library code.
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        let allows_here = raw.contains(&allow_tag);
        let suppressed = allows_here || prev_line_allows;
        // A standalone comment carrying the tag covers the next line.
        prev_line_allows = allows_here && trimmed.starts_with("//");

        let code = strip_comments_and_strings(raw);
        if rule.patterns.iter().any(|p| code.contains(p)) && !suppressed {
            out.push(Violation {
                rule: rule.name,
                path: rel_path.to_string(),
                line: idx + 1,
                text: trimmed.to_string(),
            });
        }
    }
    out
}

/// Removes string-literal contents and everything after `//` so patterns
/// only match code. Quote tracking is line-local, which is enough for this
/// workspace's style (no multi-line literals containing lint patterns).
fn strip_comments_and_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_string = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(name: &str) -> &'static RuleDef {
        RULES.iter().find(|r| r.name == name).expect("known rule")
    }

    fn fixture(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
    }

    #[test]
    fn wallclock_rule_fires_on_fixture() {
        let v = scan_file(
            rule("wallclock"),
            "fixtures/wallclock.rs",
            &fixture("wallclock.rs"),
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "wallclock"));
    }

    #[test]
    fn entropy_rule_fires_on_fixture() {
        let v = scan_file(
            rule("entropy"),
            "fixtures/entropy.rs",
            &fixture("entropy.rs"),
        );
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn spawn_rule_fires_on_fixture() {
        let v = scan_file(rule("spawn"), "fixtures/spawn.rs", &fixture("spawn.rs"));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn no_panic_rule_fires_on_fixture() {
        let v = scan_file(
            rule("no-panic"),
            "fixtures/no_panic.rs",
            &fixture("no_panic.rs"),
        );
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn allow_escapes_and_comments_suppress() {
        let content = fixture("allowed.rs");
        for r in RULES {
            let v = scan_file(r, "fixtures/allowed.rs", &content);
            assert!(v.is_empty(), "rule {} fired: {v:?}", r.name);
        }
    }

    #[test]
    fn test_sections_are_skipped() {
        let content = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); panic!(\"boom\"); }\n}\n";
        let v = scan_file(rule("no-panic"), "inline.rs", content);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn string_and_comment_stripping() {
        assert_eq!(
            strip_comments_and_strings("let x = 1; // panic!"),
            "let x = 1; "
        );
        assert_eq!(
            strip_comments_and_strings("let s = \"panic! inside\";"),
            "let s = \"\";"
        );
        assert_eq!(
            strip_comments_and_strings("let s = \"esc \\\" panic!\";"),
            "let s = \"\";"
        );
    }

    #[test]
    fn allow_tag_only_covers_its_own_rule() {
        let content = "let _ = std::time::Instant::now(); // lint:allow(entropy)\n";
        let v = scan_file(rule("wallclock"), "inline.rs", content);
        assert_eq!(v.len(), 1, "wrong-rule tag must not suppress");
    }

    /// The real gate: the workspace itself is lint-clean.
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let v = run(&root).expect("scan workspace");
        assert!(
            v.is_empty(),
            "workspace lint violations:\n{}",
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
