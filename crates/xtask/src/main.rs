//! Workspace automation tasks (the cargo-xtask pattern).
//!
//! `analyze` runs the qns-analyze static-analysis pass (QA001–QA007:
//! determinism lints, digest coverage, snapshot-schema lock) over the
//! search-path crates. `lint` is a thin alias kept during the migration
//! from the old per-line scanner.
//!
//! `asm-check` disassembles a release binary and asserts that the
//! width-dispatched batch sweeps (see `multiversion_sweep!` in
//! `qns-sim::state_batch`) compiled to *packed* SIMD at both widths:
//! baseline fronts must contain packed SSE (`mulpd`, no `%ymm`), the
//! `_avx2` twins packed AVX (`vmulpd` on `%ymm`). It inspects the final
//! *linked* binary on purpose: under thin LTO the pre-link `--emit asm`
//! rlib output is unoptimized and reads as scalar even when the linked
//! product vectorizes fine.
//!
//! ```text
//! cargo xtask analyze                  # human-readable findings
//! cargo xtask analyze --json           # JSON array on stdout
//! cargo xtask analyze --out diag.json  # also write JSON to a file
//! cargo xtask analyze --update-schema  # regenerate analyze/schema.lock
//! cargo xtask asm-check                # packed-SIMD codegen gate
//! cargo xtask asm-check --binary PATH  # check an already-built binary
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => run_analyze(&args[1..]),
        Some("lint") => {
            eprintln!("note: `xtask lint` is now an alias for `xtask analyze`");
            run_analyze(&args[1..])
        }
        Some("asm-check") => run_asm_check(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: analyze (alias: lint), asm-check");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- analyze [--json] [--out PATH] [--update-schema]\n       cargo run -p xtask -- asm-check [--binary PATH]"
            );
            ExitCode::FAILURE
        }
    }
}

/// The `multiversion_sweep!` pairs checked by `asm-check`: every batch
/// sweep front and its `_avx2` twin.
const SWEEP_ANCHORS: &[&str] = &[
    "apply_1q_diag",
    "apply_1q_antidiag",
    "apply_1q_general",
    "sweep_1q_perlane_diag",
    "sweep_1q_perlane_general",
    "apply_2q_diag",
    "apply_2q_controlled",
    "apply_2q_general",
    "sweep_2q_perlane_controlled",
    "sweep_2q_perlane_general",
];

fn run_asm_check(flags: &[String]) -> ExitCode {
    let mut binary: Option<String> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--binary" => match it.next() {
                Some(p) => binary = Some(p.clone()),
                None => {
                    eprintln!("xtask asm-check: --binary requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask asm-check: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    // The anchors assert x86 encodings; other architectures have nothing
    // to check (the sweeps still compile, just to that ISA's vectors).
    if !cfg!(target_arch = "x86_64") {
        println!("xtask asm-check: skipped (x86_64 only)");
        return ExitCode::SUCCESS;
    }

    let root = workspace_root();
    let bin_path = match binary {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // Any release binary that links the batch sweeps works; the
            // batch benchmark exercises every one of them.
            let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
            let status = std::process::Command::new(cargo)
                .args([
                    "build",
                    "--release",
                    "-p",
                    "qns-bench",
                    "--bin",
                    "batch_bench",
                ])
                .current_dir(&root)
                .status();
            match status {
                Ok(s) if s.success() => {}
                Ok(s) => {
                    eprintln!("xtask asm-check: cargo build failed with {s}");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("xtask asm-check: failed to run cargo: {e}");
                    return ExitCode::FAILURE;
                }
            }
            root.join("target/release/batch_bench")
        }
    };

    let disasm = match std::process::Command::new("objdump")
        .arg("-d")
        .arg(&bin_path)
        .output()
    {
        Ok(out) if out.status.success() => String::from_utf8_lossy(&out.stdout).into_owned(),
        Ok(out) => {
            eprintln!(
                "xtask asm-check: objdump failed: {}",
                String::from_utf8_lossy(&out.stderr).trim()
            );
            return ExitCode::FAILURE;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("xtask asm-check: skipped (objdump not found)");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("xtask asm-check: failed to run objdump: {e}");
            return ExitCode::FAILURE;
        }
    };

    let symbols = split_symbols(&disasm);
    let mut failures = 0usize;
    for name in SWEEP_ANCHORS {
        for (suffix, want_packed, want_wide) in [("", "mulpd", false), ("_avx2", "vmulpd", true)] {
            let full = format!("{name}{suffix}");
            // v0 mangling: ...10StateBatch<len><name>17h<hash>E.
            let needle = format!("StateBatch{}{}17h", full.len(), full);
            let Some(body) = symbols
                .iter()
                .find(|(sym, _)| sym.contains(&needle))
                .map(|(_, b)| *b)
            else {
                eprintln!(
                    "xtask asm-check: FAIL {full}: symbol not found in {}",
                    bin_path.display()
                );
                failures += 1;
                continue;
            };
            // `mulpd` must match the SSE encoding, not a substring of
            // `vmulpd`; `%ymm` distinguishes 256-bit from 128-bit AVX.
            let packed = body
                .lines()
                .filter(|l| l.contains(want_packed))
                .filter(|l| want_wide || !l.contains("vmulpd"))
                .count();
            let wide_ok = !want_wide || body.contains("%ymm");
            if packed == 0 || !wide_ok {
                eprintln!(
                    "xtask asm-check: FAIL {full}: expected packed `{want_packed}`{} (found {packed} packed mul(s))",
                    if want_wide { " on %ymm" } else { "" },
                );
                failures += 1;
            } else {
                println!("xtask asm-check: ok {full} ({packed} packed mul(s))");
            }
        }
    }
    if failures == 0 {
        println!(
            "xtask asm-check: {} sweep pair(s) packed at both widths",
            SWEEP_ANCHORS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask asm-check: {failures} failure(s)");
        ExitCode::FAILURE
    }
}

/// Splits `objdump -d` output into `(symbol, body)` sections.
fn split_symbols(disasm: &str) -> Vec<(&str, &str)> {
    let mut out = Vec::new();
    let mut cur_sym: Option<(&str, usize)> = None;
    let mut offset = 0;
    for line in disasm.lines() {
        let line_start = offset;
        offset += line.len() + 1;
        if let Some(rest) = line.strip_suffix(">:") {
            if let Some(idx) = rest.find('<') {
                if let Some((sym, start)) = cur_sym.take() {
                    out.push((sym, &disasm[start..line_start]));
                }
                cur_sym = Some((&rest[idx + 1..], offset.min(disasm.len())));
            }
        }
    }
    if let Some((sym, start)) = cur_sym.take() {
        out.push((sym, &disasm[start.min(disasm.len())..]));
    }
    out
}

fn run_analyze(flags: &[String]) -> ExitCode {
    let mut json = false;
    let mut update_schema = false;
    let mut out_path: Option<String> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--update-schema" => update_schema = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("xtask analyze: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask analyze: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    if update_schema {
        match qns_analyze::update_schema_lock(&root) {
            Ok((path, n)) => {
                eprintln!(
                    "xtask analyze: wrote {} ({} wire struct(s))",
                    path.display(),
                    n
                );
            }
            Err(e) => {
                eprintln!("xtask analyze: --update-schema failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let findings = match qns_analyze::analyze(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, qns_analyze::report_json(&findings)) {
            eprintln!("xtask analyze: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if json {
        println!("{}", qns_analyze::report_json(&findings));
    } else if findings.is_empty() {
        println!("xtask analyze: clean");
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("xtask analyze: {} finding(s)", findings.len());
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}
