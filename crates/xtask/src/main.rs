//! Workspace automation tasks (the cargo-xtask pattern).
//!
//! Currently one task: `lint`, a source-scanning determinism/robustness lint
//! enforcing workspace rules clippy cannot express (see [`lint`]).

mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = workspace_root();
            match lint::run(&root) {
                Ok(violations) if violations.is_empty() => {
                    println!("xtask lint: clean");
                    ExitCode::SUCCESS
                }
                Ok(violations) => {
                    for v in &violations {
                        eprintln!("{v}");
                    }
                    eprintln!("xtask lint: {} violation(s)", violations.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}
