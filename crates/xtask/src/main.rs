//! Workspace automation tasks (the cargo-xtask pattern).
//!
//! `analyze` runs the qns-analyze static-analysis pass (QA001–QA007:
//! determinism lints, digest coverage, snapshot-schema lock) over the
//! search-path crates. `lint` is a thin alias kept during the migration
//! from the old per-line scanner.
//!
//! ```text
//! cargo xtask analyze                  # human-readable findings
//! cargo xtask analyze --json           # JSON array on stdout
//! cargo xtask analyze --out diag.json  # also write JSON to a file
//! cargo xtask analyze --update-schema  # regenerate analyze/schema.lock
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => run_analyze(&args[1..]),
        Some("lint") => {
            eprintln!("note: `xtask lint` is now an alias for `xtask analyze`");
            run_analyze(&args[1..])
        }
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: analyze (alias: lint)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- analyze [--json] [--out PATH] [--update-schema]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run_analyze(flags: &[String]) -> ExitCode {
    let mut json = false;
    let mut update_schema = false;
    let mut out_path: Option<String> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--update-schema" => update_schema = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("xtask analyze: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask analyze: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    if update_schema {
        match qns_analyze::update_schema_lock(&root) {
            Ok((path, n)) => {
                eprintln!(
                    "xtask analyze: wrote {} ({} wire struct(s))",
                    path.display(),
                    n
                );
            }
            Err(e) => {
                eprintln!("xtask analyze: --update-schema failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let findings = match qns_analyze::analyze(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, qns_analyze::report_json(&findings)) {
            eprintln!("xtask analyze: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if json {
        println!("{}", qns_analyze::report_json(&findings));
    } else if findings.is_empty() {
        println!("xtask analyze: clean");
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("xtask analyze: {} finding(s)", findings.len());
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}
