//! Offline drop-in replacement for the subset of the `proptest` 1.x API
//! this workspace uses.
//!
//! The build environment cannot reach crates.io, so the real `proptest`
//! cannot be fetched. This shim keeps the property tests *running*: the
//! `proptest!` macro expands each property into a plain `#[test]` that
//! draws `cases` deterministic random inputs from the declared strategies
//! and executes the body. There is no shrinking — a failing case reports
//! the assertion directly.

pub mod test_runner {
    //! Test-case configuration and the deterministic input generator.

    /// Number of random cases each property runs (`with_cases`).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// How many inputs to draw per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic xoshiro256++ generator used to drive strategies.
    /// Seeded per property from the test name, so runs are reproducible.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator seeded from an arbitrary label (the test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, then SplitMix64 state expansion.
            let mut h = 0xCBF29CE484222325u64;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001B3);
            }
            let mut x = h;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies: ranges, tuples, maps, collections.

    use crate::test_runner::TestRng;

    /// Generates random values of `Value` (no shrinking in this shim).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// A strategy that feeds each generated value into `f` and draws
        /// from the strategy `f` returns — the standard way to make one
        /// dimension of a value (e.g. a vector length) depend on another.
        fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// A constant strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            let mid = self.inner.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    /// Primitive types whose ranges act as strategies. A single blanket
    /// `Strategy` impl over this trait keeps unsuffixed literals
    /// (`0..10`, `-1.0..1.0`) inferable via the default numeric fallback.
    pub trait RangeValue: Copy + PartialOrd {
        /// Uniform draw from `[lo, hi)` (`hi` included when `inclusive`).
        fn draw(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self;
    }

    macro_rules! int_range_value {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn draw(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }

    int_range_value!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! float_range_value {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn draw(lo: Self, hi: Self, _inclusive: bool, rng: &mut TestRng) -> Self {
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }

    float_range_value!(f64, f32);

    impl<T: RangeValue> Strategy for core::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(self.start < self.end, "empty strategy range");
            T::draw(self.start, self.end, false, rng)
        }
    }

    impl<T: RangeValue> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            T::draw(lo, hi, true, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (S0/0);
        (S0/0, S1/1);
        (S0/0, S1/1, S2/2);
        (S0/0, S1/1, S2/2, S3/3);
        (S0/0, S1/1, S2/2, S3/3, S4/4);
        (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5);
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy generating `Vec`s of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A uniformly random boolean.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    pub mod prop {
        //! The `prop::` namespace (collections, booleans).
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` item
/// expands to a plain `#[test]` drawing `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Bundle the argument strategies into one tuple strategy so
            // arguments may be arbitrary patterns, not just identifiers.
            let __strategies = ($($strat,)*);
            for __case in 0..__config.cases {
                let ($($arg,)*) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                // Bodies may `return Ok(())` early (upstream proptest
                // wraps them in a TestCaseResult closure), so run each
                // case inside a Result-returning closure.
                let __case_fn = || {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                let __outcome: ::core::result::Result<(), ::std::string::String> =
                    __case_fn();
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!("property case {} returned Err: {}", __case, __e);
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// `assert!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..10usize, y in -2.0..2.0f64) {
            prop_assert!(x < 10);
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn maps_and_vecs_compose(
            v in prop::collection::vec((0..5usize).prop_map(|n| n * 2), 3),
            flag in prop::bool::ANY,
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(v.iter().all(|&n| n % 2 == 0 && n < 10));
            let toggled = !flag;
            prop_assert!(flag != toggled);
        }
    }

    #[test]
    fn deterministic_rng_is_reproducible() {
        let mut a = crate::test_runner::TestRng::deterministic("label");
        let mut b = crate::test_runner::TestRng::deterministic("label");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
