//! Training-free proxy prescreening for the evolutionary co-search.
//!
//! Full candidate scoring (transpile + noisy simulation) caps the search's
//! population at the evaluation budget. Following AFTP-QAS ("Adaptive
//! Fusion of Training-free Proxies for Quantum Architecture Search"), this
//! crate estimates a candidate's rank *without* the estimator:
//!
//! - five [`Proxy`] implementations — structural depth/width, 2Q-gate
//!   topology cost under the candidate's qubit mapping (pure circuit
//!   analysis), expressibility and gradient-variance trainability (a
//!   handful of seeded simulator sweeps), and SNIP-style saliency from one
//!   batched adjoint pass,
//! - a [`FusionModel`] — per-proxy running normalization feeding
//!   softmax-gated linear experts, trained online against the full scores
//!   the estimator produces anyway, serialized through the checkpoint wire
//!   format so fused weights survive a kill/resume,
//! - a [`Prescreener`] — caches [`ProxyFeatures`] under the search's
//!   128-bit structural digests and picks which fraction of a generation
//!   escalates to full scoring.
//!
//! Everything here is deterministic: proxy randomness flows through
//! splitmix64 seeds derived from candidate digests, so proxy scores are
//! bitwise identical across worker counts and across kill/resume.

mod fusion;
mod prescreen;
mod proxies;

pub use fusion::{FusionModel, NUM_EXPERTS};
pub use prescreen::{scalarize_objectives, Prescreener, PrescreenerState, ProxyOptions};
pub use proxies::{
    candidate_seed, compute_features, default_proxies, splitmix64, DepthWidth, Expressibility,
    Proxy, ProxyContext, ProxyFeatures, Snip, Trainability, TwoQTopology, NUM_PROXIES,
};
