//! Adaptive proxy fusion: per-proxy normalization feeding softmax-gated
//! linear experts, trained online against the estimator's full scores.
//!
//! Raw proxy features live on wildly different scales (a depth count vs. a
//! summed gate error vs. a gradient variance), and which proxy predicts
//! the full score best depends on the task, device, and even the search
//! phase. Following AFTP-QAS, a small Mixture-of-Experts learns the
//! combination on the fly: every candidate the search fully scores anyway
//! becomes one `(features, score)` observation, so fusion costs nothing
//! beyond the arithmetic below.
//!
//! Determinism: expert and gate weights are initialized from fixed
//! symmetry-breaking patterns (no RNG), observations are applied in
//! deterministic batch order by the caller, and the whole model serializes
//! through the checkpoint wire format so a resumed search continues from
//! bit-identical fusion weights.

use crate::proxies::{ProxyFeatures, NUM_PROXIES};
use qns_runtime::{ByteReader, ByteWriter, CheckpointError};

/// Number of gated linear experts.
pub const NUM_EXPERTS: usize = 3;

/// Normalized values are clipped to this band so one outlier candidate
/// cannot blow up the online updates.
const Z_CLIP: f64 = 8.0;

/// The squared-error gradient is clipped to this band per observation.
const GRAD_CLIP: f64 = 4.0;

/// Welford running mean/variance, used to normalize each feature and the
/// target score as observations stream in.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Welford {
    count: f64,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn new() -> Self {
        Welford {
            count: 0.0,
            mean: 0.0,
            m2: 0.0,
        }
    }

    fn update(&mut self, x: f64) {
        self.count += 1.0;
        let delta = x - self.mean;
        self.mean += delta / self.count;
        self.m2 += delta * (x - self.mean);
    }

    /// Standard deviation with a floor of 1 until two observations exist
    /// (and for degenerate constant features), so normalization is always
    /// well-defined.
    fn std(&self) -> f64 {
        if self.count < 2.0 {
            return 1.0;
        }
        let var = self.m2 / (self.count - 1.0);
        if var > 1e-24 {
            var.sqrt()
        } else {
            1.0
        }
    }

    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.count);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
        Ok(Welford {
            count: r.get_f64()?,
            mean: r.get_f64()?,
            m2: r.get_f64()?,
        })
    }
}

/// Softmax-gated linear experts over normalized proxy features.
///
/// Each expert is affine in the normalized features; a softmax gate (also
/// affine) mixes them. Predictions are denormalized back to the full-score
/// scale, so [`FusionModel::predict`] is directly comparable to estimator
/// scores (lower is better).
#[derive(Clone, Debug, PartialEq)]
pub struct FusionModel {
    feat: [Welford; NUM_PROXIES],
    target: Welford,
    /// Expert weights: `NUM_PROXIES` feature slots plus a bias slot.
    experts: [[f64; NUM_PROXIES + 1]; NUM_EXPERTS],
    /// Gate weights, same shape.
    gates: [[f64; NUM_PROXIES + 1]; NUM_EXPERTS],
    observed: u64,
    lr: f64,
}

impl Default for FusionModel {
    fn default() -> Self {
        Self::new()
    }
}

impl FusionModel {
    /// A fresh model with deterministic symmetry-breaking gate patterns
    /// (experts start at zero; identical gates would never specialize).
    pub fn new() -> Self {
        let mut gates = [[0.0; NUM_PROXIES + 1]; NUM_EXPERTS];
        for (k, gate) in gates.iter_mut().enumerate() {
            for (i, g) in gate.iter_mut().enumerate().take(NUM_PROXIES) {
                *g = 0.05 * (((i + k) % 3) as f64 - 1.0);
            }
        }
        FusionModel {
            feat: [Welford::new(); NUM_PROXIES],
            target: Welford::new(),
            experts: [[0.0; NUM_PROXIES + 1]; NUM_EXPERTS],
            gates,
            observed: 0,
            lr: 0.05,
        }
    }

    /// Observations consumed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    fn normalize(&self, f: &ProxyFeatures) -> [f64; NUM_PROXIES + 1] {
        let mut z = [0.0; NUM_PROXIES + 1];
        for (zi, (&fi, norm)) in z.iter_mut().zip(f.0.iter().zip(&self.feat)) {
            *zi = ((fi - norm.mean) / norm.std()).clamp(-Z_CLIP, Z_CLIP);
        }
        z[NUM_PROXIES] = 1.0;
        z
    }

    fn forward(&self, z: &[f64; NUM_PROXIES + 1]) -> ([f64; NUM_EXPERTS], [f64; NUM_EXPERTS], f64) {
        let mut experts = [0.0; NUM_EXPERTS];
        let mut logits = [0.0; NUM_EXPERTS];
        for k in 0..NUM_EXPERTS {
            experts[k] = dot(&self.experts[k], z);
            logits[k] = dot(&self.gates[k], z);
        }
        let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut gate = [0.0; NUM_EXPERTS];
        let mut sum = 0.0;
        for k in 0..NUM_EXPERTS {
            gate[k] = (logits[k] - max).exp();
            sum += gate[k];
        }
        for g in &mut gate {
            *g /= sum;
        }
        let y = experts.iter().zip(&gate).map(|(e, g)| e * g).sum::<f64>();
        (experts, gate, y)
    }

    /// The predicted full score for a feature vector (lower is better,
    /// same scale as the estimator). Non-finite features predict `+inf`
    /// so poisoned candidates always rank last.
    pub fn predict(&self, f: &ProxyFeatures) -> f64 {
        if !f.is_finite() {
            return f64::INFINITY;
        }
        let z = self.normalize(f);
        let (_, _, yn) = self.forward(&z);
        yn * self.target.std() + self.target.mean
    }

    /// Consumes one `(features, full score)` observation: updates the
    /// running normalizers, then takes one clipped SGD step on the squared
    /// prediction error. Non-finite features or scores are skipped —
    /// poisoned candidates must not corrupt the model.
    pub fn observe(&mut self, f: &ProxyFeatures, score: f64) {
        if !f.is_finite() || !score.is_finite() {
            return;
        }
        for (w, x) in self.feat.iter_mut().zip(&f.0) {
            w.update(*x);
        }
        self.target.update(score);
        self.observed += 1;

        let z = self.normalize(f);
        let yn = (score - self.target.mean) / self.target.std();
        let (experts, gate, pred) = self.forward(&z);
        let dy = (2.0 * (pred - yn)).clamp(-GRAD_CLIP, GRAD_CLIP);
        for k in 0..NUM_EXPERTS {
            // Expert k sees the error in proportion to its gate weight.
            let de = dy * gate[k];
            for (w, zi) in self.experts[k].iter_mut().zip(&z) {
                *w -= self.lr * de * zi;
            }
            // Softmax backward: a gate grows when its expert beats the mix.
            let da = dy * gate[k] * (experts[k] - pred);
            for (v, zi) in self.gates[k].iter_mut().zip(&z) {
                *v -= self.lr * da * zi;
            }
        }
    }

    /// Serializes the full model (normalizers, experts, gates, counters)
    /// in the checkpoint wire format.
    pub fn encode(&self, w: &mut ByteWriter) {
        for f in &self.feat {
            f.encode(w);
        }
        self.target.encode(w);
        for row in self.experts.iter().chain(self.gates.iter()) {
            for &v in row {
                w.put_f64(v);
            }
        }
        w.put_u64(self.observed);
        w.put_f64(self.lr);
    }

    /// Inverse of [`FusionModel::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
        let mut feat = [Welford::new(); NUM_PROXIES];
        for f in &mut feat {
            *f = Welford::decode(r)?;
        }
        let target = Welford::decode(r)?;
        let mut experts = [[0.0; NUM_PROXIES + 1]; NUM_EXPERTS];
        let mut gates = [[0.0; NUM_PROXIES + 1]; NUM_EXPERTS];
        for row in experts.iter_mut().chain(gates.iter_mut()) {
            for v in row.iter_mut() {
                *v = r.get_f64()?;
            }
        }
        Ok(FusionModel {
            feat,
            target,
            experts,
            gates,
            observed: r.get_u64()?,
            lr: r.get_f64()?,
        })
    }
}

fn dot(w: &[f64; NUM_PROXIES + 1], z: &[f64; NUM_PROXIES + 1]) -> f64 {
    w.iter().zip(z).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(xs: [f64; NUM_PROXIES]) -> ProxyFeatures {
        ProxyFeatures(xs)
    }

    /// Synthetic task: the true score is a linear function of feature 1.
    fn synthetic(i: usize) -> (ProxyFeatures, f64) {
        let x = (i % 17) as f64 * 0.3 - 2.0;
        let noise = ((i * 7 + 3) % 5) as f64 * 0.01;
        (
            feat([1.0, x, 0.5 * x + 1.0, -0.2, 3.0]),
            2.0 * x + 0.5 + noise,
        )
    }

    #[test]
    fn learns_a_monotone_feature_map() {
        let mut model = FusionModel::new();
        for round in 0..20 {
            for i in 0..17 {
                let (f, y) = synthetic(round * 17 + i);
                model.observe(&f, y);
            }
        }
        // Rank agreement: higher x must predict higher score.
        let lo = model.predict(&feat([1.0, -2.0, 0.0, -0.2, 3.0]));
        let mid = model.predict(&feat([1.0, 0.0, 1.0, -0.2, 3.0]));
        let hi = model.predict(&feat([1.0, 2.0, 2.0, -0.2, 3.0]));
        assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
    }

    #[test]
    fn poisoned_features_predict_infinity_and_are_skipped() {
        let mut model = FusionModel::new();
        let before = model.clone();
        model.observe(&ProxyFeatures::poisoned(), 1.0);
        model.observe(&feat([0.0; NUM_PROXIES]), f64::INFINITY);
        assert_eq!(model, before, "non-finite observations must be no-ops");
        assert!(model.predict(&ProxyFeatures::poisoned()).is_infinite());
    }

    #[test]
    fn observations_are_order_deterministic() {
        let mut a = FusionModel::new();
        let mut b = FusionModel::new();
        for i in 0..50 {
            let (f, y) = synthetic(i);
            a.observe(&f, y);
            b.observe(&f, y);
        }
        assert_eq!(a, b);
        let f = feat([0.3, 0.1, -0.2, 0.4, 0.0]);
        assert_eq!(a.predict(&f).to_bits(), b.predict(&f).to_bits());
    }

    #[test]
    fn model_round_trips_through_wire_format() {
        let mut model = FusionModel::new();
        for i in 0..23 {
            let (f, y) = synthetic(i);
            model.observe(&f, y);
        }
        let mut w = ByteWriter::new();
        model.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = FusionModel::decode(&mut r).expect("decode");
        assert_eq!(model, back);
        let f = feat([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(model.predict(&f).to_bits(), back.predict(&f).to_bits());
    }

    #[test]
    fn prediction_before_observations_is_finite() {
        let model = FusionModel::new();
        assert!(model.predict(&feat([1.0; NUM_PROXIES])).is_finite());
        assert_eq!(model.observed(), 0);
    }
}
