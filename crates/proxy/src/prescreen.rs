//! The prescreening stage: caches proxy features under the search's
//! structural digests, ranks a generation with the fusion model, and
//! decides which fraction escalates to full estimator scoring.
//!
//! The prescreener is a cascade filter. Every candidate gets the cheap
//! proxy treatment ([`crate::compute_features`], microseconds to a few
//! milliseconds); only the most promising `keep` fraction pays for
//! transpile + noisy simulation. Because the full scores of escalated
//! candidates flow back through [`Prescreener::observe`], the fusion model
//! keeps calibrating itself against exactly the distribution the search is
//! exploring — no offline training set required.
//!
//! [`PrescreenerState`] captures everything (fusion weights, the feature
//! cache, telemetry counters) in the checkpoint wire format so a resumed
//! search continues bitwise-identically.

use crate::fusion::FusionModel;
use crate::proxies::{ProxyFeatures, NUM_PROXIES};
use qns_runtime::{ByteReader, ByteWriter, CacheKey, CheckpointError, ShardedCache};

/// How the prescreening stage behaves; carried on the search config.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProxyOptions {
    /// Whether prescreening runs at all. Off by default: the proxy-off
    /// search path must stay bitwise-identical to the pre-proxy engine.
    pub enabled: bool,
    /// Fraction of each generation escalated to full scoring, in (0, 1].
    pub keep: f64,
    /// Number of leading generations scored in full regardless of `keep`,
    /// so the fusion model has observations before it starts gating.
    pub warmup: usize,
}

impl Default for ProxyOptions {
    fn default() -> Self {
        ProxyOptions {
            enabled: false,
            keep: 0.25,
            warmup: 2,
        }
    }
}

/// Per-search prescreening state: fusion model plus a content-addressed
/// feature cache keyed by the same 128-bit structural digests the score
/// memo uses.
#[derive(Debug)]
pub struct Prescreener {
    options: ProxyOptions,
    fusion: FusionModel,
    features: ShardedCache<ProxyFeatures>,
}

impl Prescreener {
    /// A fresh prescreener.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < keep <= 1`.
    pub fn new(options: ProxyOptions) -> Self {
        assert!(
            options.keep > 0.0 && options.keep <= 1.0,
            "proxy keep fraction must be in (0, 1], got {}",
            options.keep
        );
        Prescreener {
            options,
            fusion: FusionModel::new(),
            features: ShardedCache::new(16),
        }
    }

    /// Rebuilds a prescreener from checkpointed state.
    pub fn from_state(options: ProxyOptions, state: &PrescreenerState) -> Self {
        let pre = Prescreener {
            options,
            fusion: state.fusion.clone(),
            features: ShardedCache::new(16),
        };
        for (key, feats) in &state.features {
            pre.features.insert(*key, *feats);
        }
        pre
    }

    /// The options this prescreener runs with.
    pub fn options(&self) -> &ProxyOptions {
        &self.options
    }

    /// Cached proxy features for a candidate digest, if already computed.
    pub fn cached_features(&self, key: CacheKey) -> Option<ProxyFeatures> {
        self.features.get(key).map(|f| *f)
    }

    /// Records freshly computed features under a candidate digest.
    pub fn record_features(&self, key: CacheKey, feats: ProxyFeatures) {
        self.features.insert(key, feats);
    }

    /// Predicted full score for a feature vector (lower is better).
    pub fn predict(&self, feats: &ProxyFeatures) -> f64 {
        self.fusion.predict(feats)
    }

    /// Feeds one escalated candidate's full score back into the fusion
    /// model.
    pub fn observe(&mut self, feats: &ProxyFeatures, score: f64) {
        self.fusion.observe(feats, score);
    }

    /// Full-score observations consumed so far.
    pub fn observed(&self) -> u64 {
        self.fusion.observed()
    }

    /// How many of `unique` deduplicated candidates escalate to full
    /// scoring for a generation of nominal size `population`.
    ///
    /// `ceil(keep * population)`, clamped so at least `parents` candidates
    /// (the selection pressure the evolution needs, never fewer than 2)
    /// and at most every unique candidate get scored.
    pub fn escalation_count(&self, population: usize, parents: usize, unique: usize) -> usize {
        let nominal = (self.options.keep * population as f64).ceil() as usize;
        nominal.max(parents.max(2)).min(unique)
    }

    /// Indices of the `count` best-predicted candidates, ties broken by
    /// position, returned in ascending index order so the escalated batch
    /// preserves population order.
    pub fn select(&self, predicted: &[f64], count: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..predicted.len()).collect();
        order.sort_by(|&a, &b| {
            predicted[a]
                .total_cmp(&predicted[b])
                .then_with(|| a.cmp(&b))
        });
        order.truncate(count);
        order.sort_unstable();
        order
    }

    /// Captures the full prescreening state (plus the search-side counters
    /// it rides along with) for checkpointing.
    pub fn snapshot(
        &self,
        proxy_evals: u64,
        proxy_escalations: u64,
        proxy_dedup_hits: u64,
    ) -> PrescreenerState {
        PrescreenerState {
            fusion: self.fusion.clone(),
            features: self.features.entries(),
            proxy_evals,
            proxy_escalations,
            proxy_dedup_hits,
        }
    }
}

/// Collapses a batch of objective vectors into one scalar target per
/// candidate for the fusion model, so the same prescreener that learns
/// scalar search scores can learn multi-objective Pareto fitness.
///
/// Each dimension is min-max normalized over the batch's finite values and
/// the normalized coordinates are averaged, so every objective carries the
/// same weight regardless of its native scale (a loss near 0.4 vs a depth
/// near 40). A candidate with any non-finite component (poisoned score,
/// failed compile) scalarizes to `+inf` and ranks last. A dimension whose
/// finite values are all equal contributes 0 for every candidate — it
/// cannot order the batch. Deterministic: a pure fold over the input order.
pub fn scalarize_objectives(batch: &[Vec<f64>]) -> Vec<f64> {
    let Some(first) = batch.first() else {
        return Vec::new();
    };
    let dims = first.len();
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for objs in batch {
        for (k, &v) in objs.iter().enumerate() {
            if v.is_finite() {
                lo[k] = lo[k].min(v);
                hi[k] = hi[k].max(v);
            }
        }
    }
    batch
        .iter()
        .map(|objs| {
            if objs.iter().any(|v| !v.is_finite()) {
                return f64::INFINITY;
            }
            let mut sum = 0.0;
            for (k, &v) in objs.iter().enumerate() {
                let range = hi[k] - lo[k];
                if range.is_finite() && range > 0.0 {
                    sum += (v - lo[k]) / range;
                }
            }
            sum / dims.max(1) as f64
        })
        .collect()
}

/// Serializable prescreener snapshot, embedded in the search checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct PrescreenerState {
    /// Fusion model weights and normalizers.
    pub fusion: FusionModel,
    /// Feature cache entries, sorted by digest for bitwise-stable bytes.
    pub features: Vec<(CacheKey, ProxyFeatures)>,
    /// Candidates whose proxy features were computed (cache misses).
    pub proxy_evals: u64,
    /// Candidates escalated to full estimator scoring.
    pub proxy_escalations: u64,
    /// Structurally-duplicate offspring skipped before any scoring.
    pub proxy_dedup_hits: u64,
}

impl PrescreenerState {
    /// Serializes the snapshot in the checkpoint wire format.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.fusion.encode(w);
        w.put_usize(self.features.len());
        for (key, feats) in &self.features {
            w.put_u64(key.lo);
            w.put_u64(key.hi);
            for &v in &feats.0 {
                w.put_f64(v);
            }
        }
        w.put_u64(self.proxy_evals);
        w.put_u64(self.proxy_escalations);
        w.put_u64(self.proxy_dedup_hits);
    }

    /// Inverse of [`PrescreenerState::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
        let fusion = FusionModel::decode(r)?;
        let n = r.get_seq_len(16 + 8 * NUM_PROXIES)?;
        let mut features = Vec::with_capacity(n);
        for _ in 0..n {
            let key = CacheKey {
                lo: r.get_u64()?,
                hi: r.get_u64()?,
            };
            let mut feats = [0.0; NUM_PROXIES];
            for v in feats.iter_mut() {
                *v = r.get_f64()?;
            }
            features.push((key, ProxyFeatures(feats)));
        }
        Ok(PrescreenerState {
            fusion,
            features,
            proxy_evals: r.get_u64()?,
            proxy_escalations: r.get_u64()?,
            proxy_dedup_hits: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            lo: n,
            hi: n.wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    fn feat(b: f64) -> ProxyFeatures {
        ProxyFeatures([b, b + 1.0, b * 2.0, -b, b * 0.5])
    }

    #[test]
    fn escalation_count_clamps_to_parents_and_unique() {
        let pre = Prescreener::new(ProxyOptions {
            enabled: true,
            keep: 0.25,
            warmup: 0,
        });
        // ceil(0.25 * 48) = 12 of 48 unique.
        assert_eq!(pre.escalation_count(48, 4, 48), 12);
        // Never fewer than parents (or 2)...
        assert_eq!(pre.escalation_count(8, 6, 8), 6);
        assert_eq!(pre.escalation_count(4, 1, 4), 2);
        // ...and never more than the unique candidates available.
        assert_eq!(pre.escalation_count(48, 4, 5), 5);
        assert_eq!(pre.escalation_count(48, 4, 0), 0);
    }

    #[test]
    #[should_panic(expected = "keep fraction")]
    fn zero_keep_is_rejected() {
        Prescreener::new(ProxyOptions {
            enabled: true,
            keep: 0.0,
            warmup: 0,
        });
    }

    #[test]
    fn select_prefers_low_predictions_and_preserves_index_order() {
        let pre = Prescreener::new(ProxyOptions::default());
        let predicted = [3.0, 1.0, 2.0, 1.0, f64::INFINITY];
        // Ties (indices 1 and 3) break toward the earlier index; output is
        // ascending so the batch keeps population order.
        assert_eq!(pre.select(&predicted, 3), vec![1, 2, 3]);
        assert_eq!(pre.select(&predicted, 1), vec![1]);
        assert_eq!(pre.select(&predicted, 10), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn feature_cache_round_trips() {
        let pre = Prescreener::new(ProxyOptions::default());
        assert_eq!(pre.cached_features(key(1)), None);
        pre.record_features(key(1), feat(0.5));
        assert_eq!(pre.cached_features(key(1)), Some(feat(0.5)));
    }

    #[test]
    fn scalarized_objectives_weight_dimensions_equally() {
        // Loss in [0.4, 0.8], depth in [10, 50]: the candidate best on
        // both dominates, the one worst on both ranks last, and the two
        // mixed candidates land in between despite depth's larger scale.
        let batch = vec![
            vec![0.4, 10.0],
            vec![0.8, 50.0],
            vec![0.4, 50.0],
            vec![0.8, 10.0],
        ];
        let s = scalarize_objectives(&batch);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[1], 1.0);
        assert_eq!(s[2], 0.5);
        assert_eq!(s[3], 0.5);
    }

    #[test]
    fn scalarize_poisons_non_finite_and_ignores_flat_dimensions() {
        let batch = vec![
            vec![0.5, 7.0, 9.0],
            vec![0.2, 7.0, 3.0],
            vec![f64::INFINITY, 7.0, 3.0],
        ];
        let s = scalarize_objectives(&batch);
        // The flat second dimension contributes nothing; the poisoned
        // candidate ranks strictly last.
        assert!(s[1] < s[0]);
        assert_eq!(s[2], f64::INFINITY);
        // The non-finite value must not contaminate the normalization of
        // the finite candidates.
        assert!(s[0].is_finite() && s[1].is_finite());
        assert!(scalarize_objectives(&[]).is_empty());
    }

    #[test]
    fn state_survives_wire_round_trip_and_restore() {
        let mut pre = Prescreener::new(ProxyOptions::default());
        for i in 0..6 {
            let f = feat(i as f64);
            pre.record_features(key(i), f);
            pre.observe(&f, i as f64 * 0.1);
        }
        let state = pre.snapshot(6, 4, 2);
        assert_eq!(state.proxy_evals, 6);
        assert_eq!(state.proxy_escalations, 4);
        assert_eq!(state.proxy_dedup_hits, 2);

        let mut w = ByteWriter::new();
        state.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = PrescreenerState::decode(&mut r).expect("decode");
        assert_eq!(state, back);

        let restored = Prescreener::from_state(*pre.options(), &back);
        assert_eq!(restored.observed(), pre.observed());
        for i in 0..6 {
            assert_eq!(restored.cached_features(key(i)), Some(feat(i as f64)));
            let f = feat(i as f64);
            assert_eq!(restored.predict(&f).to_bits(), pre.predict(&f).to_bits());
        }
    }
}
