//! The five training-free proxies.
//!
//! Each proxy maps a candidate — a logical circuit plus its qubit mapping
//! on a device — to one `f64` feature. Features are *not* scores: their
//! scale and sign are arbitrary, and the [`crate::FusionModel`] learns how
//! to combine them against the estimator's full scores. What matters here
//! is that each feature is cheap (no transpile, no noisy trajectories) and
//! deterministic for a given `(candidate, seed)`.

use qns_circuit::Circuit;
use qns_noise::Device;
use qns_sim::{
    adjoint_gradient, adjoint_gradient_batch, DiagObservable, SimPlan, StateVec,
    DEFAULT_FUSION_LEVEL,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of proxies in the default suite (the width of
/// [`ProxyFeatures`]).
pub const NUM_PROXIES: usize = 5;

/// The splitmix64 finalizer: a high-quality 64-bit mix used to derive
/// per-candidate seeds from structural digests.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic proxy seed for one candidate: the run seed mixed with
/// the candidate's 128-bit structural digest. Identical for the same
/// candidate at any worker count and across resume.
pub fn candidate_seed(run_seed: u64, digest_lo: u64, digest_hi: u64) -> u64 {
    splitmix64(run_seed ^ splitmix64(digest_lo ^ digest_hi.rotate_left(32)))
}

/// Everything a proxy may read about one candidate.
pub struct ProxyContext<'a> {
    /// The candidate's logical circuit (encoder included for QML).
    pub circuit: &'a Circuit,
    /// The target device model.
    pub device: &'a Device,
    /// Logical→physical qubit mapping.
    pub layout: &'a [usize],
    /// Deterministic seed for the sampled proxies
    /// (see [`candidate_seed`]).
    pub seed: u64,
}

/// One training-free proxy: a cheap, deterministic feature of a candidate.
pub trait Proxy {
    /// Stable identifier (used in telemetry and docs).
    fn name(&self) -> &'static str;
    /// The feature value. Scale and direction are proxy-specific; the
    /// fusion model learns the mapping to full scores.
    fn score(&self, cx: &ProxyContext<'_>) -> f64;
}

/// The per-candidate feature vector, one slot per proxy in
/// [`default_proxies`] order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProxyFeatures(pub [f64; NUM_PROXIES]);

impl ProxyFeatures {
    /// The poisoned vector recorded when feature computation panicked:
    /// never fused, never escalated by rank after warmup.
    pub fn poisoned() -> Self {
        ProxyFeatures([f64::INFINITY; NUM_PROXIES])
    }

    /// Whether every slot is finite (poisoned or NaN vectors are not).
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }
}

/// Structural depth/width: circuit depth scaled by the active-qubit
/// fraction. Deeper, wider candidates accumulate more noise.
pub struct DepthWidth;

impl Proxy for DepthWidth {
    fn name(&self) -> &'static str {
        "depth_width"
    }

    fn score(&self, cx: &ProxyContext<'_>) -> f64 {
        let n = cx.circuit.num_qubits().max(1);
        let mut active = vec![false; n];
        for op in cx.circuit.iter() {
            for &q in &op.qubits[..op.num_qubits()] {
                if q < n {
                    active[q] = true;
                }
            }
        }
        let width = active.iter().filter(|&&a| a).count() as f64 / n as f64;
        cx.circuit.depth() as f64 * (1.0 + width)
    }
}

/// 2Q-gate topology cost: the summed device error of every two-qubit gate
/// under the candidate's mapping, with a 3× routing penalty when the
/// mapped pair is not coupled (the transpiler will have to insert SWAPs).
/// Pure circuit analysis — no transpile.
pub struct TwoQTopology;

/// Penalty factor for a 2Q gate whose mapped qubits are not adjacent.
const UNCOUPLED_PENALTY: f64 = 3.0;

impl Proxy for TwoQTopology {
    fn name(&self) -> &'static str {
        "twoq_topology"
    }

    fn score(&self, cx: &ProxyContext<'_>) -> f64 {
        let mut cost = 0.0;
        for op in cx.circuit.iter() {
            if op.num_qubits() != 2 {
                continue;
            }
            let (a, b) = (op.qubits[0], op.qubits[1]);
            match (cx.layout.get(a), cx.layout.get(b)) {
                (Some(&pa), Some(&pb)) => {
                    let e = cx.device.err_2q(pa, pb);
                    if cx.device.connected(pa, pb) {
                        cost += e;
                    } else {
                        cost += UNCOUPLED_PENALTY * e;
                    }
                }
                // Unmapped logical qubit: worst plausible edge.
                _ => cost += UNCOUPLED_PENALTY * cx.device.mean_err_2q().max(0.02),
            }
        }
        cost
    }
}

/// Expressibility: how far the candidate's output-state fidelity
/// distribution sits from the Haar baseline, estimated from a handful of
/// seeded parameter draws. For Haar-random states the expected pairwise
/// fidelity is `1/2^n`; circuits that barely move the state have mean
/// fidelity near 1. Smaller is more expressive.
pub struct Expressibility {
    /// Parameter draws (`S` states → `S(S-1)/2` fidelity pairs).
    pub draws: usize,
}

impl Default for Expressibility {
    fn default() -> Self {
        Expressibility { draws: 6 }
    }
}

impl Proxy for Expressibility {
    fn name(&self) -> &'static str {
        "expressibility"
    }

    fn score(&self, cx: &ProxyContext<'_>) -> f64 {
        let n = cx.circuit.num_qubits();
        let n_params = cx.circuit.num_train_params();
        let input = vec![0.0; cx.circuit.num_inputs()];
        let mut rng = StdRng::seed_from_u64(cx.seed ^ 0xE4_9E55);
        let plan = SimPlan::compile(cx.circuit, DEFAULT_FUSION_LEVEL);
        let states: Vec<StateVec> = (0..self.draws.max(2))
            .map(|_| {
                let params = draw_angles(&mut rng, n_params);
                let mut state = StateVec::zero_state(n);
                plan.execute_into(cx.circuit, &params, &input, &mut state);
                state
            })
            .collect();
        let mut fid_sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                fid_sum += states[i].inner(&states[j]).norm_sqr();
                pairs += 1;
            }
        }
        let mean_fid = fid_sum / pairs as f64;
        let haar = 1.0 / (1u64 << n.min(63)) as f64;
        (mean_fid - haar).abs()
    }
}

/// Trainability: pooled gradient variance over seeded initializations —
/// the barren-plateau diagnostic. The observable is `Z` on qubit 0 (the
/// McClean et al. convention); near-zero variance means the landscape is
/// flat and the candidate will train poorly.
pub struct Trainability {
    /// Parameter draws to pool the variance over.
    pub draws: usize,
}

impl Default for Trainability {
    fn default() -> Self {
        Trainability { draws: 4 }
    }
}

impl Proxy for Trainability {
    fn name(&self) -> &'static str {
        "trainability"
    }

    fn score(&self, cx: &ProxyContext<'_>) -> f64 {
        let n_params = cx.circuit.num_train_params();
        if n_params == 0 {
            return 0.0;
        }
        let mut w = vec![0.0; cx.circuit.num_qubits()];
        w[0] = 1.0;
        let obs = DiagObservable::new(w);
        let input = vec![0.0; cx.circuit.num_inputs()];
        let mut rng = StdRng::seed_from_u64(cx.seed ^ 0x7_2A14);
        let mut entries: Vec<f64> = Vec::with_capacity(self.draws.max(1) * n_params);
        for _ in 0..self.draws.max(1) {
            let params = draw_angles(&mut rng, n_params);
            let (_, g) = adjoint_gradient(cx.circuit, &params, &input, &obs);
            entries.extend(g);
        }
        let mean = entries.iter().sum::<f64>() / entries.len() as f64;
        entries.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / entries.len() as f64
    }
}

/// SNIP-style saliency: `Σ|θ_i · ∂L/∂θ_i|` at one seeded initialization,
/// from a single batched adjoint pass over a few seeded input lanes (one
/// all-zeros lane when the circuit takes no inputs). High saliency means
/// the parameters have leverage over the output at initialization.
pub struct Snip {
    /// Input lanes for the batched adjoint pass (QML circuits).
    pub lanes: usize,
}

impl Default for Snip {
    fn default() -> Self {
        Snip { lanes: 2 }
    }
}

impl Proxy for Snip {
    fn name(&self) -> &'static str {
        "snip"
    }

    fn score(&self, cx: &ProxyContext<'_>) -> f64 {
        let n_params = cx.circuit.num_train_params();
        if n_params == 0 {
            return 0.0;
        }
        let n = cx.circuit.num_qubits();
        let mut rng = StdRng::seed_from_u64(cx.seed ^ 0x5_41B9);
        let params = draw_angles(&mut rng, n_params);
        let n_inputs = cx.circuit.num_inputs();
        let lanes = if n_inputs == 0 { 1 } else { self.lanes.max(1) };
        let inputs: Vec<Vec<f64>> = (0..lanes)
            .map(|_| (0..n_inputs).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let input_refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        let weight = 1.0 / n as f64;
        let (_, grad) = adjoint_gradient_batch(cx.circuit, &params, &input_refs, |_, ez| {
            (ez.iter().sum::<f64>() * weight, vec![weight; n])
        });
        params
            .iter()
            .zip(&grad)
            .map(|(t, g)| (t * g).abs())
            .sum::<f64>()
            / lanes as f64
    }
}

/// Uniform angle draws in `[-π, π)` — the same convention as the
/// barren-plateau probes.
fn draw_angles(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
        .collect()
}

/// The default proxy suite, in [`ProxyFeatures`] slot order.
pub fn default_proxies() -> Vec<Box<dyn Proxy + Send + Sync>> {
    vec![
        Box::new(DepthWidth),
        Box::new(TwoQTopology),
        Box::new(Expressibility::default()),
        Box::new(Trainability::default()),
        Box::new(Snip::default()),
    ]
}

/// Runs the default suite over one candidate.
pub fn compute_features(cx: &ProxyContext<'_>) -> ProxyFeatures {
    let mut out = [0.0; NUM_PROXIES];
    for (slot, proxy) in out.iter_mut().zip(default_proxies()) {
        *slot = proxy.score(cx);
    }
    ProxyFeatures(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::{GateKind, Param};

    /// A small parameterized candidate: RY(input) encoders, then U3+CX
    /// layers over `n` qubits.
    fn candidate(n: usize, layers: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.push(GateKind::RY, &[q], &[Param::Input(q)]);
        }
        let mut t = 0;
        for _ in 0..layers {
            for q in 0..n {
                c.push(
                    GateKind::U3,
                    &[q],
                    &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
                );
                t += 3;
            }
            for q in 0..n {
                c.push(GateKind::CX, &[q, (q + 1) % n], &[]);
            }
        }
        c
    }

    fn cx<'a>(circuit: &'a Circuit, device: &'a Device, layout: &'a [usize]) -> ProxyContext<'a> {
        ProxyContext {
            circuit,
            device,
            layout,
            seed: 11,
        }
    }

    #[test]
    fn features_are_finite_and_deterministic() {
        let circuit = candidate(4, 2);
        let device = Device::yorktown();
        let layout = [0, 1, 2, 3];
        let a = compute_features(&cx(&circuit, &device, &layout));
        let b = compute_features(&cx(&circuit, &device, &layout));
        assert!(a.is_finite(), "{a:?}");
        for (x, y) in a.0.iter().zip(&b.0) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "proxy features must be bitwise stable"
            );
        }
    }

    #[test]
    fn seed_changes_sampled_proxies_only() {
        let circuit = candidate(4, 2);
        let device = Device::yorktown();
        let layout = [0, 1, 2, 3];
        let a = compute_features(&ProxyContext {
            seed: 1,
            ..cx(&circuit, &device, &layout)
        });
        let b = compute_features(&ProxyContext {
            seed: 2,
            ..cx(&circuit, &device, &layout)
        });
        // Structural proxies (slots 0, 1) ignore the seed.
        assert_eq!(a.0[0].to_bits(), b.0[0].to_bits());
        assert_eq!(a.0[1].to_bits(), b.0[1].to_bits());
        // At least one sampled proxy must move with the seed.
        assert!(
            a.0[2] != b.0[2] || a.0[3] != b.0[3] || a.0[4] != b.0[4],
            "sampled proxies ignored the seed: {a:?}"
        );
    }

    #[test]
    fn depth_width_grows_with_layers() {
        let device = Device::yorktown();
        let layout = [0, 1, 2, 3];
        let shallow = candidate(4, 1);
        let deep = candidate(4, 3);
        let s = DepthWidth.score(&cx(&shallow, &device, &layout));
        let d = DepthWidth.score(&cx(&deep, &device, &layout));
        assert!(d > s, "deep {d} vs shallow {s}");
    }

    #[test]
    fn topology_penalizes_uncoupled_mappings() {
        let device = Device::yorktown();
        let circuit = candidate(4, 1);
        // Yorktown's bowtie couples (0,1),(0,2),(1,2),(2,3),(2,4),(3,4):
        // the trivial layout keeps the ring mostly coupled, while mapping
        // neighbors to opposite wings forces uncoupled pairs.
        let good = TwoQTopology.score(&cx(&circuit, &device, &[0, 1, 2, 3]));
        let bad = TwoQTopology.score(&cx(&circuit, &device, &[0, 3, 1, 4]));
        assert!(bad > good, "bad {bad} vs good {good}");
    }

    #[test]
    fn expressibility_separates_identity_from_entangler() {
        let device = Device::yorktown();
        let layout = [0, 1, 2, 3];
        // A circuit with no trainable gates never moves the zero state:
        // mean fidelity 1, far from Haar.
        let frozen = Circuit::new(4);
        let rich = candidate(4, 2);
        let f = Expressibility::default().score(&cx(&frozen, &device, &layout));
        let r = Expressibility::default().score(&cx(&rich, &device, &layout));
        assert!(f > r, "frozen {f} should be less expressive than rich {r}");
    }

    #[test]
    fn trainability_and_snip_vanish_without_parameters() {
        let device = Device::yorktown();
        let layout = [0, 1];
        let mut c = Circuit::new(2);
        c.push(GateKind::H, &[0], &[]);
        c.push(GateKind::CX, &[0, 1], &[]);
        let t = Trainability::default().score(&cx(&c, &device, &layout));
        let s = Snip::default().score(&cx(&c, &device, &layout));
        assert_eq!(t, 0.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn snip_is_positive_for_parameterized_circuits() {
        let device = Device::yorktown();
        let layout = [0, 1, 2, 3];
        let circuit = candidate(4, 2);
        let s = Snip::default().score(&cx(&circuit, &device, &layout));
        assert!(s > 0.0, "saliency {s}");
    }

    #[test]
    fn candidate_seeds_decorrelate_digests() {
        let a = candidate_seed(7, 1, 2);
        let b = candidate_seed(7, 2, 1);
        let c = candidate_seed(8, 1, 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, candidate_seed(7, 1, 2));
    }
}
