//! The end-to-end QuantumNAS pipeline (paper Figure 5).

use crate::pareto::{evolutionary_search_pareto_rt, FrontPoint, Objective};
use crate::runtime::{RuntimeOptions, SearchRuntime};
use crate::search::evolutionary_search_seeded_rt;
use crate::train::{eval_task, Split};
use crate::{
    iterative_prune_rt, train_supercircuit_rt, train_task, DesignSpace, Estimator, EstimatorKind,
    EvoConfig, Gene, PruneConfig, SpaceKind, SuperCircuit, SuperTrainConfig, Task, TrainConfig,
};
use qns_noise::{Device, TrajectoryConfig};
use qns_runtime::{counters, FaultPlan};
use qns_sim::SimBackend;
use std::sync::Arc;

/// Knobs for one full QuantumNAS run. The paper-scale settings train for
/// 200 epochs with 40 search iterations; [`QuantumNasConfig::fast`] scales
/// everything down to seconds for tests and demos.
#[derive(Clone, Debug)]
pub struct QuantumNasConfig {
    /// SuperCircuit block count (`None` = the space's default).
    pub blocks: Option<usize>,
    /// SuperCircuit training settings.
    pub super_train: SuperTrainConfig,
    /// Evolutionary co-search settings.
    pub evo: EvoConfig,
    /// Estimator used during search.
    pub estimator: EstimatorKind,
    /// Simulation backend for every scoring path (the CLI's `--backend`):
    /// the dense fast kernels by default, or [`SimBackend::Mps`] to score
    /// on a bond-truncated matrix-product state past the dense memory
    /// wall. The selection is part of the search-context digest, so
    /// checkpoints never resume across backends.
    pub backend: SimBackend,
    /// Transpiler optimization level (the paper uses 2).
    pub opt_level: u8,
    /// From-scratch training settings for the searched SubCircuit.
    pub train: TrainConfig,
    /// Pruning settings (`None` disables stage 4).
    pub prune: Option<PruneConfig>,
    /// Trajectory settings for the final "measured" evaluation.
    pub measure: TrajectoryConfig,
    /// Test samples for the measured accuracy (the paper uses 300).
    pub n_test: usize,
    /// Evaluation-runtime knobs shared by every stage (worker count,
    /// transpile cache + score memo, checkpointing). Overrides
    /// `evo.runtime`.
    pub runtime: RuntimeOptions,
    /// Deterministic fault-injection schedule shared by every stage
    /// (`None` = no injected faults; used by the robustness test harness
    /// and the CLI's `--fault-*` flags).
    pub faults: Option<Arc<FaultPlan>>,
    /// Multi-objective search axes (the CLI's `--objectives`). `None`
    /// keeps stage 2 on the scalar engine; `Some` switches it to NSGA-II
    /// Pareto co-search — the pipeline then trains the front point best on
    /// the primary objective and [`Report::front`] carries the whole
    /// archive for device matching.
    pub objectives: Option<Vec<Objective>>,
}

impl QuantumNasConfig {
    /// A configuration that finishes in seconds on a laptop while still
    /// exercising every stage.
    pub fn fast() -> Self {
        QuantumNasConfig {
            blocks: Some(2),
            super_train: SuperTrainConfig {
                steps: 150,
                batch_size: 8,
                warmup_steps: 15,
                ..Default::default()
            },
            evo: EvoConfig::fast(0),
            estimator: EstimatorKind::NoisySim(TrajectoryConfig {
                trajectories: 6,
                seed: 7,
                readout: true,
            }),
            backend: SimBackend::Fast,
            opt_level: 2,
            train: TrainConfig {
                epochs: 25,
                batch_size: 16,
                ..Default::default()
            },
            prune: Some(PruneConfig {
                final_ratio: 0.3,
                steps: 2,
                finetune_epochs: 4,
                ..Default::default()
            }),
            measure: TrajectoryConfig {
                trajectories: 8,
                seed: 0,
                readout: true,
            },
            n_test: 50,
            runtime: RuntimeOptions::default(),
            faults: None,
            objectives: None,
        }
    }

    /// Paper-scale settings (hours of compute; used by the full benchmark
    /// harness with `--full`).
    pub fn paper() -> Self {
        QuantumNasConfig {
            blocks: None,
            super_train: SuperTrainConfig {
                steps: 2000,
                batch_size: 64,
                warmup_steps: 200,
                ..Default::default()
            },
            evo: EvoConfig::default(),
            estimator: EstimatorKind::NoisySim(TrajectoryConfig::default()),
            backend: SimBackend::Fast,
            opt_level: 2,
            train: TrainConfig {
                epochs: 60,
                batch_size: 64,
                ..Default::default()
            },
            prune: Some(PruneConfig::default()),
            measure: TrajectoryConfig::default(),
            n_test: 300,
            runtime: RuntimeOptions::default(),
            faults: None,
            objectives: None,
        }
    }
}

/// The outcome of a full QuantumNAS run.
#[derive(Clone, Debug)]
pub struct Report {
    /// The searched gene (architecture + mapping).
    pub gene: Gene,
    /// The search's best estimator score.
    pub search_score: f64,
    /// Noise-free validation loss of the trained SubCircuit.
    pub trained_loss: f64,
    /// Measured (noisy) accuracy before pruning — QML only, else `NaN`.
    pub accuracy_before_prune: f64,
    /// Final measured accuracy (after pruning when enabled) — QML; for
    /// VQE this is `NaN` and [`Report::final_energy`] applies.
    pub final_accuracy: f64,
    /// Final measured energy (VQE) — `NaN` for QML.
    pub final_energy: f64,
    /// Fraction of parameters pruned (0 when pruning is disabled).
    pub pruned_ratio: f64,
    /// Trainable parameters in the searched circuit.
    pub n_params: usize,
    /// The deployed logical circuit (pruned slots frozen to zero).
    pub final_circuit: qns_circuit::Circuit,
    /// The deployed trained parameters.
    pub final_params: Vec<f64>,
    /// Genes actually evaluated during the search stage.
    pub search_evaluations: usize,
    /// Search candidates answered from the score memo.
    pub search_memo_hits: usize,
    /// Candidates proxy-scored by the search-stage prescreener (zero when
    /// `--proxy` is off).
    pub search_proxy_evals: u64,
    /// Candidates the prescreener escalated to full scoring (zero when
    /// `--proxy` is off).
    pub search_proxy_escalations: u64,
    /// Structurally-duplicate offspring skipped by the prescreener before
    /// any scoring (zero when `--proxy` is off).
    pub search_proxy_dedup_hits: u64,
    /// The searched Pareto front when stage 2 ran in multi-objective mode
    /// (`QuantumNasConfig::objectives`); empty for scalar runs.
    pub front: Vec<FrontPoint>,
    /// Text telemetry summary for the whole run (counters, cache hit
    /// rates, transpile/simulate wall time, per-generation tail).
    pub runtime_summary: String,
}

/// The end-to-end QuantumNAS flow: SuperCircuit training → evolutionary
/// co-search → from-scratch training → iterative pruning → measured
/// deployment.
///
/// # Examples
///
/// See the crate-level example and `examples/quickstart.rs`.
#[derive(Clone, Debug)]
pub struct QuantumNas {
    space: SpaceKind,
    device: Device,
    task: Task,
    config: QuantumNasConfig,
}

impl QuantumNas {
    /// Assembles a run for a design space, target device, and task.
    pub fn new(space: SpaceKind, device: Device, task: Task, config: QuantumNasConfig) -> Self {
        QuantumNas {
            space,
            device,
            task,
            config,
        }
    }

    /// The SuperCircuit this run searches within.
    pub fn supercircuit(&self) -> SuperCircuit {
        let space = DesignSpace::new(self.space);
        let blocks = self.config.blocks.unwrap_or(space.default_blocks());
        SuperCircuit::new(space, self.task.num_qubits(), blocks)
    }

    /// Executes all five stages and reports the results.
    ///
    /// # Panics
    ///
    /// Panics if the device has fewer qubits than the task needs.
    pub fn run(&self, seed: u64) -> Report {
        assert!(
            self.device.num_qubits() >= self.task.num_qubits(),
            "device too small for task"
        );
        let sc = self.supercircuit();

        // One runtime serves training, search, pruning, and deployment so
        // the transpile cache, checkpoint store, fault plan, and telemetry
        // span the whole run.
        let mut rt = SearchRuntime::new(self.config.runtime.clone());
        if let Some(faults) = &self.config.faults {
            rt = rt.with_fault_plan(faults.clone());
        }
        // Truncation telemetry covers this run only.
        qns_sim::reset_mps_stats();

        // Stage 1: SuperCircuit training.
        let mut super_cfg = self.config.super_train;
        super_cfg.seed = seed;
        let (shared, _) = train_supercircuit_rt(&sc, &self.task, &super_cfg, &rt);

        // Stage 2: evolutionary co-search with noise feedback.
        let estimator = rt.instrument_estimator(
            &Estimator::new(
                self.device.clone(),
                self.config.estimator,
                self.config.opt_level,
            )
            .with_backend(self.config.backend)
            .with_valid_cap(12),
        );
        let mut evo = self.config.evo.clone();
        evo.seed = seed ^ 0x5EA7C;
        evo.runtime = self.config.runtime.clone();
        let (search, front) = match &self.config.objectives {
            Some(objectives) => {
                let pareto = evolutionary_search_pareto_rt(
                    &sc,
                    &shared,
                    &self.task,
                    &estimator,
                    &evo,
                    objectives,
                    &[],
                    &rt,
                );
                let front = pareto.front.clone();
                (pareto.into_search_result(), front)
            }
            None => {
                let search = evolutionary_search_seeded_rt(
                    &sc,
                    &shared,
                    &self.task,
                    &estimator,
                    &evo,
                    &[],
                    &rt,
                );
                (search, Vec::new())
            }
        };

        // Stage 3: train the searched SubCircuit from scratch.
        let circuit = match &self.task {
            Task::Qml { encoder, .. } => sc.build(&search.best.config, Some(encoder)),
            Task::Vqe { .. } => sc.build(&search.best.config, None),
        };
        let mut train_cfg = self.config.train;
        train_cfg.seed = seed ^ 0x7A11;
        let (params, _) = train_task(&circuit, &self.task, &train_cfg, None);
        let (trained_loss, _) = eval_task(&circuit, &params, &self.task, Split::Valid);
        let n_params = circuit.referenced_train_indices().len();

        let layout = search.best.layout();
        let accuracy_before_prune = if self.task.is_qml() {
            estimator.test_accuracy(
                &circuit,
                &params,
                &self.task,
                &layout,
                self.config.n_test,
                self.config.measure,
            )
        } else {
            f64::NAN
        };

        // Stage 4: iterative pruning + finetuning.
        let (final_circuit, final_params, pruned_ratio) = match &self.config.prune {
            Some(prune_cfg) => {
                let mut cfg = *prune_cfg;
                cfg.seed = seed ^ 0x9121;
                let result = iterative_prune_rt(&circuit, &params, &self.task, &cfg, &rt);
                (result.circuit, result.params, result.pruned_ratio)
            }
            None => (circuit.clone(), params.clone(), 0.0),
        };

        // Stage 5: compile and "deploy" on the noisy device model.
        let (final_accuracy, final_energy) = if self.task.is_qml() {
            let acc = estimator.test_accuracy(
                &final_circuit,
                &final_params,
                &self.task,
                &layout,
                self.config.n_test,
                self.config.measure,
            );
            (acc, f64::NAN)
        } else {
            let energy = match &self.task {
                Task::Vqe { hamiltonian, .. } => estimator.vqe_energy_measured(
                    &final_circuit,
                    &final_params,
                    hamiltonian,
                    &layout,
                    self.config.measure,
                ),
                _ => unreachable!(),
            };
            (f64::NAN, energy)
        };

        // Mirror MPS truncation telemetry into the runtime summary so
        // `--stats` audits how much Schmidt weight the run discarded.
        let mps = qns_sim::mps_stats();
        if mps.max_bond_seen > 0 {
            let m = rt.metrics();
            m.incr(counters::MPS_TRUNCATIONS, mps.truncation_events);
            m.incr(counters::MPS_TRUNC_WEIGHT_PICO, mps.truncated_weight_pico);
            m.incr(counters::MPS_MAX_BOND, mps.max_bond_seen);
        }

        Report {
            gene: search.best,
            search_score: search.best_score,
            trained_loss,
            accuracy_before_prune,
            final_accuracy,
            final_energy,
            pruned_ratio,
            n_params,
            final_circuit,
            final_params,
            search_evaluations: search.evaluations,
            search_memo_hits: search.memo_hits,
            search_proxy_evals: search.proxy_evals,
            search_proxy_escalations: search.proxy_escalations,
            search_proxy_dedup_hits: search.proxy_dedup_hits,
            front,
            runtime_summary: rt.metrics().summary(),
        }
    }

    /// The task this run targets.
    pub fn task(&self) -> &Task {
        &self.task
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_pipeline_runs_end_to_end_qml() {
        let task = Task::qml_digits(&[1, 8], 20, 4, 9);
        let mut cfg = QuantumNasConfig::fast();
        cfg.super_train.steps = 20;
        cfg.evo = EvoConfig {
            iterations: 3,
            population: 6,
            parents: 2,
            mutations: 2,
            crossovers: 2,
            ..EvoConfig::fast(0)
        };
        cfg.train.epochs = 4;
        cfg.n_test = 20;
        cfg.prune = Some(PruneConfig {
            final_ratio: 0.2,
            steps: 1,
            finetune_epochs: 1,
            ..Default::default()
        });
        let nas = QuantumNas::new(SpaceKind::U3Cu3, Device::yorktown(), task, cfg);
        let report = nas.run(1);
        assert!((0.0..=1.0).contains(&report.final_accuracy));
        assert!(report.trained_loss.is_finite());
        assert!(report.n_params > 0);
        assert!(report.pruned_ratio > 0.0);
        assert_eq!(report.gene.layout.len(), 4);
        assert_eq!(report.search_evaluations + report.search_memo_hits, 3 * 6);
        assert!(report.runtime_summary.contains("evaluations"));
    }

    #[test]
    fn fast_pipeline_runs_end_to_end_vqe() {
        let mol = qns_chem::Molecule::h2();
        let task = Task::vqe(&mol);
        let mut cfg = QuantumNasConfig::fast();
        cfg.super_train.steps = 30;
        cfg.evo = EvoConfig {
            iterations: 3,
            population: 6,
            parents: 2,
            mutations: 2,
            crossovers: 2,
            ..EvoConfig::fast(0)
        };
        cfg.train = TrainConfig {
            epochs: 120,
            lr: 0.05,
            ..Default::default()
        };
        cfg.prune = None;
        let nas = QuantumNas::new(SpaceKind::U3Cu3, Device::santiago(), task, cfg);
        let report = nas.run(2);
        assert!(report.final_energy.is_finite());
        // Should find a state well below zero (exact is about -1.85).
        assert!(report.final_energy < -1.0, "energy {}", report.final_energy);
    }
}
