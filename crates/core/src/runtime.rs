//! Search-runtime integration: gene hashing, the score memo, and batch
//! candidate evaluation on top of [`qns_runtime`]'s engine/cache/telemetry
//! layers.
//!
//! Every search-style workload (evolutionary co-search, random search,
//! iterative pruning, the pipeline) funnels candidate evaluation through
//! [`SearchRuntime::score_batch`], which provides:
//!
//! - **parallel fan-out** over a scoped worker pool (work stealing,
//!   deterministic in-order collection, panic isolation to `+inf`),
//! - **gene-level memoization** so duplicate genes produced by
//!   crossover/mutation are never re-simulated,
//! - **telemetry** — evaluation counters, per-generation events, and
//!   transpile/simulate wall-time histograms via the shared [`Metrics`]
//!   registry.

use crate::checkpoint::{BackendConfig, CheckpointOptions};
use crate::{Estimator, EstimatorKind, Gene, SubConfig};
use qns_noise::Device;
use qns_runtime::{
    counters, timers, ByteWriter, CacheKey, CheckpointStore, Checkpointable, EvalEngine, FaultPlan,
    Metrics, ShardedCache, StructuralHasher, Workers, FAULT_MARKER,
};
use qns_transpile::{Layout, Transpiled};
use qns_verify::{VerifyLevel, PANIC_MARKER};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// User-facing runtime knobs (the CLI's `--workers` / `--no-cache` /
/// `--verify` / `--checkpoint-dir`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Worker threads for candidate evaluation; `0` = one per core.
    pub workers: usize,
    /// Enables the transpile cache and gene-score memo.
    pub cache: bool,
    /// Per-stage transpiler contract checking for every instrumented
    /// estimator ([`VerifyLevel::Off`] by default).
    pub verify: VerifyLevel,
    /// Crash-safe snapshotting of the search/train/prune loops
    /// (`None` = disabled, the default).
    pub checkpoint: Option<CheckpointOptions>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            workers: 0,
            cache: true,
            verify: VerifyLevel::Off,
            checkpoint: None,
        }
    }
}

impl RuntimeOptions {
    /// The sequential reference configuration (one worker, no caching) —
    /// bit-identical to the historical per-gene loop.
    pub fn sequential_uncached() -> Self {
        RuntimeOptions {
            workers: 1,
            cache: false,
            verify: VerifyLevel::Off,
            checkpoint: None,
        }
    }
}

/// The outcome of one batch evaluation.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Scores in input order (`+inf` for panicked candidates).
    pub scores: Vec<f64>,
    /// Real (non-memoized) evaluations this batch.
    pub evaluated: usize,
    /// Candidates answered without a fresh evaluation: score-memo hits
    /// plus in-batch duplicates. `evaluated + memo_hits == scores.len()`
    /// always holds, so the search budget stays comparable across cache
    /// settings.
    pub memo_hits: usize,
    /// Wall time of the whole batch.
    pub elapsed: Duration,
    /// `(batch index, message)` for every fresh evaluation that failed.
    /// Verification contract violations carry the `qns-verify:` marker and
    /// are counted separately from generic worker panics; either way the
    /// corresponding score slot holds `+inf`.
    pub errors: Vec<(usize, String)>,
}

/// The per-search evaluation runtime: engine + caches + telemetry.
///
/// One instance serves one search context (fixed SuperCircuit, shared
/// parameters, task, estimator). The score memo keys on the gene *and* a
/// caller-provided context digest, so a runtime reused across stages
/// (e.g. under noise drift, where the device changes) stays correct.
///
/// # Examples
///
/// ```no_run
/// use quantumnas::{RuntimeOptions, SearchRuntime};
///
/// let rt = SearchRuntime::new(RuntimeOptions::default());
/// println!("{}", rt.metrics().summary());
/// ```
#[derive(Clone, Debug)]
pub struct SearchRuntime {
    engine: EvalEngine,
    options: RuntimeOptions,
    score_memo: Option<Arc<ShardedCache<f64>>>,
    transpile_cache: Option<Arc<ShardedCache<Transpiled>>>,
    metrics: Arc<Metrics>,
    checkpoints: Option<Arc<CheckpointStore>>,
    faults: Option<Arc<FaultPlan>>,
}

impl SearchRuntime {
    /// A runtime with the given options and a fresh metrics registry.
    ///
    /// # Panics
    ///
    /// Panics when a checkpoint directory is configured but cannot be
    /// created — checkpointing that silently does nothing would defeat
    /// its purpose.
    pub fn new(options: RuntimeOptions) -> Self {
        let checkpoints = options.checkpoint.as_ref().map(|ck| {
            let store = CheckpointStore::open(&ck.dir)
                .unwrap_or_else(|e| panic!("cannot open checkpoint dir {}: {e}", ck.dir.display()));
            Arc::new(store)
        });
        SearchRuntime {
            engine: EvalEngine::new(Workers::from(options.workers)),
            score_memo: options.cache.then(|| Arc::new(ShardedCache::new(32))),
            transpile_cache: options.cache.then(|| Arc::new(ShardedCache::new(32))),
            metrics: Arc::new(Metrics::new()),
            checkpoints,
            faults: None,
            options,
        }
    }

    /// The options this runtime was built with.
    pub fn options(&self) -> &RuntimeOptions {
        &self.options
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The underlying evaluation engine.
    pub fn engine(&self) -> &EvalEngine {
        &self.engine
    }

    /// The transpile cache, when caching is enabled.
    pub fn transpile_cache(&self) -> Option<&Arc<ShardedCache<Transpiled>>> {
        self.transpile_cache.as_ref()
    }

    /// A copy of `estimator` wired into this runtime: compiles go through
    /// the shared transpile cache, wall time lands in the metrics registry,
    /// and the runtime's [`RuntimeOptions::verify`] level applies to every
    /// fresh transpile.
    pub fn instrument_estimator(&self, estimator: &Estimator) -> Estimator {
        let mut est = estimator.clone().with_verify(self.options.verify);
        est.attach_runtime(self.transpile_cache.clone(), Some(self.metrics.clone()));
        est
    }

    /// Attaches a fault-injection schedule: evaluation faults fire inside
    /// the engine's panic-isolation scope, boundary crashes fire at
    /// [`SearchRuntime::fault_boundary`] call sites, torn writes corrupt
    /// the scheduled snapshot save.
    pub fn with_fault_plan(mut self, faults: Arc<FaultPlan>) -> Self {
        self.engine = self.engine.with_fault_plan(faults.clone());
        self.faults = Some(faults);
        self
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Loop-boundary hook for the fault plan: a scheduled boundary crash
    /// panics here, *outside* any isolation scope, simulating a process
    /// kill between checkpoints. A no-op without a plan.
    pub fn fault_boundary(&self) {
        if let Some(plan) = &self.faults {
            plan.at_boundary();
        }
    }

    /// Whether a snapshot should be written after `completed` of `total`
    /// loop units. Always saves the final boundary; otherwise every
    /// [`CheckpointOptions::every`] units. `false` when checkpointing is
    /// disabled.
    pub fn should_checkpoint(&self, completed: usize, total: usize) -> bool {
        match (&self.checkpoints, &self.options.checkpoint) {
            (Some(_), Some(ck)) => completed == total || completed.is_multiple_of(ck.every.max(1)),
            _ => false,
        }
    }

    /// Writes a snapshot (counted in telemetry). An I/O failure is
    /// counted and swallowed: losing one checkpoint must not kill a run
    /// that would otherwise finish.
    pub fn save_checkpoint<T: Checkpointable>(&self, state: &T) {
        let Some(store) = &self.checkpoints else {
            return;
        };
        match store.save(state, self.faults.as_deref()) {
            Ok(_) => self.metrics.incr(counters::CHECKPOINT_WRITES, 1),
            Err(e) => {
                self.metrics.incr(counters::CHECKPOINT_IO_ERRORS, 1);
                eprintln!("warning: checkpoint save failed: {e}");
            }
        }
    }

    /// Loads the latest valid snapshot when resuming is enabled. Corrupt
    /// snapshots skipped on the way are counted in telemetry; the caller
    /// must still validate the snapshot's context digest against the
    /// current run and call [`SearchRuntime::note_resumed`] or
    /// [`SearchRuntime::note_checkpoint_rejected`] accordingly.
    pub fn load_checkpoint<T: Checkpointable>(&self) -> Option<T> {
        let resume = self.options.checkpoint.as_ref().is_some_and(|ck| ck.resume);
        if !resume {
            return None;
        }
        let store = self.checkpoints.as_ref()?;
        let (state, corrupt) = store.load_latest::<T>();
        if corrupt > 0 {
            self.metrics
                .incr(counters::CHECKPOINT_CORRUPT, corrupt as u64);
        }
        state
    }

    /// Records a successful resume from a snapshot.
    pub fn note_resumed(&self) {
        self.metrics.incr(counters::CHECKPOINT_RESUMES, 1);
    }

    /// Records a snapshot rejected at resume (stale context: the run's
    /// configuration no longer matches the one that wrote it).
    pub fn note_checkpoint_rejected(&self) {
        self.metrics.incr(counters::CHECKPOINT_REJECTED, 1);
    }

    /// A deterministic dump of the score memo (sorted by key), for
    /// inclusion in search snapshots. Empty when caching is off.
    pub fn memo_entries(&self) -> Vec<(CacheKey, f64)> {
        self.score_memo
            .as_ref()
            .map(|memo| memo.entries())
            .unwrap_or_default()
    }

    /// Re-seeds the score memo from a snapshot dump. A no-op when caching
    /// is off (the resumed run simply re-evaluates).
    pub fn restore_memo(&self, entries: &[(CacheKey, f64)]) {
        if let Some(memo) = &self.score_memo {
            for &(k, v) in entries {
                memo.insert(k, v);
            }
        }
    }

    /// Runs `f` over `items` on the engine with the same panic isolation
    /// and nested-parallelism guard as [`SearchRuntime::score_batch`], but
    /// without memoization or evaluation accounting — the shape proxy
    /// feature computation needs (cheap per-candidate work, cached by the
    /// caller under its own digests).
    pub fn map_isolated<T, U>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> U + Sync,
    ) -> Vec<Result<U, String>>
    where
        T: Sync,
        U: Send + Sync,
    {
        self.engine.try_run(items, |item| {
            if self.engine.workers() > 1 {
                qns_sim::sequential_scope(|| f(item))
            } else {
                f(item)
            }
        })
    }

    /// Scores a batch of genes through the engine, memoizing by
    /// `(context, gene)` digest when caching is enabled.
    ///
    /// `score` must be a pure function of its gene given the search
    /// context — the memo returns the first computed value for any
    /// duplicate. Panics inside `score` poison that gene to `+inf`.
    pub fn score_batch(
        &self,
        context: CacheKey,
        genes: &[Gene],
        score: impl Fn(&Gene) -> f64 + Sync,
    ) -> BatchOutcome {
        // lint:allow(wallclock) — batch wall time is telemetry only, never a score input
        let start = Instant::now();
        let run_one = |gene: &Gene| -> f64 {
            self.metrics.incr(counters::EVALUATIONS, 1);
            if self.engine.workers() > 1 {
                // Outer parallelism owns the cores; nested per-sample
                // fan-out inside the simulator would oversubscribe.
                qns_sim::sequential_scope(|| score(gene))
            } else {
                score(gene)
            }
        };

        let outcome = match &self.score_memo {
            None => {
                let results = self.engine.try_run(genes, run_one);
                let mut scores = Vec::with_capacity(results.len());
                let mut errors = Vec::new();
                for (i, r) in results.into_iter().enumerate() {
                    match r {
                        Ok(s) => scores.push(s),
                        Err(msg) => {
                            scores.push(f64::INFINITY);
                            errors.push((i, msg));
                        }
                    }
                }
                BatchOutcome {
                    evaluated: genes.len(),
                    memo_hits: 0,
                    elapsed: start.elapsed(),
                    scores,
                    errors,
                }
            }
            Some(memo) => {
                let keys: Vec<CacheKey> = genes
                    .iter()
                    .map(|g| {
                        let mut h = StructuralHasher::new();
                        h.write_u64(context.lo);
                        h.write_u64(context.hi);
                        hash_gene(&mut h, g);
                        h.finish()
                    })
                    .collect();
                let mut scores: Vec<Option<f64>> =
                    keys.iter().map(|&k| memo.get(k).map(|v| *v)).collect();
                // Deduplicate the misses so one generation full of clones
                // costs a single evaluation.
                let mut fresh: Vec<usize> = Vec::new();
                for i in 0..genes.len() {
                    if scores[i].is_none() && !fresh.iter().any(|&j| keys[j] == keys[i]) {
                        fresh.push(i);
                    }
                }
                let fresh_genes: Vec<&Gene> = fresh.iter().map(|&i| &genes[i]).collect();
                let fresh_results = self.engine.try_run(&fresh_genes, |g| run_one(g));
                let fresh_scores: Vec<f64> = fresh_results
                    .iter()
                    .map(|r| *r.as_ref().unwrap_or(&f64::INFINITY))
                    .collect();
                // Only successful evaluations enter the memo: a poisoned
                // +inf from a transient fault must not outlive the batch
                // and mis-score the gene forever.
                for (&i, r) in fresh.iter().zip(&fresh_results) {
                    if let Ok(s) = r {
                        memo.insert(keys[i], *s);
                    }
                }
                let mut errors = Vec::new();
                for i in 0..genes.len() {
                    if scores[i].is_none() {
                        let j = fresh
                            .iter()
                            .position(|&f| keys[f] == keys[i])
                            .expect("every missed key has a fresh representative");
                        scores[i] = Some(fresh_scores[j]);
                        if let Err(msg) = &fresh_results[j] {
                            errors.push((i, msg.clone()));
                        }
                    }
                }
                BatchOutcome {
                    evaluated: fresh.len(),
                    memo_hits: genes.len() - fresh.len(),
                    elapsed: start.elapsed(),
                    scores: scores
                        .into_iter()
                        .map(|s| s.expect("all slots filled"))
                        .collect(),
                    errors,
                }
            }
        };

        // Contract violations carry the verifier's marker, injected
        // faults the fault plan's; everything else is a generic worker
        // panic. All poison their slot to +inf, but they land in distinct
        // telemetry counters.
        let violations = outcome
            .errors
            .iter()
            .filter(|(_, msg)| msg.contains(PANIC_MARKER))
            .count();
        let injected = outcome
            .errors
            .iter()
            .filter(|(_, msg)| msg.contains(FAULT_MARKER))
            .count();
        let panics = outcome.errors.len() - violations - injected;
        if violations > 0 {
            self.metrics
                .incr(counters::VERIFY_VIOLATIONS, violations as u64);
        }
        if injected > 0 {
            self.metrics
                .incr(counters::INJECTED_FAULTS, injected as u64);
        }
        if panics > 0 {
            self.metrics.incr(counters::PANICS, panics as u64);
        }
        self.metrics
            .incr(counters::MEMO_HITS, outcome.memo_hits as u64);
        self.metrics
            .histogram(timers::BATCH)
            .record(outcome.elapsed);
        outcome
    }
}

/// Feeds a gene's full identity (architecture + mapping).
pub(crate) fn hash_gene(h: &mut StructuralHasher, gene: &Gene) {
    hash_subconfig(h, &gene.config);
    h.write_usize(gene.layout.len());
    for &p in &gene.layout {
        h.write_usize(p);
    }
}

/// The canonical digest of a gene alone (population dedup).
pub fn gene_key(gene: &Gene) -> CacheKey {
    let mut h = StructuralHasher::new();
    hash_gene(&mut h, gene);
    h.finish()
}

fn hash_subconfig(h: &mut StructuralHasher, cfg: &SubConfig) {
    h.write_usize(cfg.n_blocks);
    h.write_usize(cfg.widths.len());
    for block in &cfg.widths {
        h.write_usize(block.len());
        for &w in block {
            h.write_usize(w);
        }
    }
}

/// Feeds everything about a device that affects compilation or noise:
/// name, size, coupling map, calibration errors, and gate durations.
/// Distinguishes e.g. `yorktown` from `yorktown.scaled_errors(3.0)`.
pub fn hash_device(h: &mut StructuralHasher, device: &Device) {
    h.write_str(device.name());
    h.write_usize(device.num_qubits());
    h.write_usize(device.edges().len());
    for &(a, b) in device.edges() {
        h.write_usize(a);
        h.write_usize(b);
        h.write_f64(device.err_2q(a, b));
    }
    for q in 0..device.num_qubits() {
        let calib = device.qubit(q);
        h.write_f64(device.err_1q(q));
        h.write_f64(calib.t1_ns);
        h.write_f64(calib.t2_ns);
        h.write_f64(calib.readout_p01);
        h.write_f64(calib.readout_p10);
    }
    h.write_f64(device.dur_1q_ns());
    h.write_f64(device.dur_2q_ns());
    h.write_f64(device.dur_readout_ns());
}

/// Feeds the estimator mode (kind tag plus trajectory settings).
pub fn hash_estimator_kind(h: &mut StructuralHasher, kind: EstimatorKind) {
    match kind {
        EstimatorKind::Noiseless => h.write_u64(0),
        EstimatorKind::NoisySim(cfg) => {
            h.write_u64(1);
            h.write_usize(cfg.trajectories);
            h.write_u64(cfg.seed);
            h.write_u64(cfg.readout as u64);
        }
        EstimatorKind::SuccessRate => h.write_u64(2),
        EstimatorKind::DensitySim => h.write_u64(3),
    }
}

/// Feeds a logical circuit's structure: every op's gate kind, qubits, and
/// parameter bindings.
pub fn hash_circuit(h: &mut StructuralHasher, circuit: &qns_circuit::Circuit) {
    h.write_usize(circuit.num_qubits());
    h.write_usize(circuit.num_ops());
    for op in circuit.iter() {
        h.write_u64(op.kind as u64);
        for &q in &op.qubits[..op.num_qubits()] {
            h.write_usize(q);
        }
        h.write_usize(op.params.len());
        for p in &op.params {
            hash_param(h, p);
        }
    }
}

fn hash_param(h: &mut StructuralHasher, p: &qns_circuit::Param) {
    use qns_circuit::Param;
    match *p {
        Param::Fixed(v) => {
            h.write_u64(0);
            h.write_f64(v);
        }
        Param::Input(i) => {
            h.write_u64(1);
            h.write_usize(i);
        }
        Param::Train(i) => {
            h.write_u64(2);
            h.write_usize(i);
        }
        Param::AffineInput {
            index,
            scale,
            offset,
        } => {
            h.write_u64(3);
            h.write_usize(index);
            h.write_f64(scale);
            h.write_f64(offset);
        }
        Param::AffineTrain {
            index,
            scale,
            offset,
        } => {
            h.write_u64(4);
            h.write_usize(index);
            h.write_f64(scale);
            h.write_f64(offset);
        }
    }
}

/// The content digest keying one transpile: circuit structure, device
/// fingerprint, layout, and optimization level. Distinct devices or opt
/// levels can never share an entry.
pub fn transpile_key(
    circuit: &qns_circuit::Circuit,
    device: &Device,
    layout: &Layout,
    opt_level: u8,
) -> CacheKey {
    let mut h = StructuralHasher::new();
    hash_circuit(&mut h, circuit);
    hash_device(&mut h, device);
    let phys = layout.as_slice();
    h.write_usize(phys.len());
    for &p in phys {
        h.write_usize(p);
    }
    h.write_u64(opt_level as u64);
    h.finish()
}

/// The search-context digest for the score memo: everything besides the
/// gene that determines a score (device, estimator mode, opt level,
/// validation cap, task identity, parameter budget, shared parameters).
pub fn search_context_key(
    estimator: &Estimator,
    task: &crate::Task,
    shared_params: &[f64],
    max_params: Option<usize>,
) -> CacheKey {
    let mut h = StructuralHasher::new();
    hash_device(&mut h, estimator.device());
    hash_estimator_kind(&mut h, estimator.kind());
    // The backend (and its truncation policy) is part of the scoring
    // context: exact and MPS-truncated scores must never share a memo,
    // and an mps↔statevec resume must be rejected as stale.
    let mut bw = ByteWriter::new();
    BackendConfig::of(estimator.backend()).encode(&mut bw);
    h.write_bytes(&bw.into_bytes());
    h.write_u64(estimator.opt_level() as u64);
    h.write_usize(estimator.valid_cap());
    h.write_str(task.name());
    h.write_usize(task.num_qubits());
    match max_params {
        Some(m) => {
            h.write_u64(1);
            h.write_usize(m);
        }
        None => h.write_u64(0),
    }
    h.write_usize(shared_params.len());
    for &p in shared_params {
        h.write_f64(p);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_noise::TrajectoryConfig;

    fn gene(widths: Vec<Vec<usize>>, layout: Vec<usize>) -> Gene {
        Gene {
            config: SubConfig {
                n_blocks: widths.len(),
                widths,
            },
            layout,
        }
    }

    #[test]
    fn gene_keys_separate_config_and_layout() {
        let a = gene(vec![vec![2, 3]], vec![0, 1]);
        let b = gene(vec![vec![2, 3]], vec![1, 0]);
        let c = gene(vec![vec![3, 2]], vec![0, 1]);
        assert_eq!(gene_key(&a), gene_key(&a.clone()));
        assert_ne!(gene_key(&a), gene_key(&b));
        assert_ne!(gene_key(&a), gene_key(&c));
        assert_ne!(gene_key(&b), gene_key(&c));
    }

    #[test]
    fn device_fingerprints_distinguish_scaled_errors() {
        let base = Device::yorktown();
        let scaled = base.scaled_errors(3.0);
        let (mut h1, mut h2, mut h3) = (
            StructuralHasher::new(),
            StructuralHasher::new(),
            StructuralHasher::new(),
        );
        hash_device(&mut h1, &base);
        hash_device(&mut h2, &scaled);
        hash_device(&mut h3, &Device::yorktown());
        assert_eq!(h1.finish(), h3.finish());
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn estimator_kind_digests_differ() {
        let kinds = [
            EstimatorKind::Noiseless,
            EstimatorKind::SuccessRate,
            EstimatorKind::DensitySim,
            EstimatorKind::NoisySim(TrajectoryConfig::default()),
        ];
        let mut keys: Vec<CacheKey> = kinds
            .iter()
            .map(|&k| {
                let mut h = StructuralHasher::new();
                hash_estimator_kind(&mut h, k);
                h.finish()
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), kinds.len());
    }

    #[test]
    fn context_key_separates_backends() {
        // Statevec and MPS scores — or two different truncation policies —
        // must never share a memo or accept each other's checkpoints.
        use qns_sim::{MpsConfig, SimBackend};
        let task = crate::Task::vqe(&qns_chem::Molecule::h2());
        let backends = [
            SimBackend::Fast,
            SimBackend::Reference,
            SimBackend::Mps(MpsConfig::exact()),
            SimBackend::Mps(MpsConfig::default()),
            SimBackend::Mps(MpsConfig {
                max_bond: 8,
                ..Default::default()
            }),
        ];
        let mut keys: Vec<CacheKey> = backends
            .iter()
            .map(|&b| {
                let est =
                    Estimator::new(Device::belem(), EstimatorKind::Noiseless, 2).with_backend(b);
                search_context_key(&est, &task, &[], None)
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), backends.len(), "backend configs collided");
        // Same backend twice: stable.
        let est = Estimator::new(Device::belem(), EstimatorKind::Noiseless, 2)
            .with_backend(SimBackend::Mps(MpsConfig::default()));
        assert_eq!(
            search_context_key(&est, &task, &[], None),
            search_context_key(&est, &task, &[], None)
        );
    }

    #[test]
    fn score_batch_memoizes_duplicates_and_isolates_panics() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let rt = SearchRuntime::new(RuntimeOptions {
            workers: 2,
            cache: true,
            ..Default::default()
        });
        let g1 = gene(vec![vec![1, 1]], vec![0, 1]);
        let g2 = gene(vec![vec![2, 2]], vec![0, 1]);
        let bad = gene(vec![vec![3, 3]], vec![0, 1]);
        let batch = vec![g1.clone(), g2.clone(), g1.clone(), bad.clone()];
        let calls = AtomicUsize::new(0);
        let ctx = CacheKey { lo: 1, hi: 2 };
        let out = rt.score_batch(ctx, &batch, |g| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert!(g.config.widths[0][0] != 3, "synthetic panic");
            g.config.widths[0][0] as f64
        });
        assert_eq!(out.scores[0], 1.0);
        assert_eq!(out.scores[1], 2.0);
        assert_eq!(out.scores[2], 1.0);
        assert!(out.scores[3].is_infinite());
        assert_eq!(out.evaluated, 3, "duplicate g1 deduped within batch");
        assert_eq!(out.memo_hits, 1, "the in-batch duplicate counts as a hit");
        assert_eq!(calls.load(Ordering::Relaxed), 3);

        // Second batch: everything but a fresh gene is memoized.
        let out2 = rt.score_batch(ctx, &[g1, g2, gene(vec![vec![4]], vec![0, 1])], |g| {
            g.config.widths[0][0] as f64
        });
        assert_eq!(out2.memo_hits, 2);
        assert_eq!(out2.evaluated, 1);
        assert_eq!(out2.scores, vec![1.0, 2.0, 4.0]);
        assert_eq!(rt.metrics().counter(qns_runtime::counters::PANICS), 1);
    }

    #[test]
    fn context_digest_partitions_the_memo() {
        let rt = SearchRuntime::new(RuntimeOptions {
            workers: 1,
            cache: true,
            ..Default::default()
        });
        let g = gene(vec![vec![1]], vec![0]);
        let a = rt.score_batch(CacheKey { lo: 0, hi: 0 }, std::slice::from_ref(&g), |_| 1.0);
        let b = rt.score_batch(CacheKey { lo: 9, hi: 9 }, &[g], |_| 2.0);
        assert_eq!(a.scores, vec![1.0]);
        assert_eq!(b.scores, vec![2.0], "different context must not share");
    }
}
