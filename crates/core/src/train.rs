//! Training loops: from-scratch SubCircuit training and gate-sharing
//! SuperCircuit training.

use crate::checkpoint::TrainCheckpoint;
use crate::{Readout, Sampler, SamplerConfig, SubConfig, SuperCircuit, Task};
use qns_circuit::Circuit;
use qns_data::Dataset;
use qns_ml::{accuracy, cross_entropy_grad, nll_loss, Adam, AdamConfig, CosineSchedule};
use qns_runtime::StructuralHasher;
use qns_sim::{
    adjoint_gradient, adjoint_gradient_batch, parallel_map, run, DiagObservable, ExecMode,
    Observable, SimPlan, StateBatch, DEFAULT_BATCH_LANES, DEFAULT_FUSION_LEVEL,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hyperparameters for from-scratch training (the paper: Adam, LR 5e-3,
/// weight decay 1e-4, cosine schedule; 200 epochs / 1000 VQE steps at
/// batch 256 — scaled down by default here, raise for full runs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainConfig {
    /// Epochs (QML) or steps (VQE).
    pub epochs: usize,
    /// Minibatch size for QML.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f64,
    /// Linear warmup steps at the schedule start.
    pub warmup_steps: usize,
    /// RNG seed (initialization + shuffling).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            lr: 0.02,
            warmup_steps: 0,
            seed: 0,
        }
    }
}

/// Loss and gradient of one QML sample.
///
/// Forward: per-qubit `<Z>` → readout logits → softmax NLL. Backward: the
/// logit gradient pulls back to a weighted-Z observable, so a single
/// adjoint pass differentiates the whole loss.
///
/// Returns `(loss, gradient over the circuit's trainable parameters)`.
pub fn qml_sample_grad(
    circuit: &Circuit,
    params: &[f64],
    input: &[f64],
    label: usize,
    readout: &Readout,
) -> (f64, Vec<f64>) {
    let state = run(circuit, params, input, ExecMode::Static);
    let expectations = state.expect_z_all();
    let logits = readout.logits(&expectations);
    let loss = nll_loss(&logits, label);
    let dlogits = cross_entropy_grad(&logits, label);
    let weights = readout.weights_from_logit_grad(&dlogits);
    let obs = DiagObservable::new(weights);
    let (_, grad) = adjoint_gradient(circuit, params, input, &obs);
    (loss, grad)
}

/// Noise-free loss and accuracy of a QML circuit over a dataset.
pub(crate) fn qml_eval(
    circuit: &Circuit,
    params: &[f64],
    data: &Dataset,
    readout: &Readout,
) -> (f64, f64) {
    if data.features.is_empty() {
        return (0.0, accuracy(&[], &data.labels));
    }
    // Compile the fusion plan once, then replay whole lane-batches of
    // samples at a time: shared blocks sweep all lanes in one pass and only
    // the input-encoding steps re-materialize per lane.
    let plan = SimPlan::compile(circuit, DEFAULT_FUSION_LEVEL);
    let base = plan.materialize(circuit, params, &data.features[0]);
    let chunks: Vec<&[Vec<f64>]> = data.features.chunks(DEFAULT_BATCH_LANES).collect();
    let chunk_logits: Vec<Vec<Vec<f64>>> = parallel_map(&chunks, |chunk| {
        let inputs: Vec<&[f64]> = chunk.iter().map(|s| s.as_slice()).collect();
        let mut batch = StateBatch::zero_state(circuit.num_qubits(), inputs.len());
        plan.replay_batch_into(circuit, &base, params, &inputs, &mut batch);
        batch
            .expect_z_all_lanes()
            .iter()
            .map(|ez| readout.logits(ez))
            .collect()
    });
    let logits: Vec<Vec<f64>> = chunk_logits.into_iter().flatten().collect();
    let loss: f64 = logits
        .iter()
        .zip(&data.labels)
        .map(|(l, &y)| nll_loss(l, y))
        .sum::<f64>()
        / data.num_samples().max(1) as f64;
    let acc = accuracy(&logits, &data.labels);
    (loss, acc)
}

/// Average loss and gradient over a QML batch (thread-parallel).
fn qml_batch_grad(
    circuit: &Circuit,
    params: &[f64],
    data: &Dataset,
    batch: &[usize],
    readout: &Readout,
) -> (f64, Vec<f64>) {
    if batch.is_empty() {
        return (0.0, vec![0.0; circuit.num_train_params()]);
    }
    // The whole minibatch runs in lane-batches: one batched forward sweep
    // produces every lane's expectations (and thus loss), and one batched
    // adjoint backward sweep accumulates the summed gradient — each gate is
    // applied to all lanes at once instead of once per sample.
    let chunks: Vec<&[usize]> = batch.chunks(DEFAULT_BATCH_LANES).collect();
    let per_chunk: Vec<(Vec<f64>, Vec<f64>)> = parallel_map(&chunks, |chunk| {
        let inputs: Vec<&[f64]> = chunk.iter().map(|&i| data.features[i].as_slice()).collect();
        adjoint_gradient_batch(circuit, params, &inputs, |lane, ez| {
            let label = data.labels[chunk[lane]];
            let logits = readout.logits(ez);
            let loss = nll_loss(&logits, label);
            let dlogits = cross_entropy_grad(&logits, label);
            (loss, readout.weights_from_logit_grad(&dlogits))
        })
    });
    let n = batch.len() as f64;
    let mut grad = vec![0.0; circuit.num_train_params()];
    let mut loss = 0.0;
    for (losses, g) in per_chunk {
        loss += losses.iter().sum::<f64>();
        for (acc, gi) in grad.iter_mut().zip(g) {
            *acc += gi;
        }
    }
    for g in &mut grad {
        *g /= n;
    }
    (loss / n, grad)
}

/// Seeded parameter initialization in `[-0.3, 0.3)`.
fn init_params(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1217);
    (0..n).map(|_| rng.gen_range(-0.3..0.3)).collect()
}

/// Trains a circuit from scratch on a task, returning `(parameters,
/// per-epoch training-loss history)`.
///
/// QML: minibatch SGD over the train split with Adam + cosine LR. VQE:
/// full-gradient energy minimization for `epochs` steps. Pass
/// `initial` to resume (finetuning) instead of random initialization.
///
/// # Panics
///
/// Panics if the task width differs from the circuit width.
pub fn train_task(
    circuit: &Circuit,
    task: &Task,
    config: &TrainConfig,
    initial: Option<Vec<f64>>,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(circuit.num_qubits(), task.num_qubits(), "width mismatch");
    let n_params = circuit.num_train_params();
    let mut params = initial.unwrap_or_else(|| init_params(n_params, config.seed));
    assert_eq!(params.len(), n_params, "parameter width mismatch");
    let mut opt = Adam::new(n_params, AdamConfig::default());
    let mut history = Vec::with_capacity(config.epochs);

    match task {
        Task::Qml {
            splits, readout, ..
        } => {
            let data = &splits.train;
            let steps_per_epoch = data.num_samples().div_ceil(config.batch_size).max(1);
            let schedule = CosineSchedule::new(
                config.lr,
                (config.epochs * steps_per_epoch).max(config.warmup_steps + 1),
                config.warmup_steps,
            );
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0xBA7C);
            let mut step = 0;
            for _ in 0..config.epochs {
                let mut idx: Vec<usize> = (0..data.num_samples()).collect();
                idx.shuffle(&mut rng);
                let mut epoch_loss = 0.0;
                for batch in idx.chunks(config.batch_size) {
                    let (loss, grad) = qml_batch_grad(circuit, &params, data, batch, readout);
                    opt.step(&mut params, &grad, schedule.lr(step));
                    epoch_loss += loss * batch.len() as f64;
                    step += 1;
                }
                history.push(epoch_loss / data.num_samples() as f64);
            }
        }
        Task::Vqe { hamiltonian, .. } => {
            let schedule = CosineSchedule::new(
                config.lr,
                config.epochs.max(config.warmup_steps + 1),
                config.warmup_steps,
            );
            for step in 0..config.epochs {
                let (energy, grad) = adjoint_gradient(circuit, &params, &[], hamiltonian);
                opt.step(&mut params, &grad, schedule.lr(step));
                history.push(energy);
            }
        }
    }
    (params, history)
}

/// Noise-free evaluation of a circuit+parameters on a task split.
///
/// Returns `(validation loss, validation accuracy)` for QML (accuracy 0
/// for VQE, loss = energy).
pub fn eval_task(circuit: &Circuit, params: &[f64], task: &Task, split: Split) -> (f64, f64) {
    match task {
        Task::Qml {
            splits, readout, ..
        } => {
            let data = match split {
                Split::Train => &splits.train,
                Split::Valid => &splits.valid,
                Split::Test => &splits.test,
            };
            qml_eval(circuit, params, data, readout)
        }
        Task::Vqe { hamiltonian, .. } => {
            let state = run(circuit, params, &[], ExecMode::Static);
            (hamiltonian.expect(&state), 0.0)
        }
    }
}

/// Which dataset split to evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// Training split.
    Train,
    /// Validation split.
    Valid,
    /// Test split.
    Test,
}

/// Hyperparameters for SuperCircuit training.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuperTrainConfig {
    /// Total sampling/update steps.
    pub steps: usize,
    /// Minibatch size per step (QML).
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f64,
    /// Linear warmup steps (the paper warms up SuperCircuit training).
    pub warmup_steps: usize,
    /// Sampler settings (progressive shrinking / restricted sampling).
    pub sampler: SamplerConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SuperTrainConfig {
    fn default() -> Self {
        SuperTrainConfig {
            steps: 300,
            batch_size: 16,
            lr: 0.02,
            warmup_steps: 20,
            sampler: SamplerConfig::default(),
            seed: 0,
        }
    }
}

/// Trains the gate-sharing SuperCircuit: each step samples a SubCircuit
/// (progressive shrinking + restricted sampling), computes its gradient on
/// a minibatch, and updates only the sampled subset of shared parameters.
///
/// Returns `(shared parameters, per-step loss history)`.
pub fn train_supercircuit(
    supercircuit: &SuperCircuit,
    task: &Task,
    config: &SuperTrainConfig,
) -> (Vec<f64>, Vec<f64>) {
    let rt = crate::SearchRuntime::new(crate::RuntimeOptions::default());
    train_supercircuit_rt(supercircuit, task, config, &rt)
}

/// [`train_supercircuit`] on a caller-owned [`crate::SearchRuntime`],
/// which adds crash safety: with checkpointing enabled the loop snapshots
/// its full state (parameters, Adam moments, both RNG stream positions,
/// sampler schedule) at step boundaries, and with `--resume` it continues
/// from the latest valid snapshot bitwise — the resumed run's final
/// parameters are exactly those of an uninterrupted run.
pub fn train_supercircuit_rt(
    supercircuit: &SuperCircuit,
    task: &Task,
    config: &SuperTrainConfig,
    rt: &crate::SearchRuntime,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(
        supercircuit.num_qubits(),
        task.num_qubits(),
        "width mismatch"
    );
    let n_params = supercircuit.num_params();
    let mut params = init_params(n_params, config.seed);
    let mut opt = Adam::new(n_params, AdamConfig::default());
    let schedule = CosineSchedule::new(
        config.lr,
        config.steps.max(config.warmup_steps + 1),
        config.warmup_steps,
    );
    let mut sampler_cfg = config.sampler;
    sampler_cfg.seed = config.seed ^ 0x5A5A;
    let mut sampler = Sampler::new(supercircuit, sampler_cfg);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0FE);
    let mut history = Vec::with_capacity(config.steps);
    let mut start_step = 0usize;

    // Everything that shapes the training trajectory enters the context
    // digest; a snapshot from any other configuration is rejected.
    let resume_context = {
        let mut h = StructuralHasher::new();
        h.write_str("supercircuit-train");
        h.write_u64(supercircuit.space().kind() as u64);
        h.write_usize(supercircuit.num_qubits());
        h.write_usize(supercircuit.num_blocks());
        h.write_usize(n_params);
        h.write_str(task.name());
        h.write_usize(task.num_qubits());
        h.write_usize(config.steps);
        h.write_usize(config.batch_size);
        h.write_f64(config.lr);
        h.write_usize(config.warmup_steps);
        h.write_u64(config.seed);
        h.write_usize(sampler_cfg.min_blocks);
        h.write_usize(sampler_cfg.shrink_start);
        h.write_usize(sampler_cfg.shrink_end);
        h.write_usize(sampler_cfg.max_layer_diff);
        h.write_u64(sampler_cfg.progressive as u64);
        h.write_u64(sampler_cfg.restricted as u64);
        h.write_u64(sampler_cfg.seed);
        h.finish()
    };
    if let Some(ck) = rt.load_checkpoint::<TrainCheckpoint>() {
        let compatible = ck.context == resume_context
            && ck.step <= config.steps
            && ck.params.len() == n_params
            && ck.opt_m.len() == n_params
            && ck.opt_v.len() == n_params;
        if compatible {
            start_step = ck.step;
            params = ck.params;
            opt.restore(ck.opt_m, ck.opt_v, ck.opt_t);
            history = ck.history;
            rng = StdRng::from_state(ck.rng);
            sampler.restore(ck.sampler_prev, ck.sampler_step, ck.sampler_rng);
            rt.note_resumed();
        } else {
            rt.note_checkpoint_rejected();
        }
    }

    for step in start_step..config.steps {
        let cfg = sampler.next_config();
        match task {
            Task::Qml {
                splits,
                encoder,
                readout,
                ..
            } => {
                let circuit = supercircuit.build(&cfg, Some(encoder));
                let data = &splits.train;
                let batch: Vec<usize> = (0..config.batch_size)
                    .map(|_| rng.gen_range(0..data.num_samples()))
                    .collect();
                let (loss, grad) = qml_batch_grad(&circuit, &params, data, &batch, readout);
                let active = circuit.referenced_train_indices();
                opt.step_masked(&mut params, &grad, schedule.lr(step), &active);
                history.push(loss);
            }
            Task::Vqe { hamiltonian, .. } => {
                let circuit = supercircuit.build(&cfg, None);
                let (energy, grad) = adjoint_gradient(&circuit, &params, &[], hamiltonian);
                let active = circuit.referenced_train_indices();
                opt.step_masked(&mut params, &grad, schedule.lr(step), &active);
                history.push(energy);
            }
        }

        if rt.should_checkpoint(step + 1, config.steps) {
            let (sampler_prev, sampler_step, sampler_rng) = sampler.state();
            let (m, v, t) = opt.state();
            rt.save_checkpoint(&TrainCheckpoint {
                context: resume_context,
                step: step + 1,
                params: params.clone(),
                opt_m: m.to_vec(),
                opt_v: v.to_vec(),
                opt_t: t,
                history: history.clone(),
                rng: rng.state(),
                sampler_prev,
                sampler_step,
                sampler_rng,
            });
        }
        rt.fault_boundary();
    }
    (params, history)
}

/// Convenience: evaluates a SubCircuit with parameters inherited from the
/// SuperCircuit (no training) — the paper's estimation primitive.
pub fn inherited_eval(
    supercircuit: &SuperCircuit,
    shared_params: &[f64],
    config: &SubConfig,
    task: &Task,
    split: Split,
) -> (f64, f64) {
    let circuit = match task {
        Task::Qml { encoder, .. } => supercircuit.build(config, Some(encoder)),
        Task::Vqe { .. } => supercircuit.build(config, None),
    };
    eval_task(&circuit, shared_params, task, split)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignSpace, SpaceKind};
    use qns_chem::Molecule;

    fn tiny_qml_task() -> Task {
        Task::qml_digits(&[1, 8], 12, 4, 3)
    }

    #[test]
    fn qml_sample_grad_matches_finite_difference() {
        let task = tiny_qml_task();
        let (encoder, readout, input, label) = match &task {
            Task::Qml {
                splits,
                encoder,
                readout,
                ..
            } => (
                encoder,
                readout,
                splits.train.features[0].clone(),
                splits.train.labels[0],
            ),
            _ => unreachable!(),
        };
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 1);
        let circuit = sc.build(&sc.max_config(), Some(encoder));
        let params = init_params(circuit.num_train_params(), 5);
        let (_, grad) = qml_sample_grad(&circuit, &params, &input, label, readout);
        let h = 1e-5;
        // Perturb one parameter in place and restore it, instead of cloning
        // the whole parameter vector twice per probe.
        let mut work = params.clone();
        for i in [0usize, 7, 13] {
            let original = work[i];
            work[i] = original + h;
            let (lp, _) = qml_sample_grad(&circuit, &work, &input, label, readout);
            work[i] = original - h;
            let (lm, _) = qml_sample_grad(&circuit, &work, &input, label, readout);
            work[i] = original;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (grad[i] - fd).abs() < 1e-5,
                "param {i}: {} vs {}",
                grad[i],
                fd
            );
        }
    }

    #[test]
    fn training_reduces_qml_loss() {
        let task = tiny_qml_task();
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
        let encoder = match &task {
            Task::Qml { encoder, .. } => encoder.clone(),
            _ => unreachable!(),
        };
        let circuit = sc.build(&sc.max_config(), Some(&encoder));
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 8,
            ..Default::default()
        };
        let (_, history) = train_task(&circuit, &task, &cfg, None);
        assert!(
            history.last().expect("non-empty") < &history[0],
            "loss did not decrease: {history:?}"
        );
    }

    #[test]
    fn vqe_training_approaches_h2_ground_state() {
        let mol = Molecule::h2();
        let task = Task::vqe(&mol);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 2, 2);
        let circuit = sc.build(&sc.max_config(), None);
        let cfg = TrainConfig {
            epochs: 150,
            lr: 0.05,
            ..Default::default()
        };
        let (params, history) = train_task(&circuit, &task, &cfg, None);
        let exact = mol.fci_energy();
        let final_e = *history.last().expect("non-empty");
        assert!(
            final_e - exact < 0.05,
            "VQE reached {final_e}, exact {exact}"
        );
        let (e, _) = eval_task(&circuit, &params, &task, Split::Valid);
        assert!((e - final_e).abs() < 0.05);
    }

    #[test]
    fn supercircuit_training_reduces_loss() {
        let task = tiny_qml_task();
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
        let cfg = SuperTrainConfig {
            steps: 80,
            batch_size: 8,
            warmup_steps: 8,
            sampler: SamplerConfig {
                shrink_start: 0,
                shrink_end: 30,
                ..Default::default()
            },
            ..Default::default()
        };
        let (params, history) = train_supercircuit(&sc, &task, &cfg);
        assert_eq!(params.len(), sc.num_params());
        assert_eq!(history.len(), 80);
        // Per-step losses are noisy (random SubCircuit + batch each step),
        // so compare the *validation* loss of the full SubCircuit with
        // trained vs freshly initialized shared parameters.
        let fresh = init_params(sc.num_params(), 0xF00D);
        let (trained_loss, _) = inherited_eval(&sc, &params, &sc.max_config(), &task, Split::Valid);
        let (fresh_loss, _) = inherited_eval(&sc, &fresh, &sc.max_config(), &task, Split::Valid);
        assert!(
            trained_loss < fresh_loss,
            "super-training did not improve: {fresh_loss} -> {trained_loss}"
        );
    }

    #[test]
    fn inherited_eval_runs_any_subconfig() {
        let task = tiny_qml_task();
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
        let params = init_params(sc.num_params(), 1);
        let mut cfg = sc.max_config();
        cfg.n_blocks = 1;
        cfg.widths[0][0] = 2;
        let (loss, acc) = inherited_eval(&sc, &params, &cfg, &task, Split::Valid);
        assert!(loss.is_finite());
        assert!((0.0..=1.0).contains(&acc));
    }
}
