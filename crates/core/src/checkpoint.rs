//! Resumable-state definitions for the three long-running loops.
//!
//! Each loop owns one snapshot type — [`TrainCheckpoint`],
//! [`SearchCheckpoint`], [`PruneCheckpoint`] — holding *everything* its
//! loop needs to continue bitwise: parameters, optimizer moments, RNG
//! stream positions, score memos. Every snapshot also carries the
//! `context` digest of the run configuration that wrote it; a resume
//! validates that digest against the current run and rejects stale
//! snapshots instead of silently mixing two configurations.
//!
//! The wire format (framing, crc, atomic writes) lives in
//! [`qns_runtime`]'s checkpoint module; this file only encodes the
//! domain payloads.

use crate::{Gene, SubConfig};
use qns_proxy::PrescreenerState;
use qns_runtime::{ByteReader, ByteWriter, CacheKey, CheckpointError, Checkpointable};
use qns_sim::SimBackend;
use std::path::PathBuf;

/// User-facing checkpoint knobs (the CLI's `--checkpoint-dir`,
/// `--checkpoint-every`, `--resume`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointOptions {
    /// Directory holding the rotated snapshot files.
    pub dir: PathBuf,
    /// Snapshot every N loop units (generations / steps / rounds); the
    /// final boundary is always snapshotted. Minimum effective value 1.
    pub every: usize,
    /// Restore from the latest valid snapshot before looping.
    pub resume: bool,
}

impl CheckpointOptions {
    /// Checkpoint into `dir` every unit, without resuming.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            every: 1,
            resume: false,
        }
    }

    /// Sets the snapshot interval.
    pub fn every(mut self, every: usize) -> Self {
        self.every = every;
        self
    }

    /// Enables resuming from the latest valid snapshot.
    pub fn resume(mut self) -> Self {
        self.resume = true;
        self
    }
}

/// Canonical wire form of a [`SimBackend`] selection, encoded into every
/// search-context digest: a resume under a different backend — or a
/// different MPS truncation policy — hashes to a different context and is
/// rejected as stale instead of silently mixing exact and approximate
/// scores in one memo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendConfig {
    /// Backend discriminant: 0 = `Reference`, 1 = `Fast`, 2 = `Mps`.
    pub tag: u8,
    /// MPS bond-dimension cap (0 for the dense backends).
    pub max_bond: u64,
    /// MPS truncation cutoff as raw `f64` bits (0 for the dense backends).
    pub cutoff_bits: u64,
}

impl BackendConfig {
    /// The wire form of a backend selection.
    pub fn of(backend: SimBackend) -> Self {
        match backend {
            SimBackend::Reference => BackendConfig {
                tag: 0,
                max_bond: 0,
                cutoff_bits: 0,
            },
            SimBackend::Fast => BackendConfig {
                tag: 1,
                max_bond: 0,
                cutoff_bits: 0,
            },
            SimBackend::Mps(cfg) => BackendConfig {
                tag: 2,
                max_bond: cfg.max_bond as u64,
                cutoff_bits: cfg.truncation_cutoff.to_bits(),
            },
        }
    }

    /// Serializes the selection for context digesting.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.tag as u64);
        w.put_u64(self.max_bond);
        w.put_u64(self.cutoff_bits);
    }
}

fn put_key(w: &mut ByteWriter, k: CacheKey) {
    w.put_u64(k.lo);
    w.put_u64(k.hi);
}

fn get_key(r: &mut ByteReader<'_>) -> Result<CacheKey, CheckpointError> {
    Ok(CacheKey {
        lo: r.get_u64()?,
        hi: r.get_u64()?,
    })
}

fn put_rng(w: &mut ByteWriter, s: [u64; 4]) {
    for word in s {
        w.put_u64(word);
    }
}

fn get_rng(r: &mut ByteReader<'_>) -> Result<[u64; 4], CheckpointError> {
    Ok([r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?])
}

fn put_f64s(w: &mut ByteWriter, xs: &[f64]) {
    w.put_usize(xs.len());
    for &x in xs {
        w.put_f64(x);
    }
}

fn get_f64s(r: &mut ByteReader<'_>) -> Result<Vec<f64>, CheckpointError> {
    let n = r.get_seq_len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_f64()?);
    }
    Ok(out)
}

fn put_subconfig(w: &mut ByteWriter, cfg: &SubConfig) {
    w.put_usize(cfg.n_blocks);
    w.put_usize(cfg.widths.len());
    for block in &cfg.widths {
        w.put_usize(block.len());
        for &width in block {
            w.put_usize(width);
        }
    }
}

fn get_subconfig(r: &mut ByteReader<'_>) -> Result<SubConfig, CheckpointError> {
    let n_blocks = r.get_usize()?;
    let n = r.get_seq_len(8)?;
    let mut widths = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.get_seq_len(8)?;
        let mut block = Vec::with_capacity(m);
        for _ in 0..m {
            block.push(r.get_usize()?);
        }
        widths.push(block);
    }
    Ok(SubConfig { n_blocks, widths })
}

fn put_gene(w: &mut ByteWriter, gene: &Gene) {
    put_subconfig(w, &gene.config);
    w.put_usize(gene.layout.len());
    for &p in &gene.layout {
        w.put_usize(p);
    }
}

fn get_gene(r: &mut ByteReader<'_>) -> Result<Gene, CheckpointError> {
    let config = get_subconfig(r)?;
    let n = r.get_seq_len(8)?;
    let mut layout = Vec::with_capacity(n);
    for _ in 0..n {
        layout.push(r.get_usize()?);
    }
    Ok(Gene { config, layout })
}

/// Snapshot of the evolutionary-search loop at a generation boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchCheckpoint {
    /// Digest of the run configuration (search context + evolution
    /// hyperparameters + seed population); a resume only accepts
    /// snapshots whose context matches the current run's.
    pub context: CacheKey,
    /// Next generation to run (generations `0..generation` are done).
    pub generation: usize,
    /// The population entering `generation`.
    pub population: Vec<Gene>,
    /// Evolution RNG stream position.
    pub rng: [u64; 4],
    /// Best gene and score so far.
    pub best: Option<(Gene, f64)>,
    /// Best-so-far score after each completed generation.
    pub history: Vec<f64>,
    /// Real evaluations so far.
    pub evaluations: usize,
    /// Memoized answers so far.
    pub memo_hits: usize,
    /// The score memo, sorted by key (deterministic dump).
    pub memo: Vec<(CacheKey, f64)>,
    /// Prescreening state (fusion weights, feature cache, counters) when
    /// the run searched with `--proxy on`; `None` for proxy-off runs. A
    /// resume rejects snapshots whose presence disagrees with the current
    /// run's proxy setting.
    pub proxy: Option<PrescreenerState>,
}

impl Checkpointable for SearchCheckpoint {
    const KIND: u32 = u32::from_le_bytes(*b"SEAR");
    const LABEL: &'static str = "search";

    fn encode(&self, w: &mut ByteWriter) {
        put_key(w, self.context);
        w.put_usize(self.generation);
        w.put_usize(self.population.len());
        for gene in &self.population {
            put_gene(w, gene);
        }
        put_rng(w, self.rng);
        match &self.best {
            Some((gene, score)) => {
                w.put_bool(true);
                put_gene(w, gene);
                w.put_f64(*score);
            }
            None => w.put_bool(false),
        }
        put_f64s(w, &self.history);
        w.put_usize(self.evaluations);
        w.put_usize(self.memo_hits);
        w.put_usize(self.memo.len());
        for &(k, v) in &self.memo {
            put_key(w, k);
            w.put_f64(v);
        }
        match &self.proxy {
            Some(state) => {
                w.put_bool(true);
                state.encode(w);
            }
            None => w.put_bool(false),
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
        let context = get_key(r)?;
        let generation = r.get_usize()?;
        let n = r.get_seq_len(8)?;
        let mut population = Vec::with_capacity(n);
        for _ in 0..n {
            population.push(get_gene(r)?);
        }
        let rng = get_rng(r)?;
        let best = if r.get_bool()? {
            let gene = get_gene(r)?;
            Some((gene, r.get_f64()?))
        } else {
            None
        };
        let history = get_f64s(r)?;
        let evaluations = r.get_usize()?;
        let memo_hits = r.get_usize()?;
        let n = r.get_seq_len(24)?;
        let mut memo = Vec::with_capacity(n);
        for _ in 0..n {
            let k = get_key(r)?;
            memo.push((k, r.get_f64()?));
        }
        let proxy = if r.get_bool()? {
            Some(PrescreenerState::decode(r)?)
        } else {
            None
        };
        Ok(SearchCheckpoint {
            context,
            generation,
            population,
            rng,
            best,
            history,
            evaluations,
            memo_hits,
            memo,
            proxy,
        })
    }
}

/// Snapshot of the multi-objective Pareto search loop at a generation
/// boundary. Mirrors [`SearchCheckpoint`] — same population / RNG / memo
/// / proxy carriage — plus the cross-generation non-dominated archive, so
/// a killed+resumed Pareto search reproduces its final front bitwise. The
/// wire kind differs from the scalar search's, so the two loops can never
/// cross-load each other's snapshots.
#[derive(Clone, Debug, PartialEq)]
pub struct ParetoState {
    /// Digest of the run configuration *including the objective vector*
    /// (names and order); a resume only accepts snapshots whose context
    /// matches the current run's.
    pub context: CacheKey,
    /// Next generation to run (generations `0..generation` are done).
    pub generation: usize,
    /// The population entering `generation`.
    pub population: Vec<Gene>,
    /// Evolution RNG stream position.
    pub rng: [u64; 4],
    /// The non-dominated archive: each elite gene with its objective
    /// vector, sorted by candidate digest.
    pub archive: Vec<(Gene, Vec<f64>)>,
    /// Best gene and primary-objective value so far.
    pub best: Option<(Gene, f64)>,
    /// Best-so-far primary objective after each completed generation.
    pub history: Vec<f64>,
    /// Real evaluations so far.
    pub evaluations: usize,
    /// Memoized answers so far.
    pub memo_hits: usize,
    /// The score memo, sorted by key (deterministic dump).
    pub memo: Vec<(CacheKey, f64)>,
    /// Prescreening state when the run searched with `--proxy on`; `None`
    /// for proxy-off runs. A resume rejects snapshots whose presence
    /// disagrees with the current run's proxy setting.
    pub proxy: Option<PrescreenerState>,
}

impl Checkpointable for ParetoState {
    const KIND: u32 = u32::from_le_bytes(*b"PARE");
    const LABEL: &'static str = "pareto";

    fn encode(&self, w: &mut ByteWriter) {
        put_key(w, self.context);
        w.put_usize(self.generation);
        w.put_usize(self.population.len());
        for gene in &self.population {
            put_gene(w, gene);
        }
        put_rng(w, self.rng);
        w.put_usize(self.archive.len());
        for (gene, objs) in &self.archive {
            put_gene(w, gene);
            put_f64s(w, objs);
        }
        match &self.best {
            Some((gene, score)) => {
                w.put_bool(true);
                put_gene(w, gene);
                w.put_f64(*score);
            }
            None => w.put_bool(false),
        }
        put_f64s(w, &self.history);
        w.put_usize(self.evaluations);
        w.put_usize(self.memo_hits);
        w.put_usize(self.memo.len());
        for &(k, v) in &self.memo {
            put_key(w, k);
            w.put_f64(v);
        }
        match &self.proxy {
            Some(state) => {
                w.put_bool(true);
                state.encode(w);
            }
            None => w.put_bool(false),
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
        let context = get_key(r)?;
        let generation = r.get_usize()?;
        let n = r.get_seq_len(8)?;
        let mut population = Vec::with_capacity(n);
        for _ in 0..n {
            population.push(get_gene(r)?);
        }
        let rng = get_rng(r)?;
        let n = r.get_seq_len(8)?;
        let mut archive = Vec::with_capacity(n);
        for _ in 0..n {
            let gene = get_gene(r)?;
            let objs = get_f64s(r)?;
            archive.push((gene, objs));
        }
        let best = if r.get_bool()? {
            let gene = get_gene(r)?;
            Some((gene, r.get_f64()?))
        } else {
            None
        };
        let history = get_f64s(r)?;
        let evaluations = r.get_usize()?;
        let memo_hits = r.get_usize()?;
        let n = r.get_seq_len(24)?;
        let mut memo = Vec::with_capacity(n);
        for _ in 0..n {
            let k = get_key(r)?;
            memo.push((k, r.get_f64()?));
        }
        let proxy = if r.get_bool()? {
            Some(PrescreenerState::decode(r)?)
        } else {
            None
        };
        Ok(ParetoState {
            context,
            generation,
            population,
            rng,
            archive,
            best,
            history,
            evaluations,
            memo_hits,
            memo,
            proxy,
        })
    }
}

/// Snapshot of the SuperCircuit training loop at a step boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainCheckpoint {
    /// Digest of the run configuration that wrote this snapshot.
    pub context: CacheKey,
    /// Next step to run (steps `0..step` are done).
    pub step: usize,
    /// Shared parameter vector.
    pub params: Vec<f64>,
    /// Adam first moments.
    pub opt_m: Vec<f64>,
    /// Adam second moments.
    pub opt_v: Vec<f64>,
    /// Adam step count.
    pub opt_t: u64,
    /// Per-step training losses so far.
    pub history: Vec<f64>,
    /// Minibatch RNG stream position.
    pub rng: [u64; 4],
    /// Sampler: previous SubCircuit sample (restricted-sampling anchor).
    pub sampler_prev: SubConfig,
    /// Sampler: schedule position.
    pub sampler_step: usize,
    /// Sampler: RNG stream position.
    pub sampler_rng: [u64; 4],
}

impl Checkpointable for TrainCheckpoint {
    const KIND: u32 = u32::from_le_bytes(*b"TRAI");
    const LABEL: &'static str = "train";

    fn encode(&self, w: &mut ByteWriter) {
        put_key(w, self.context);
        w.put_usize(self.step);
        put_f64s(w, &self.params);
        put_f64s(w, &self.opt_m);
        put_f64s(w, &self.opt_v);
        w.put_u64(self.opt_t);
        put_f64s(w, &self.history);
        put_rng(w, self.rng);
        put_subconfig(w, &self.sampler_prev);
        w.put_usize(self.sampler_step);
        put_rng(w, self.sampler_rng);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
        Ok(TrainCheckpoint {
            context: get_key(r)?,
            step: r.get_usize()?,
            params: get_f64s(r)?,
            opt_m: get_f64s(r)?,
            opt_v: get_f64s(r)?,
            opt_t: r.get_u64()?,
            history: get_f64s(r)?,
            rng: get_rng(r)?,
            sampler_prev: get_subconfig(r)?,
            sampler_step: r.get_usize()?,
            sampler_rng: get_rng(r)?,
        })
    }
}

/// Snapshot of the iterative-pruning loop at a round boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct PruneCheckpoint {
    /// Digest of the run configuration that wrote this snapshot.
    pub context: CacheKey,
    /// Next round to run (rounds `0..round` are done).
    pub round: usize,
    /// Fine-tuned parameter vector entering `round`.
    pub params: Vec<f64>,
    /// Current pruning mask (`true` = parameter kept).
    pub mask: Vec<bool>,
    /// Evaluation loss after the last completed round.
    pub final_loss: f64,
}

impl Checkpointable for PruneCheckpoint {
    const KIND: u32 = u32::from_le_bytes(*b"PRUN");
    const LABEL: &'static str = "prune";

    fn encode(&self, w: &mut ByteWriter) {
        put_key(w, self.context);
        w.put_usize(self.round);
        put_f64s(w, &self.params);
        w.put_usize(self.mask.len());
        for &keep in &self.mask {
            w.put_bool(keep);
        }
        w.put_f64(self.final_loss);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
        let context = get_key(r)?;
        let round = r.get_usize()?;
        let params = get_f64s(r)?;
        let n = r.get_seq_len(1)?;
        let mut mask = Vec::with_capacity(n);
        for _ in 0..n {
            mask.push(r.get_bool()?);
        }
        Ok(PruneCheckpoint {
            context,
            round,
            params,
            mask,
            final_loss: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_runtime::{decode_snapshot, encode_snapshot};

    fn gene(n: usize) -> Gene {
        Gene {
            config: SubConfig {
                n_blocks: n,
                widths: (0..n).map(|b| vec![b + 1, (b % 3) + 1]).collect(),
            },
            layout: (0..4).rev().collect(),
        }
    }

    #[test]
    fn search_checkpoint_round_trips() {
        let state = SearchCheckpoint {
            context: CacheKey { lo: 7, hi: 9 },
            generation: 3,
            population: (1..5).map(gene).collect(),
            rng: [1, 2, 3, 4],
            best: Some((gene(2), -0.75)),
            history: vec![0.9, 0.5, -0.75],
            evaluations: 40,
            memo_hits: 12,
            memo: vec![
                (CacheKey { lo: 1, hi: 1 }, 0.25),
                (CacheKey { lo: 2, hi: 2 }, f64::INFINITY),
            ],
            proxy: None,
        };
        let bytes = encode_snapshot(&state);
        assert_eq!(decode_snapshot::<SearchCheckpoint>(&bytes).unwrap(), state);
    }

    #[test]
    fn search_checkpoint_with_proxy_state_round_trips() {
        use qns_proxy::{FusionModel, ProxyFeatures};
        let mut fusion = FusionModel::new();
        fusion.observe(&ProxyFeatures([1.0, 2.0, 3.0, 4.0, 5.0]), 0.5);
        fusion.observe(&ProxyFeatures([2.0, 1.0, 0.0, -1.0, 3.0]), 0.9);
        let state = SearchCheckpoint {
            context: CacheKey { lo: 7, hi: 9 },
            generation: 1,
            population: (1..3).map(gene).collect(),
            rng: [1, 2, 3, 4],
            best: None,
            history: vec![0.9],
            evaluations: 8,
            memo_hits: 0,
            memo: vec![],
            proxy: Some(qns_proxy::PrescreenerState {
                fusion,
                features: vec![(
                    CacheKey { lo: 3, hi: 4 },
                    ProxyFeatures([0.1, 0.2, 0.3, 0.4, 0.5]),
                )],
                proxy_evals: 8,
                proxy_escalations: 8,
                proxy_dedup_hits: 2,
            }),
        };
        let bytes = encode_snapshot(&state);
        assert_eq!(decode_snapshot::<SearchCheckpoint>(&bytes).unwrap(), state);
    }

    #[test]
    fn pareto_state_round_trips() {
        let state = ParetoState {
            context: CacheKey { lo: 31, hi: 37 },
            generation: 2,
            population: (1..5).map(gene).collect(),
            rng: [4, 3, 2, 1],
            archive: vec![
                (gene(1), vec![0.25, 18.0, 6.0]),
                (gene(3), vec![0.75, 10.0, f64::INFINITY]),
            ],
            best: Some((gene(1), 0.25)),
            history: vec![0.5, 0.25],
            evaluations: 20,
            memo_hits: 4,
            memo: vec![(CacheKey { lo: 5, hi: 6 }, 0.5)],
            proxy: None,
        };
        let bytes = encode_snapshot(&state);
        assert_eq!(decode_snapshot::<ParetoState>(&bytes).unwrap(), state);
    }

    #[test]
    fn train_checkpoint_round_trips() {
        let state = TrainCheckpoint {
            context: CacheKey { lo: 11, hi: 13 },
            step: 17,
            params: vec![0.1, -0.2, 0.3],
            opt_m: vec![1e-3, -2e-3, 0.0],
            opt_v: vec![1e-6, 4e-6, 0.0],
            opt_t: 17,
            history: vec![0.8; 17],
            rng: [5, 6, 7, 8],
            sampler_prev: gene(3).config,
            sampler_step: 17,
            sampler_rng: [9, 10, 11, 12],
        };
        let bytes = encode_snapshot(&state);
        assert_eq!(decode_snapshot::<TrainCheckpoint>(&bytes).unwrap(), state);
    }

    #[test]
    fn prune_checkpoint_round_trips() {
        let state = PruneCheckpoint {
            context: CacheKey { lo: 21, hi: 23 },
            round: 2,
            params: vec![0.5, 0.0, -0.5, 0.0],
            mask: vec![true, false, true, false],
            final_loss: 0.125,
        };
        let bytes = encode_snapshot(&state);
        assert_eq!(decode_snapshot::<PruneCheckpoint>(&bytes).unwrap(), state);
    }

    #[test]
    fn kinds_are_distinct_so_loops_cannot_cross_load() {
        let prune = PruneCheckpoint {
            context: CacheKey { lo: 0, hi: 0 },
            round: 0,
            params: vec![],
            mask: vec![],
            final_loss: 0.0,
        };
        let bytes = encode_snapshot(&prune);
        assert!(decode_snapshot::<SearchCheckpoint>(&bytes).is_err());
        assert!(decode_snapshot::<TrainCheckpoint>(&bytes).is_err());
        assert!(decode_snapshot::<ParetoState>(&bytes).is_err());
    }

    #[test]
    fn scalar_and_pareto_search_kinds_cannot_cross_load() {
        let pareto = ParetoState {
            context: CacheKey { lo: 0, hi: 0 },
            generation: 0,
            population: vec![],
            rng: [0; 4],
            archive: vec![],
            best: None,
            history: vec![],
            evaluations: 0,
            memo_hits: 0,
            memo: vec![],
            proxy: None,
        };
        let bytes = encode_snapshot(&pareto);
        assert!(matches!(
            decode_snapshot::<SearchCheckpoint>(&bytes),
            Err(qns_runtime::CheckpointError::KindMismatch { .. })
        ));
        let scalar = SearchCheckpoint {
            context: CacheKey { lo: 0, hi: 0 },
            generation: 0,
            population: vec![],
            rng: [0; 4],
            best: None,
            history: vec![],
            evaluations: 0,
            memo_hits: 0,
            memo: vec![],
            proxy: None,
        };
        let bytes = encode_snapshot(&scalar);
        assert!(matches!(
            decode_snapshot::<ParetoState>(&bytes),
            Err(qns_runtime::CheckpointError::KindMismatch { .. })
        ));
    }
}
