//! `qnas` — command-line front end for the QuantumNAS pipeline.
//!
//! ```text
//! qnas devices                         list the device models
//! qnas spaces                          list the design spaces
//! qnas run [options]                   run the full pipeline
//!   --task    mnist2|mnist4|fashion2|fashion4|vowel4|vqe-h2|vqe-lih
//!   --space   u3cu3|zzry|rxyz|zxxx|rxyzu1cu3|ibmq
//!   --device  yorktown|belem|...       (see `qnas devices`)
//!   --seed    <u64>
//!   --workers <n>                      evaluation workers (0 = one per core)
//!   --no-cache                         disable transpile cache + score memo
//!   --verify [off|contracts|full]      per-stage transpiler verification
//!                                      (bare --verify = full)
//!   --stats                            print the runtime telemetry summary
//!   --qasm    <path>                   export the deployed circuit
//! ```

use qns_chem::Molecule;
use qns_circuit::to_qasm;
use qns_noise::Device;
use qns_transpile::transpile;
use qns_verify::VerifyLevel;
use quantumnas::{QuantumNas, QuantumNasConfig, RuntimeOptions, SpaceKind, Task};

fn usage() -> ! {
    eprintln!(
        "usage: qnas <devices|spaces|run> [--task T] [--space S] [--device D] \
         [--seed N] [--workers N] [--no-cache] [--verify [off|contracts|full]] \
         [--stats] [--qasm PATH]"
    );
    std::process::exit(2);
}

fn parse_task(name: &str, seed: u64) -> Task {
    match name {
        "mnist2" => Task::qml_digits(&[3, 6], 150, 4, seed),
        "mnist4" => Task::qml_digits(&[0, 1, 2, 3], 150, 4, seed),
        "fashion2" => Task::qml_fashion(&[3, 6], 150, 4, seed),
        "fashion4" => Task::qml_fashion(&[0, 1, 2, 3], 150, 4, seed),
        "vowel4" => Task::qml_vowel(seed),
        "vqe-h2" => Task::vqe(&Molecule::h2()),
        "vqe-lih" => Task::vqe(&Molecule::lih()),
        other => {
            eprintln!("unknown task '{other}'");
            usage()
        }
    }
}

fn parse_space(name: &str) -> SpaceKind {
    match name {
        "u3cu3" => SpaceKind::U3Cu3,
        "zzry" => SpaceKind::ZzRy,
        "rxyz" => SpaceKind::Rxyz,
        "zxxx" => SpaceKind::ZxXx,
        "rxyzu1cu3" => SpaceKind::RxyzU1Cu3,
        "ibmq" => SpaceKind::IbmqBasis,
        other => {
            eprintln!("unknown space '{other}'");
            usage()
        }
    }
}

fn cmd_devices() {
    println!(
        "{:<11} {:>7} {:>10} {:>10} {:>10}",
        "name", "qubits", "topology", "QV", "mean e2q"
    );
    let names = [
        "santiago",
        "athens",
        "rome",
        "belem",
        "quito",
        "lima",
        "yorktown",
        "jakarta",
        "melbourne",
        "guadalupe",
        "toronto",
        "manhattan",
    ];
    for name in names {
        let d = Device::by_name(name).expect("known device");
        println!(
            "{:<11} {:>7} {:>10} {:>10} {:>10.4}",
            d.name(),
            d.num_qubits(),
            format!("{:?}", d.topology()),
            d.quantum_volume(),
            d.mean_err_2q()
        );
    }
}

fn cmd_spaces() {
    println!("{:<14} {:>8} {:>14}", "space", "blocks", "layers/block");
    for &kind in SpaceKind::all() {
        let s = quantumnas::DesignSpace::new(kind);
        println!(
            "{:<14} {:>8} {:>14}",
            s.kind().name(),
            s.default_blocks(),
            s.layers_per_block().len()
        );
    }
}

fn cmd_run(args: &[String]) {
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let seed: u64 = get("--seed", "42").parse().unwrap_or_else(|_| usage());
    let task = parse_task(&get("--task", "mnist2"), seed);
    let space = parse_space(&get("--space", "u3cu3"));
    let device = Device::by_name(&get("--device", "yorktown")).unwrap_or_else(|| {
        eprintln!("unknown device (see `qnas devices`)");
        usage()
    });
    let qasm_path = args
        .iter()
        .position(|a| a == "--qasm")
        .and_then(|i| args.get(i + 1))
        .cloned();
    // `--verify` alone means full checking; an optional value picks the
    // level (`--verify contracts` skips the equivalence spot check).
    let verify_level = match args.iter().position(|a| a == "--verify") {
        None => VerifyLevel::Off,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("off") => VerifyLevel::Off,
            Some("contracts") => VerifyLevel::Contracts,
            Some("full") => VerifyLevel::Full,
            Some(v) if !v.starts_with("--") => {
                eprintln!("unknown verify level '{v}' (off|contracts|full)");
                usage()
            }
            _ => VerifyLevel::Full,
        },
    };
    let runtime = RuntimeOptions {
        workers: get("--workers", "0").parse().unwrap_or_else(|_| usage()),
        cache: !args.iter().any(|a| a == "--no-cache"),
        verify: verify_level,
    };
    let show_stats = args.iter().any(|a| a == "--stats");

    println!(
        "QuantumNAS: task {} | space {} | device {} | seed {}",
        task.name(),
        space.name(),
        device.name(),
        seed
    );
    let is_qml = task.is_qml();
    let mut config = QuantumNasConfig::fast();
    config.runtime = runtime;
    if !is_qml {
        // VQE needs longer, hotter optimization than the QML defaults.
        config.train = quantumnas::TrainConfig {
            epochs: 250,
            lr: 0.05,
            ..Default::default()
        };
        config.prune = None;
    }
    let nas = QuantumNas::new(space, device.clone(), task, config);
    let report = nas.run(seed);

    println!(
        "\nsearched architecture: {} blocks, {} parameters",
        report.gene.config.n_blocks, report.n_params
    );
    println!("qubit mapping: {:?}", report.gene.layout);
    println!("noise-free validation loss: {:.4}", report.trained_loss);
    if is_qml {
        println!(
            "measured accuracy (before prune): {:.3}",
            report.accuracy_before_prune
        );
        println!(
            "measured accuracy (after pruning {:.0}%): {:.3}",
            100.0 * report.pruned_ratio,
            report.final_accuracy
        );
    } else {
        println!("measured energy: {:.4}", report.final_energy);
    }
    println!(
        "search evaluations: {} real + {} memoized",
        report.search_evaluations, report.search_memo_hits
    );
    if show_stats {
        println!("\n{}", report.runtime_summary);
    }

    if let Some(path) = qasm_path {
        // Export the deployed (compiled, trained) circuit. Data-encoding
        // inputs resolve against the all-zeros sample.
        let t = transpile(&report.final_circuit, &device, &report.gene.layout(), 2);
        let inputs = vec![0.0; t.circuit.num_inputs()];
        match to_qasm(&t.circuit, &report.final_params, &inputs) {
            Ok(qasm) => {
                let header = format!(
                    "// QuantumNAS deployed circuit ({} params, mapping {:?})\n\
                     // data-encoding angles bound to the all-zeros sample\n",
                    report.n_params, report.gene.layout
                );
                if std::fs::write(&path, header + &qasm).is_ok() {
                    println!("wrote OpenQASM to {path}");
                } else {
                    eprintln!("failed to write {path}");
                }
            }
            Err(gate) => eprintln!("cannot export gate {gate}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("devices") => cmd_devices(),
        Some("spaces") => cmd_spaces(),
        Some("run") => cmd_run(&args[1..]),
        _ => usage(),
    }
}
