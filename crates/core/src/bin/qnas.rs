//! `qnas` — command-line front end for the QuantumNAS pipeline.
//!
//! ```text
//! qnas devices                         list the device models
//! qnas spaces                          list the design spaces
//! qnas run [options]                   run the full pipeline
//!   --task    mnist2|mnist4|fashion2|fashion4|vowel4|vqe-h2|vqe-lih
//!   --space   u3cu3|zzry|rxyz|zxxx|rxyzu1cu3|ibmq
//!   --device  yorktown|belem|...       (see `qnas devices`)
//!   --seed    <u64>
//!   --preset  fast|smoke               pipeline scale (smoke finishes in
//!                                      seconds; used by the CI fault drill)
//!   --samples <n>                      QML dataset samples (default 150)
//!   --backend statevec|reference|mps   simulation backend for every scoring
//!                                      path (default statevec); mps scores on
//!                                      a bond-truncated matrix-product state
//!                                      and reports truncation telemetry in
//!                                      --stats
//!   --max-bond <n>                     MPS bond-dimension cap (default 64;
//!                                      only meaningful with --backend mps)
//!   --workers <n>                      evaluation workers (0 = one per core)
//!   --no-cache                         disable transpile cache + score memo
//!   --verify [off|contracts|full]      per-stage transpiler verification
//!                                      (bare --verify = full)
//!   --checkpoint-dir <path>            snapshot train/search/prune state
//!   --checkpoint-every <n>             snapshot every n loop units (default 1)
//!   --resume                           continue from the latest valid
//!                                      snapshot in --checkpoint-dir; the
//!                                      resumed run's results are bitwise
//!                                      identical to an uninterrupted run
//!   --proxy [on|off]                   proxy prescreening of search offspring
//!                                      (bare --proxy = on; off by default)
//!   --proxy-keep <f>                   fraction of each generation escalated
//!                                      to full scoring (default 0.25)
//!   --proxy-warmup <n>                 leading generations scored in full
//!                                      (default 2)
//!   --objectives <list>                multi-objective Pareto co-search
//!                                      (NSGA-II) over a comma-separated
//!                                      subset of loss,depth,twoq; the first
//!                                      objective drives the downstream
//!                                      pipeline stages
//!   --front-out <path>                 write the searched Pareto front as
//!                                      JSON (requires --objectives)
//!   --fault-eval <n>                   inject a panic into the nth candidate
//!                                      evaluation (isolated + counted)
//!   --fault-boundary <k>               crash the process at the kth loop
//!                                      boundary (simulated kill)
//!   --stats                            print the runtime telemetry summary
//!   --qasm    <path>                   export the deployed circuit
//! ```

use qns_chem::Molecule;
use qns_circuit::to_qasm;
use qns_noise::Device;
use qns_transpile::transpile;
use qns_verify::VerifyLevel;
use quantumnas::{
    CheckpointOptions, FaultPlan, QuantumNas, QuantumNasConfig, RuntimeOptions, SpaceKind, Task,
};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: qnas <devices|spaces|run> [--task T] [--space S] [--device D] \
         [--seed N] [--preset fast|smoke] [--samples N] \
         [--backend statevec|reference|mps] [--max-bond N] [--workers N] [--no-cache] \
         [--verify [off|contracts|full]] [--checkpoint-dir PATH] \
         [--checkpoint-every N] [--resume] [--proxy [on|off]] [--proxy-keep F] \
         [--proxy-warmup N] [--objectives LIST] [--front-out PATH] \
         [--fault-eval N] [--fault-boundary K] [--stats] [--qasm PATH]"
    );
    std::process::exit(2);
}

fn parse_task(name: &str, samples: usize, seed: u64) -> Task {
    match name {
        "mnist2" => Task::qml_digits(&[3, 6], samples, 4, seed),
        "mnist4" => Task::qml_digits(&[0, 1, 2, 3], samples, 4, seed),
        "fashion2" => Task::qml_fashion(&[3, 6], samples, 4, seed),
        "fashion4" => Task::qml_fashion(&[0, 1, 2, 3], samples, 4, seed),
        "vowel4" => Task::qml_vowel(seed),
        "vqe-h2" => Task::vqe(&Molecule::h2()),
        "vqe-lih" => Task::vqe(&Molecule::lih()),
        other => {
            eprintln!("unknown task '{other}'");
            usage()
        }
    }
}

fn parse_space(name: &str) -> SpaceKind {
    match name {
        "u3cu3" => SpaceKind::U3Cu3,
        "zzry" => SpaceKind::ZzRy,
        "rxyz" => SpaceKind::Rxyz,
        "zxxx" => SpaceKind::ZxXx,
        "rxyzu1cu3" => SpaceKind::RxyzU1Cu3,
        "ibmq" => SpaceKind::IbmqBasis,
        other => {
            eprintln!("unknown space '{other}'");
            usage()
        }
    }
}

/// A pipeline scale that finishes in a few seconds: 12 training steps,
/// 2 search generations, 1 pruning round, and the cheap success-rate
/// estimator. Used by the CI fault-tolerance drill, where the pipeline is
/// run twice (kill + resume) per check.
fn smoke_config() -> QuantumNasConfig {
    let mut config = QuantumNasConfig::fast();
    config.super_train.steps = 12;
    config.super_train.warmup_steps = 2;
    config.evo.iterations = 2;
    config.evo.population = 6;
    config.evo.parents = 2;
    config.evo.mutations = 2;
    config.evo.crossovers = 2;
    config.estimator = quantumnas::EstimatorKind::SuccessRate;
    config.train.epochs = 3;
    config.n_test = 10;
    config.prune = Some(quantumnas::PruneConfig {
        steps: 1,
        finetune_epochs: 1,
        ..Default::default()
    });
    config.measure.trajectories = 4;
    config
}

const DEVICE_NAMES: [&str; 12] = [
    "santiago",
    "athens",
    "rome",
    "belem",
    "quito",
    "lima",
    "yorktown",
    "jakarta",
    "melbourne",
    "guadalupe",
    "toronto",
    "manhattan",
];

fn cmd_devices() {
    println!(
        "{:<11} {:>7} {:>10} {:>10} {:>10}",
        "name", "qubits", "topology", "QV", "mean e2q"
    );
    for name in DEVICE_NAMES {
        let d = Device::by_name(name).expect("known device");
        println!(
            "{:<11} {:>7} {:>10} {:>10} {:>10.4}",
            d.name(),
            d.num_qubits(),
            format!("{:?}", d.topology()),
            d.quantum_volume(),
            d.mean_err_2q()
        );
    }
}

fn cmd_spaces() {
    println!("{:<14} {:>8} {:>14}", "space", "blocks", "layers/block");
    for &kind in SpaceKind::all() {
        let s = quantumnas::DesignSpace::new(kind);
        println!(
            "{:<14} {:>8} {:>14}",
            s.kind().name(),
            s.default_blocks(),
            s.layers_per_block().len()
        );
    }
}

fn cmd_run(args: &[String]) {
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let seed: u64 = get("--seed", "42").parse().unwrap_or_else(|_| usage());
    let samples: usize = get("--samples", "150").parse().unwrap_or_else(|_| usage());
    let task = parse_task(&get("--task", "mnist2"), samples, seed);
    let space = parse_space(&get("--space", "u3cu3"));
    let device = Device::by_name(&get("--device", "yorktown")).unwrap_or_else(|| {
        eprintln!("unknown device (see `qnas devices`)");
        usage()
    });
    let qasm_path = args
        .iter()
        .position(|a| a == "--qasm")
        .and_then(|i| args.get(i + 1))
        .cloned();
    // `--verify` alone means full checking; an optional value picks the
    // level (`--verify contracts` skips the equivalence spot check).
    let verify_level = match args.iter().position(|a| a == "--verify") {
        None => VerifyLevel::Off,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("off") => VerifyLevel::Off,
            Some("contracts") => VerifyLevel::Contracts,
            Some("full") => VerifyLevel::Full,
            Some(v) if !v.starts_with("--") => {
                eprintln!("unknown verify level '{v}' (off|contracts|full)");
                usage()
            }
            _ => VerifyLevel::Full,
        },
    };
    // `--proxy` alone switches prescreening on; an optional value makes the
    // choice explicit so scripts can pass `--proxy off`.
    let proxy_enabled = match args.iter().position(|a| a == "--proxy") {
        None => false,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("off") => false,
            Some("on") => true,
            Some(v) if !v.starts_with("--") => {
                eprintln!("unknown proxy mode '{v}' (on|off)");
                usage()
            }
            _ => true,
        },
    };
    let proxy = quantumnas::ProxyOptions {
        enabled: proxy_enabled,
        keep: get("--proxy-keep", "0.25")
            .parse()
            .unwrap_or_else(|_| usage()),
        warmup: get("--proxy-warmup", "2")
            .parse()
            .unwrap_or_else(|_| usage()),
    };
    if proxy.enabled && !(proxy.keep > 0.0 && proxy.keep <= 1.0) {
        eprintln!("--proxy-keep must be in (0, 1]");
        usage()
    }
    let objectives = args
        .iter()
        .position(|a| a == "--objectives")
        .and_then(|i| args.get(i + 1))
        .map(|spec| {
            quantumnas::parse_objectives(spec).unwrap_or_else(|e| {
                eprintln!("--objectives: {e}");
                usage()
            })
        });
    let front_out = args
        .iter()
        .position(|a| a == "--front-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if front_out.is_some() && objectives.is_none() {
        eprintln!("--front-out requires --objectives");
        usage()
    }
    let max_bond: usize = get("--max-bond", "64").parse().unwrap_or_else(|_| usage());
    let backend = match get("--backend", "statevec").as_str() {
        "statevec" | "fast" => qns_sim::SimBackend::Fast,
        "reference" => qns_sim::SimBackend::Reference,
        "mps" => qns_sim::SimBackend::Mps(qns_sim::MpsConfig {
            max_bond: max_bond.max(1),
            ..Default::default()
        }),
        other => {
            eprintln!("unknown backend '{other}' (statevec|reference|mps)");
            usage()
        }
    };
    let workers: usize = get("--workers", "0").parse().unwrap_or_else(|_| usage());
    // Per-sample simulation fan-out honors the same flag (it used to be
    // latched at first use, ignoring later settings).
    qns_sim::set_parallelism(workers);
    let checkpoint = args
        .iter()
        .position(|a| a == "--checkpoint-dir")
        .and_then(|i| args.get(i + 1))
        .map(|dir| CheckpointOptions {
            dir: dir.into(),
            every: get("--checkpoint-every", "1")
                .parse()
                .unwrap_or_else(|_| usage()),
            resume: args.iter().any(|a| a == "--resume"),
        });
    if checkpoint.is_none() && args.iter().any(|a| a == "--resume") {
        eprintln!("--resume requires --checkpoint-dir");
        usage()
    }
    let runtime = RuntimeOptions {
        workers,
        cache: !args.iter().any(|a| a == "--no-cache"),
        verify: verify_level,
        checkpoint: checkpoint.clone(),
    };
    let mut faults = FaultPlan::new();
    let mut have_faults = false;
    if let Some(n) = args
        .iter()
        .position(|a| a == "--fault-eval")
        .and_then(|i| args.get(i + 1))
    {
        faults = faults.fail_eval(n.parse().unwrap_or_else(|_| usage()));
        have_faults = true;
    }
    if let Some(k) = args
        .iter()
        .position(|a| a == "--fault-boundary")
        .and_then(|i| args.get(i + 1))
    {
        faults = faults.crash_at_boundary(k.parse().unwrap_or_else(|_| usage()));
        have_faults = true;
    }
    let show_stats = args.iter().any(|a| a == "--stats");

    println!(
        "QuantumNAS: task {} | space {} | device {} | seed {}",
        task.name(),
        space.name(),
        device.name(),
        seed
    );
    if let Some(ck) = &checkpoint {
        println!(
            "checkpointing: dir {} | every {} | resume {}",
            ck.dir.display(),
            ck.every,
            ck.resume
        );
    }
    let is_qml = task.is_qml();
    let mut config = match get("--preset", "fast").as_str() {
        "fast" => QuantumNasConfig::fast(),
        "smoke" => smoke_config(),
        other => {
            eprintln!("unknown preset '{other}' (fast|smoke)");
            usage()
        }
    };
    config.runtime = runtime;
    config.backend = backend;
    if let qns_sim::SimBackend::Mps(mps) = backend {
        println!("backend: mps (max bond {})", mps.max_bond);
    }
    config.evo.proxy = proxy;
    config.objectives = objectives.clone();
    if have_faults {
        config.faults = Some(Arc::new(faults));
    }
    if !is_qml {
        // VQE needs longer, hotter optimization than the QML defaults.
        config.train = quantumnas::TrainConfig {
            epochs: 250,
            lr: 0.05,
            ..Default::default()
        };
        config.prune = None;
    }
    let nas = QuantumNas::new(space, device.clone(), task, config);
    let report = nas.run(seed);

    println!(
        "\nsearched architecture: {} blocks, {} parameters",
        report.gene.config.n_blocks, report.n_params
    );
    println!("qubit mapping: {:?}", report.gene.layout);
    println!("noise-free validation loss: {:.4}", report.trained_loss);
    if is_qml {
        println!(
            "measured accuracy (before prune): {:.3}",
            report.accuracy_before_prune
        );
        println!(
            "measured accuracy (after pruning {:.0}%): {:.3}",
            100.0 * report.pruned_ratio,
            report.final_accuracy
        );
    } else {
        println!("measured energy: {:.4}", report.final_energy);
    }
    println!(
        "search evaluations: {} real + {} memoized",
        report.search_evaluations, report.search_memo_hits
    );
    if proxy.enabled {
        println!(
            "proxy prescreening: {} features, {} escalated, {} duplicates skipped",
            report.search_proxy_evals,
            report.search_proxy_escalations,
            report.search_proxy_dedup_hits
        );
    }
    if let Some(objectives) = &objectives {
        let names: Vec<&str> = objectives.iter().map(|o| o.name()).collect();
        println!(
            "\nPareto front: {} points over ({})",
            report.front.len(),
            names.join(", ")
        );
        for point in &report.front {
            let vals: Vec<String> = point.objectives.iter().map(|v| format!("{v:.4}")).collect();
            println!(
                "  {} blocks, mapping {:?} :: ({})",
                point.gene.config.n_blocks,
                point.gene.layout,
                vals.join(", ")
            );
        }
        // "One search, many devices": match the same front against every
        // device model's calibration fingerprint.
        let sc = nas.supercircuit();
        println!("device match (front point minimizing estimated error):");
        for name in DEVICE_NAMES {
            let d = Device::by_name(name).expect("known device");
            match quantumnas::match_front_to_device(&sc, nas.task(), &report.front, &d, 2) {
                Some((idx, err)) => {
                    let point = &report.front[idx];
                    println!(
                        "  {:<11} -> point {} (mapping {:?}), est. error {:.4}",
                        name, idx, point.gene.layout, err
                    );
                }
                None => println!("  {name:<11} -> no front point fits"),
            }
        }
        if let Some(path) = &front_out {
            let json = quantumnas::front_json(objectives, &report.front);
            if std::fs::write(path, json).is_ok() {
                println!("wrote Pareto front to {path}");
            } else {
                eprintln!("failed to write {path}");
            }
        }
    }
    if show_stats {
        println!("\n{}", report.runtime_summary);
    }

    if let Some(path) = qasm_path {
        // Export the deployed (compiled, trained) circuit. Data-encoding
        // inputs resolve against the all-zeros sample.
        let t = transpile(&report.final_circuit, &device, &report.gene.layout(), 2);
        let inputs = vec![0.0; t.circuit.num_inputs()];
        match to_qasm(&t.circuit, &report.final_params, &inputs) {
            Ok(qasm) => {
                let header = format!(
                    "// QuantumNAS deployed circuit ({} params, mapping {:?})\n\
                     // data-encoding angles bound to the all-zeros sample\n",
                    report.n_params, report.gene.layout
                );
                if std::fs::write(&path, header + &qasm).is_ok() {
                    println!("wrote OpenQASM to {path}");
                } else {
                    eprintln!("failed to write {path}");
                }
            }
            Err(gate) => eprintln!("cannot export gate {gate}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("devices") => cmd_devices(),
        Some("spaces") => cmd_spaces(),
        Some("run") => cmd_run(&args[1..]),
        _ => usage(),
    }
}
