//! QuantumNAS: noise-adaptive co-search of variational quantum circuits
//! and qubit mappings (Wang et al., HPCA 2022).
//!
//! The pipeline (paper Figure 5):
//!
//! 1. **SuperCircuit training** — a gate-sharing SuperCircuit spanning the
//!    design space is trained once by sampling SubCircuits per step
//!    ([`SuperCircuit`], [`Sampler`] with progressive shrinking and
//!    restricted sampling, [`train_supercircuit`]).
//! 2. **Noise-adaptive evolutionary co-search** — a genetic algorithm over
//!    (SubCircuit, qubit-mapping) genes, scored by a noise-aware
//!    [`Estimator`] with parameters inherited from the SuperCircuit
//!    ([`evolutionary_search`]).
//! 3. **From-scratch training** of the searched SubCircuit
//!    ([`train_task`]).
//! 4. **Iterative pruning** of small-magnitude angles with finetuning
//!    ([`iterative_prune`]).
//! 5. **Compile & deploy** — transpile with the searched mapping and
//!    evaluate on the noisy device model ([`Estimator::test_accuracy`]).
//!
//! Every stage is also exposed separately so the benchmark harness can
//! reproduce each table and figure of the paper.
//!
//! # Examples
//!
//! End-to-end on a tiny task (see `examples/quickstart.rs` for a fuller
//! version):
//!
//! ```no_run
//! use quantumnas::{QuantumNas, QuantumNasConfig, SpaceKind, Task};
//! use qns_noise::Device;
//!
//! let task = Task::qml_digits(&[3, 6], 60, 4, 0);
//! let nas = QuantumNas::new(
//!     SpaceKind::U3Cu3,
//!     Device::yorktown(),
//!     task,
//!     QuantumNasConfig::fast(),
//! );
//! let report = nas.run(0);
//! println!("measured accuracy: {:.3}", report.final_accuracy);
//! ```

mod analysis;
mod baselines;
mod checkpoint;
mod cost;
mod estimator;
mod feature_map;
mod hardware;
mod pareto;
mod pipeline;
mod prune;
mod runtime;
mod sampler;
mod search;
mod space;
mod supercircuit;
mod task;
mod train;

pub use analysis::{barren_plateau_scan, gradient_variance, plateau_relief, PlateauPoint};
pub use baselines::{human_design, random_design};
pub use checkpoint::{
    CheckpointOptions, ParetoState, PruneCheckpoint, SearchCheckpoint, TrainCheckpoint,
};
pub use cost::{CircuitRunCounter, RunCost};
pub use estimator::{Estimator, EstimatorKind};
pub use feature_map::{
    axis_encoder, encoder_catalogue, search_feature_map, EncoderVariant, FeatureMapResult,
};
pub use hardware::{train_qml_on_device, train_vqe_on_device, OnDeviceTrainConfig};
pub use pareto::{
    crowding_distance, dominates, evolutionary_search_pareto, evolutionary_search_pareto_rt,
    front_json, hypervolume, match_front_to_device, non_dominated_sort, normalize_objectives,
    parse_objectives, selection_order, FrontPoint, Objective, ParetoSearchResult,
};
pub use pipeline::{QuantumNas, QuantumNasConfig, Report};
pub use prune::{iterative_prune, iterative_prune_rt, polynomial_ratio, PruneConfig, PruneResult};
pub use runtime::{
    gene_key, hash_circuit, hash_device, hash_estimator_kind, search_context_key, transpile_key,
    BatchOutcome, RuntimeOptions, SearchRuntime,
};
pub use sampler::{Sampler, SamplerConfig};
pub use search::{
    evolutionary_search, evolutionary_search_seeded, evolutionary_search_seeded_rt, random_search,
    random_search_rt, EvoConfig, Gene, SearchResult,
};
pub use space::{DesignSpace, LayerArrangement, LayerSpec, SpaceKind};
pub use supercircuit::{SubConfig, SuperCircuit};
pub use task::{Readout, Task};
pub use train::{
    eval_task, inherited_eval, qml_sample_grad, train_supercircuit, train_supercircuit_rt,
    train_task, Split, SuperTrainConfig, TrainConfig,
};

// The fault-injection surface, re-exported so tests and the CLI don't
// need a direct qns-runtime dependency.
pub use qns_runtime::{FaultPlan, FAULT_MARKER};

// The proxy-prescreening surface, re-exported for the same reason:
// `ProxyOptions` rides on `EvoConfig`, and the bench/test harnesses drive
// the prescreener directly.
pub use qns_proxy::{
    candidate_seed, compute_features, scalarize_objectives, FusionModel, Prescreener,
    PrescreenerState, Proxy, ProxyContext, ProxyFeatures, ProxyOptions,
};
