//! Multi-objective Pareto co-search (NSGA-II) over the same
//! (architecture, mapping) genes as the scalar evolutionary engine.
//!
//! The paper's scalar score collapses noisy accuracy, circuit depth, and
//! gate count into one number, hiding the trade-offs that matter when one
//! searched SuperCircuit must serve many calibrated devices. This module
//! searches the whole front instead:
//!
//! - objective vectors over noisy loss / compiled depth / 2Q-gate count
//!   ([`Objective`]), evaluated through the same [`SearchRuntime`] score
//!   memo and transpile cache the scalar engine uses,
//! - fast non-dominated sorting ([`non_dominated_sort`]) and crowding
//!   distance ([`crowding_distance`]) with a deterministic total selection
//!   order ([`selection_order`]): rank, then crowding, then candidate
//!   digest — never `HashMap` iteration order,
//! - front-aware elitism: a cross-generation archive of non-dominated
//!   points, carried through [`ParetoState`] snapshots so killed+resumed
//!   searches stay bitwise-identical at any worker count,
//! - a device-match helper ([`match_front_to_device`]) that picks the
//!   front point minimizing estimated error for a given device
//!   fingerprint — "one search, many devices".
//!
//! With the single objective [`Objective::Loss`], the loop degenerates to
//! the scalar engine: singleton fronts reproduce the score ordering, so
//! best gene, score, and history match [`evolutionary_search_seeded_rt`]
//! bit for bit wherever selection pressure coincides (exact score ties
//! between distinct genes are ordered by digest here, by batch position
//! there).
//!
//! [`evolutionary_search_seeded_rt`]: crate::evolutionary_search_seeded_rt

use crate::checkpoint::ParetoState;
use crate::runtime::{gene_key, search_context_key, SearchRuntime};
use crate::search::{
    build_gene_circuit, evo_context_hasher, mean_finite, record_rank_quality, score_gene,
    seed_population, GenePool,
};
use crate::{Estimator, EvoConfig, Gene, SuperCircuit, Task};
use qns_noise::{circuit_success_rate, Device};
use qns_proxy::{
    candidate_seed, compute_features, scalarize_objectives, Prescreener, ProxyFeatures,
};
use qns_runtime::{counters, CacheKey, GenerationEvent};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// One axis of the multi-objective search. All objectives are minimized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Objective {
    /// The estimator's noisy loss — the scalar engine's entire score.
    Loss,
    /// Depth of the compiled (transpiled) circuit.
    Depth,
    /// 2Q-gate count of the compiled circuit (the dominant error source on
    /// every calibrated device model).
    TwoQ,
}

impl Objective {
    /// CLI / JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Loss => "loss",
            Objective::Depth => "depth",
            Objective::TwoQ => "twoq",
        }
    }

    /// Parses one objective name.
    pub fn parse(name: &str) -> Option<Objective> {
        match name {
            "loss" => Some(Objective::Loss),
            "depth" => Some(Objective::Depth),
            "twoq" => Some(Objective::TwoQ),
            _ => None,
        }
    }

    /// Stable tag fed into the resume-context digest.
    pub(crate) fn tag(&self) -> u64 {
        match self {
            Objective::Loss => 1,
            Objective::Depth => 2,
            Objective::TwoQ => 3,
        }
    }
}

/// Parses a comma-separated objective list (`"loss,depth,twoq"`).
/// Rejects empty lists, unknown names, and duplicates.
pub fn parse_objectives(spec: &str) -> Result<Vec<Objective>, String> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err("empty objective name".to_string());
        }
        let obj = Objective::parse(part)
            .ok_or_else(|| format!("unknown objective '{part}' (loss|depth|twoq)"))?;
        if out.contains(&obj) {
            return Err(format!("duplicate objective '{part}'"));
        }
        out.push(obj);
    }
    if out.is_empty() {
        return Err("need at least one objective".to_string());
    }
    Ok(out)
}

/// Pareto dominance for minimization: `a` dominates `b` iff `a` is no
/// worse in every coordinate and strictly better in at least one. Any
/// `NaN` coordinate makes the comparison fail (no domination either way),
/// so poisoned candidates can never displace real ones.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective arity mismatch");
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        match x.partial_cmp(y) {
            Some(std::cmp::Ordering::Less) => strict = true,
            Some(std::cmp::Ordering::Equal) => {}
            // Worse in this coordinate, or incomparable (NaN).
            _ => return false,
        }
    }
    strict
}

/// Fast non-dominated sorting (Deb et al., O(MN²)): partitions indices
/// into fronts, where front 0 is the non-dominated set and every member
/// of front k>0 is dominated by at least one member of front k−1. Each
/// front's indices are ascending, so the output is a pure function of the
/// objective matrix.
pub fn non_dominated_sort(objs: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = objs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut blockers = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&objs[i], &objs[j]) {
                dominated_by[i].push(j);
                blockers[j] += 1;
            } else if dominates(&objs[j], &objs[i]) {
                dominated_by[j].push(i);
                blockers[i] += 1;
            }
        }
    }
    let mut fronts = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| blockers[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                blockers[j] -= 1;
                if blockers[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// Crowding distance of one front (output parallel to `front`): boundary
/// points of every objective get `+inf` so extremes always survive
/// selection; interior points accumulate the normalized gap between their
/// neighbors. A dimension with zero or non-finite spread still marks its
/// boundaries but cannot separate the interior.
pub fn crowding_distance(objs: &[Vec<f64>], front: &[usize]) -> Vec<f64> {
    let n = front.len();
    let mut dist = vec![0.0; n];
    if n == 0 {
        return dist;
    }
    let dims = objs[front[0]].len();
    // `dim` indexes the inner objective vectors through `front`, so an
    // iterator rewrite would not apply.
    #[allow(clippy::needless_range_loop)]
    for dim in 0..dims {
        // Positions within the front, sorted by this objective; ties break
        // on the candidate index so the order is total.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            objs[front[a]][dim]
                .total_cmp(&objs[front[b]][dim])
                .then_with(|| front[a].cmp(&front[b]))
        });
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let lo = objs[front[order[0]]][dim];
        let hi = objs[front[order[n - 1]]][dim];
        let range = hi - lo;
        if !(range.is_finite() && range > 0.0) {
            continue;
        }
        for w in 1..n - 1 {
            let prev = objs[front[order[w - 1]]][dim];
            let next = objs[front[order[w + 1]]][dim];
            dist[order[w]] += (next - prev) / range;
        }
    }
    dist
}

/// The NSGA-II survival order over a whole generation: front rank
/// ascending, crowding distance descending, then candidate digest and
/// index as the final tie-breaks. A deterministic total order — two
/// processes given the same objective matrix and digests select
/// identically, regardless of worker count or map iteration order.
pub fn selection_order(objs: &[Vec<f64>], keys: &[CacheKey]) -> Vec<usize> {
    assert_eq!(objs.len(), keys.len(), "one digest per candidate");
    let n = objs.len();
    let mut rank = vec![0usize; n];
    let mut crowd = vec![0.0f64; n];
    for (r, front) in non_dominated_sort(objs).iter().enumerate() {
        let d = crowding_distance(objs, front);
        for (pos, &i) in front.iter().enumerate() {
            rank[i] = r;
            crowd[i] = d[pos];
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        rank[a]
            .cmp(&rank[b])
            .then_with(|| crowd[b].total_cmp(&crowd[a]))
            .then_with(|| keys[a].cmp(&keys[b]))
            .then_with(|| a.cmp(&b))
    });
    order
}

/// Min-max-normalizes each objective dimension over the points' finite
/// values into `[0, 1]`. Non-finite coordinates (poisoned evaluations) map
/// to 1.0 — the worst corner — and a dimension with zero spread maps to
/// 0.0 everywhere.
pub fn normalize_objectives(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let Some(first) = points.first() else {
        return Vec::new();
    };
    let dims = first.len();
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for p in points {
        for (k, &v) in p.iter().enumerate() {
            if v.is_finite() {
                lo[k] = lo[k].min(v);
                hi[k] = hi[k].max(v);
            }
        }
    }
    points
        .iter()
        .map(|p| {
            p.iter()
                .enumerate()
                .map(|(k, &v)| {
                    if !v.is_finite() {
                        return 1.0;
                    }
                    let range = hi[k] - lo[k];
                    if range.is_finite() && range > 0.0 {
                        (v - lo[k]) / range
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

/// Exact hypervolume dominated by normalized minimization `points`
/// against the reference corner `(1, …, 1)`, for 1–3 objectives. The
/// telemetry quality signal: a growing hypervolume means the front is
/// advancing and/or spreading.
///
/// # Panics
///
/// Panics on more than 3 objective dimensions.
pub fn hypervolume(points: &[Vec<f64>]) -> f64 {
    let Some(first) = points.first() else {
        return 0.0;
    };
    match first.len() {
        1 => points
            .iter()
            .map(|p| (1.0 - p[0]).clamp(0.0, 1.0))
            .fold(0.0, f64::max),
        2 => {
            let flat: Vec<(f64, f64)> = points.iter().map(|p| (p[0], p[1])).collect();
            hv2(&flat)
        }
        3 => {
            // Sweep slabs along the third axis: between consecutive z
            // values the attained region is the 2D hypervolume of every
            // point already passed.
            let mut order: Vec<usize> = (0..points.len()).collect();
            order.sort_by(|&a, &b| {
                points[a][2]
                    .total_cmp(&points[b][2])
                    .then_with(|| a.cmp(&b))
            });
            let mut hv = 0.0;
            for (si, &i) in order.iter().enumerate() {
                let z0 = points[i][2];
                let z1 = if si + 1 < order.len() {
                    points[order[si + 1]][2]
                } else {
                    1.0
                };
                let slab = (z1 - z0).max(0.0);
                if slab <= 0.0 {
                    continue;
                }
                let proj: Vec<(f64, f64)> = order[..=si]
                    .iter()
                    .map(|&j| (points[j][0], points[j][1]))
                    .collect();
                hv += slab * hv2(&proj);
            }
            hv
        }
        d => panic!("hypervolume supports 1-3 objectives, got {d}"),
    }
}

/// 2D hypervolume against (1, 1): area under the lower-left staircase.
fn hv2(points: &[(f64, f64)]) -> f64 {
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.total_cmp(&b.1)));
    // Keep the staircase of strictly improving y; dominated points add no
    // area.
    let mut stairs: Vec<(f64, f64)> = Vec::new();
    for &(x, y) in &pts {
        if stairs.last().map(|&(_, ly)| y < ly).unwrap_or(true) {
            stairs.push((x, y));
        }
    }
    let mut hv = 0.0;
    for (i, &(x, y)) in stairs.iter().enumerate() {
        let next_x = if i + 1 < stairs.len() {
            stairs[i + 1].0
        } else {
            1.0
        };
        hv += (next_x - x).max(0.0) * (1.0 - y).clamp(0.0, 1.0);
    }
    hv
}

/// One point of the searched Pareto front.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontPoint {
    /// The candidate (architecture + mapping).
    pub gene: Gene,
    /// Its objective vector, in the search's objective order.
    pub objectives: Vec<f64>,
}

/// The outcome of a Pareto search run.
#[derive(Clone, Debug)]
pub struct ParetoSearchResult {
    /// The final non-dominated archive, sorted by candidate digest.
    pub front: Vec<FrontPoint>,
    /// Best gene by the *primary* objective (`objectives[0]`) — what the
    /// pipeline trains when it runs in Pareto mode.
    pub best: Gene,
    /// The primary-objective value of [`ParetoSearchResult::best`].
    pub best_score: f64,
    /// Best-so-far primary objective after each generation.
    pub history: Vec<f64>,
    /// Genes actually evaluated (transpiled + simulated).
    pub evaluations: usize,
    /// Candidates answered from the score memo without re-evaluation.
    pub memo_hits: usize,
    /// Candidates whose training-free proxy features were computed.
    pub proxy_evals: u64,
    /// Candidates the prescreener escalated to full scoring.
    pub proxy_escalations: u64,
    /// Structurally-duplicate offspring skipped within a generation.
    pub proxy_dedup_hits: u64,
}

impl ParetoSearchResult {
    /// Total candidates considered: real evaluations plus memoized hits.
    pub fn candidates(&self) -> usize {
        self.evaluations + self.memo_hits
    }

    /// Collapses to the scalar engine's result shape (dropping the front)
    /// so downstream pipeline stages stay mode-agnostic.
    pub fn into_search_result(self) -> crate::SearchResult {
        crate::SearchResult {
            best: self.best,
            best_score: self.best_score,
            history: self.history,
            evaluations: self.evaluations,
            memo_hits: self.memo_hits,
            proxy_evals: self.proxy_evals,
            proxy_escalations: self.proxy_escalations,
            proxy_dedup_hits: self.proxy_dedup_hits,
        }
    }
}

/// [`evolutionary_search_pareto_rt`] on a fresh runtime built from
/// `config.runtime`.
pub fn evolutionary_search_pareto(
    sc: &SuperCircuit,
    shared_params: &[f64],
    task: &Task,
    estimator: &Estimator,
    config: &EvoConfig,
    objectives: &[Objective],
) -> ParetoSearchResult {
    let rt = SearchRuntime::new(config.runtime.clone());
    evolutionary_search_pareto_rt(
        sc,
        shared_params,
        task,
        estimator,
        config,
        objectives,
        &[],
        &rt,
    )
}

/// NSGA-II co-search over `objectives`, reusing the scalar engine's
/// evaluation machinery: the same [`SearchRuntime`] score memo and
/// transpile cache, the same proxy prescreener (fed a scalarized view of
/// the same objective vectors), and the same gene pool — seeded
/// identically, so the single-objective mode degenerates to the scalar
/// engine's trajectory.
///
/// # Panics
///
/// Panics if the device is smaller than the SuperCircuit, the population
/// is not larger than the parent count, or `objectives` is empty or holds
/// duplicates.
#[allow(clippy::too_many_arguments)]
pub fn evolutionary_search_pareto_rt(
    sc: &SuperCircuit,
    shared_params: &[f64],
    task: &Task,
    estimator: &Estimator,
    config: &EvoConfig,
    objectives: &[Objective],
    seeds: &[Gene],
    rt: &SearchRuntime,
) -> ParetoSearchResult {
    assert!(
        estimator.device().num_qubits() >= sc.num_qubits(),
        "device too small"
    );
    assert!(
        config.parents >= 2 && config.parents < config.population,
        "need 2 <= parents < population"
    );
    assert!(!objectives.is_empty(), "need at least one objective");
    for (i, o) in objectives.iter().enumerate() {
        assert!(
            !objectives[..i].contains(o),
            "duplicate objective {}",
            o.name()
        );
    }
    let estimator = rt.instrument_estimator(estimator);
    let context = search_context_key(&estimator, task, shared_params, config.max_params);
    let mut pool = GenePool::for_evolution(sc, estimator.device().num_qubits(), config, seeds);
    let mut population = seed_population(&mut pool, config, seeds);
    let mut history = Vec::with_capacity(config.iterations);
    let mut evaluations = 0usize;
    let mut memo_hits = 0usize;
    let mut best: Option<(Gene, f64)> = None;
    let mut archive: Vec<(Gene, Vec<f64>)> = Vec::new();
    let mut start_generation = 0usize;
    let mut prescreener: Option<Prescreener> =
        config.proxy.enabled.then(|| Prescreener::new(config.proxy));
    let mut proxy_evals = 0u64;
    let mut proxy_escalations = 0u64;
    let mut proxy_dedup_hits = 0u64;

    // The scalar context digest plus the objective vector: a Pareto
    // snapshot can only resume a run searching the same objectives in the
    // same order (and can never pass a scalar run's check, nor vice
    // versa — the wire kinds already differ).
    let resume_context = {
        let mut h = evo_context_hasher(context, config, seeds);
        h.write_usize(objectives.len());
        for o in objectives {
            h.write_u64(o.tag());
        }
        h.finish()
    };
    if let Some(ck) = rt.load_checkpoint::<ParetoState>() {
        let compatible = ck.context == resume_context
            && ck.generation <= config.iterations
            && ck.population.len() == config.population
            && ck.proxy.is_some() == config.proxy.enabled;
        if compatible {
            start_generation = ck.generation;
            population = ck.population;
            pool.rng = StdRng::from_state(ck.rng);
            archive = ck.archive;
            best = ck.best;
            history = ck.history;
            evaluations = ck.evaluations;
            memo_hits = ck.memo_hits;
            rt.restore_memo(&ck.memo);
            if let Some(state) = &ck.proxy {
                prescreener = Some(Prescreener::from_state(config.proxy, state));
                proxy_evals = state.proxy_evals;
                proxy_escalations = state.proxy_escalations;
                proxy_dedup_hits = state.proxy_dedup_hits;
            }
            rt.note_resumed();
        } else {
            rt.note_checkpoint_rejected();
        }
    }

    let needs_loss = objectives.contains(&Objective::Loss);
    let needs_shape = objectives
        .iter()
        .any(|o| matches!(o, Objective::Depth | Objective::TwoQ));

    for generation in start_generation..config.iterations {
        // Prescreening mirrors the scalar engine: digest-dedup, feature
        // computation under panic isolation, fusion ranking, escalation.
        let (candidates, proxy_batch) = match prescreener.as_ref() {
            None => (std::mem::take(&mut population), None),
            Some(pre) => {
                let mut uniq: Vec<usize> = Vec::with_capacity(population.len());
                let mut keys = Vec::with_capacity(population.len());
                let mut seen = std::collections::HashSet::new();
                for (i, g) in population.iter().enumerate() {
                    let key = gene_key(g);
                    if seen.insert(key) {
                        uniq.push(i);
                        keys.push(key);
                    }
                }
                let dups = (population.len() - uniq.len()) as u64;
                if dups > 0 {
                    rt.metrics().incr(counters::PROXY_DEDUP_HITS, dups);
                }
                proxy_dedup_hits += dups;

                let missing: Vec<usize> = (0..uniq.len())
                    .filter(|&u| pre.cached_features(keys[u]).is_none())
                    .collect();
                let missing_genes: Vec<&Gene> =
                    missing.iter().map(|&u| &population[uniq[u]]).collect();
                let computed = rt.map_isolated(&missing_genes, |g| {
                    let circuit = build_gene_circuit(sc, task, g);
                    let key = gene_key(g);
                    let cx = estimator.proxy_context(
                        &circuit,
                        &g.layout,
                        candidate_seed(config.seed, key.lo, key.hi),
                    );
                    compute_features(&cx)
                });
                let mut proxy_panics = 0u64;
                for (&u, r) in missing.iter().zip(computed) {
                    let feats = match r {
                        Ok(f) => f,
                        Err(_) => {
                            proxy_panics += 1;
                            ProxyFeatures::poisoned()
                        }
                    };
                    pre.record_features(keys[u], feats);
                }
                proxy_evals += missing.len() as u64;
                rt.metrics()
                    .incr(counters::PROXY_EVALS, missing.len() as u64);
                if proxy_panics > 0 {
                    rt.metrics().incr(counters::PANICS, proxy_panics);
                }

                let feats: Vec<ProxyFeatures> = keys
                    .iter()
                    .map(|&k| pre.cached_features(k).expect("recorded above"))
                    .collect();
                let (escalated, predicted) = if generation < pre.options().warmup {
                    ((0..uniq.len()).collect::<Vec<usize>>(), Vec::new())
                } else {
                    let predicted: Vec<f64> = feats.iter().map(|f| pre.predict(f)).collect();
                    let count = pre.escalation_count(config.population, config.parents, uniq.len());
                    (pre.select(&predicted, count), predicted)
                };
                proxy_escalations += escalated.len() as u64;
                rt.metrics()
                    .incr(counters::PROXY_ESCALATIONS, escalated.len() as u64);
                let candidates: Vec<Gene> = escalated
                    .iter()
                    .map(|&u| population[uniq[u]].clone())
                    .collect();
                let esc_feats: Vec<ProxyFeatures> = escalated.iter().map(|&u| feats[u]).collect();
                let esc_pred: Vec<f64> = if predicted.is_empty() {
                    Vec::new()
                } else {
                    escalated.iter().map(|&u| predicted[u]).collect()
                };
                population.clear();
                (candidates, Some((esc_feats, esc_pred)))
            }
        };

        // Objective evaluation. The loss axis goes through the memoized
        // score engine (identical to the scalar path, digest-compatible
        // memo entries); the structural axes compile through the shared
        // transpile cache under the same panic isolation. A candidate
        // whose compile panics is poisoned to +inf on its shape axes
        // rather than killing the search.
        let loss_outcome = needs_loss.then(|| {
            rt.score_batch(context, &candidates, |g| {
                score_gene(sc, shared_params, task, &estimator, g, config.max_params)
            })
        });
        if let Some(outcome) = &loss_outcome {
            evaluations += outcome.evaluated;
            memo_hits += outcome.memo_hits;
        }
        let shapes: Option<Vec<(f64, f64)>> = needs_shape.then(|| {
            let refs: Vec<&Gene> = candidates.iter().collect();
            let computed = rt.map_isolated(&refs, |g| {
                let circuit = build_gene_circuit(sc, task, g);
                estimator.compiled_shape(&circuit, &g.layout())
            });
            poison_shapes(rt, computed)
        });
        let objs: Vec<Vec<f64>> = (0..candidates.len())
            .map(|i| {
                objectives
                    .iter()
                    .map(|o| match o {
                        Objective::Loss => loss_outcome.as_ref().expect("loss evaluated").scores[i],
                        Objective::Depth => shapes.as_ref().expect("shapes evaluated")[i].0,
                        Objective::TwoQ => shapes.as_ref().expect("shapes evaluated")[i].1,
                    })
                    .collect()
            })
            .collect();

        if let (Some(pre), Some((esc_feats, esc_pred))) = (prescreener.as_mut(), proxy_batch) {
            // The fusion model learns a scalarized view of the same
            // objective vectors NSGA-II selects on, so its ranks stay
            // aligned with multi-objective fitness.
            let actual = scalarize_objectives(&objs);
            if !esc_pred.is_empty() {
                record_rank_quality(rt.metrics(), &esc_pred, &actual);
            }
            for (f, &s) in esc_feats.iter().zip(&actual) {
                pre.observe(f, s);
            }
        }

        // Deterministic NSGA-II survival order; ties inside a front break
        // on the candidate digest, never on map iteration order.
        let keys: Vec<CacheKey> = candidates.iter().map(gene_key).collect();
        let order = selection_order(&objs, &keys);

        // Best-by-primary-objective tracking mirrors the scalar engine:
        // first strict minimum in batch order, updated on strict
        // improvement only.
        let primary: Vec<f64> = objs.iter().map(|o| o[0]).collect();
        let mut best_idx = 0usize;
        for (i, &v) in primary.iter().enumerate().skip(1) {
            if v < primary[best_idx] {
                best_idx = i;
            }
        }
        if best
            .as_ref()
            .map(|(_, s)| primary[best_idx] < *s)
            .unwrap_or(true)
        {
            best = Some((candidates[best_idx].clone(), primary[best_idx]));
        }
        history.push(best.as_ref().expect("just set").1);
        rt.metrics().push_event(GenerationEvent {
            generation,
            best_score: history[generation],
            mean_score: mean_finite(&primary),
            evaluations: loss_outcome.as_ref().map(|o| o.evaluated).unwrap_or(0),
            memo_hits: loss_outcome.as_ref().map(|o| o.memo_hits).unwrap_or(0),
            elapsed: loss_outcome.as_ref().map(|o| o.elapsed).unwrap_or_default(),
        });

        // Front-aware elitism: fold this generation into the
        // cross-generation archive, keep its non-dominated subset, and
        // canonicalize by digest so the archive bytes are identical for
        // any worker count.
        let mut merged: Vec<(Gene, Vec<f64>)> = Vec::with_capacity(archive.len() + objs.len());
        let mut seen = std::collections::HashSet::new();
        for (g, o) in archive.drain(..) {
            if seen.insert(gene_key(&g)) {
                merged.push((g, o));
            }
        }
        for (i, key) in keys.iter().enumerate() {
            if seen.insert(*key) {
                merged.push((candidates[i].clone(), objs[i].clone()));
            }
        }
        let merged_objs: Vec<Vec<f64>> = merged.iter().map(|(_, o)| o.clone()).collect();
        let fronts = non_dominated_sort(&merged_objs);
        archive = fronts
            .first()
            .map(|front| front.iter().map(|&i| merged[i].clone()).collect())
            .unwrap_or_default();
        archive.sort_by_key(|a| gene_key(&a.0));

        rt.metrics().incr(counters::PARETO_GENERATIONS, 1);
        rt.metrics()
            .incr(counters::PARETO_FRONT_SUM, archive.len() as u64);
        let archive_objs: Vec<Vec<f64>> = archive.iter().map(|(_, o)| o.clone()).collect();
        let hv = hypervolume(&normalize_objectives(&archive_objs));
        rt.metrics()
            .incr(counters::PARETO_HV_SUM_MILLI, (hv * 1000.0).round() as u64);

        // Offspring generation draws from the same pool RNG in the same
        // order as the scalar engine.
        let parents: Vec<Gene> = order
            .iter()
            .take(config.parents)
            .map(|&i| candidates[i].clone())
            .collect();
        let mut next = parents.clone();
        for _ in 0..config.mutations {
            let p = parents.as_slice().choose(&mut pool.rng).expect("parents");
            next.push(pool.mutate(p, config.mutation_prob));
        }
        for _ in 0..config.crossovers {
            let a = parents.as_slice().choose(&mut pool.rng).expect("parents");
            let b = parents.as_slice().choose(&mut pool.rng).expect("parents");
            next.push(pool.crossover(a, b));
        }
        while next.len() < config.population {
            next.push(pool.random_gene());
        }
        next.truncate(config.population);
        population = next;

        if rt.should_checkpoint(generation + 1, config.iterations) {
            rt.save_checkpoint(&ParetoState {
                context: resume_context,
                generation: generation + 1,
                population: population.clone(),
                rng: pool.rng.state(),
                archive: archive.clone(),
                best: best.clone(),
                history: history.clone(),
                evaluations,
                memo_hits,
                memo: rt.memo_entries(),
                proxy: prescreener
                    .as_ref()
                    .map(|p| p.snapshot(proxy_evals, proxy_escalations, proxy_dedup_hits)),
            });
        }
        rt.fault_boundary();
    }

    let (best, best_score) = best.expect("at least one iteration");
    ParetoSearchResult {
        front: archive
            .into_iter()
            .map(|(gene, objectives)| FrontPoint { gene, objectives })
            .collect(),
        best,
        best_score,
        history,
        evaluations,
        memo_hits,
        proxy_evals,
        proxy_escalations,
        proxy_dedup_hits,
    }
}

/// Converts isolated compiled-shape results into objective coordinates,
/// poisoning a panicked candidate to `+inf` on both shape axes so it can
/// never dominate a healthy one. Every poisoned candidate is surfaced in
/// telemetry — the generic panic counter plus the dedicated
/// `pareto_shape_poisoned` counter — so a search losing candidates to
/// compile crashes is auditable from `--stats` instead of invisible.
fn poison_shapes(
    rt: &SearchRuntime,
    computed: Vec<Result<(usize, usize), String>>,
) -> Vec<(f64, f64)> {
    let mut poisoned = 0u64;
    let out: Vec<(f64, f64)> = computed
        .into_iter()
        .map(|r| match r {
            Ok((depth, twoq)) => (depth as f64, twoq as f64),
            Err(_) => {
                poisoned += 1;
                (f64::INFINITY, f64::INFINITY)
            }
        })
        .collect();
    if poisoned > 0 {
        rt.metrics().incr(counters::PANICS, poisoned);
        rt.metrics().incr(counters::PARETO_SHAPE_POISONED, poisoned);
    }
    out
}

/// Picks the front point minimizing the estimated error rate on `device`
/// — "one search, many devices": the front is searched once, then matched
/// against each device's calibration fingerprint instead of re-searching.
///
/// The estimate compiles each point's circuit with its searched mapping at
/// `opt_level` and reads `1 − success_rate` from the device's calibration
/// data (gate + readout errors along the compiled circuit). Points whose
/// mapping references physical qubits the device does not have are
/// skipped. Returns `(front index, estimated error)`, ties broken toward
/// the earlier index; `None` when no point fits the device.
pub fn match_front_to_device(
    sc: &SuperCircuit,
    task: &Task,
    front: &[FrontPoint],
    device: &Device,
    opt_level: u8,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, point) in front.iter().enumerate() {
        if device.num_qubits() < sc.num_qubits()
            || point.gene.layout.iter().any(|&p| p >= device.num_qubits())
        {
            continue;
        }
        let circuit = build_gene_circuit(sc, task, &point.gene);
        let t = qns_transpile::transpile(&circuit, device, &point.gene.layout(), opt_level);
        let err = 1.0 - circuit_success_rate(&t.circuit, device, &t.phys_of, true);
        if best.map(|(_, e)| err < e).unwrap_or(true) {
            best = Some((i, err));
        }
    }
    best
}

/// Serializes a front as JSON for `--front-out`: objective names, then one
/// record per point with the candidate digest, architecture, mapping, and
/// objective values (non-finite values become `null`).
pub fn front_json(objectives: &[Objective], front: &[FrontPoint]) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n  \"objectives\": [");
    for (i, o) in objectives.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", o.name()));
    }
    out.push_str("],\n  \"points\": [\n");
    for (i, point) in front.iter().enumerate() {
        let key = gene_key(&point.gene);
        out.push_str("    {");
        out.push_str(&format!("\"digest\": \"{:016x}{:016x}\", ", key.lo, key.hi));
        out.push_str(&format!("\"n_blocks\": {}, ", point.gene.config.n_blocks));
        out.push_str("\"widths\": [");
        for (bi, block) in point.gene.config.widths.iter().enumerate() {
            if bi > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (wi, w) in block.iter().enumerate() {
                if wi > 0 {
                    out.push_str(", ");
                }
                out.push_str(&w.to_string());
            }
            out.push(']');
        }
        out.push_str("], \"layout\": [");
        for (qi, q) in point.gene.layout.iter().enumerate() {
            if qi > 0 {
                out.push_str(", ");
            }
            out.push_str(&q.to_string());
        }
        out.push_str("], \"objectives\": {");
        for (k, o) in objectives.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", o.name(), num(point.objectives[k])));
        }
        out.push_str("}}");
        out.push_str(if i + 1 < front.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            lo: n,
            hi: n.wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    #[test]
    fn shape_poisoning_is_counted_not_silent() {
        // A candidate whose compiled-shape evaluation panics (here: a
        // layout referencing a physical qubit the device does not have)
        // must come back poisoned to +inf on both axes AND be visible in
        // the dedicated telemetry counter — a silently +inf'd candidate
        // used to be indistinguishable from a legitimately deep one.
        use crate::runtime::RuntimeOptions;
        use crate::{EstimatorKind, SubConfig};
        let rt = SearchRuntime::new(RuntimeOptions {
            workers: 2,
            ..Default::default()
        });
        let estimator = Estimator::new(Device::belem(), EstimatorKind::Noiseless, 1);
        let sc = SuperCircuit::new(crate::DesignSpace::new(crate::SpaceKind::U3Cu3), 2, 1);
        let task = Task::vqe(&qns_chem::Molecule::h2());
        let good = Gene {
            config: sc.max_config(),
            layout: vec![0, 1],
        };
        let bad = Gene {
            config: SubConfig {
                n_blocks: 1,
                widths: vec![vec![2]],
            },
            layout: vec![0, 99],
        };
        let genes = [good, bad];
        let refs: Vec<&Gene> = genes.iter().collect();
        let computed = rt.map_isolated(&refs, |g| {
            let circuit = build_gene_circuit(&sc, &task, g);
            estimator.compiled_shape(&circuit, &g.layout())
        });
        let shapes = poison_shapes(&rt, computed);
        assert!(shapes[0].0.is_finite() && shapes[0].1.is_finite());
        assert_eq!(shapes[1], (f64::INFINITY, f64::INFINITY));
        assert_eq!(rt.metrics().counter(counters::PARETO_SHAPE_POISONED), 1);
        assert_eq!(rt.metrics().counter(counters::PANICS), 1);
        assert!(
            rt.metrics().summary().contains("pareto_shape_poisoned"),
            "counter must surface in the --stats summary"
        );
    }

    #[test]
    fn parse_objectives_accepts_lists_and_rejects_garbage() {
        assert_eq!(
            parse_objectives("loss,depth,twoq").unwrap(),
            vec![Objective::Loss, Objective::Depth, Objective::TwoQ]
        );
        assert_eq!(parse_objectives("loss").unwrap(), vec![Objective::Loss]);
        assert!(parse_objectives("").is_err());
        assert!(parse_objectives("loss,loss").is_err());
        assert!(parse_objectives("loss,fidelity").is_err());
    }

    #[test]
    fn dominance_is_strict_and_nan_safe() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(dominates(&[0.5, 2.0], &[1.0, 2.0]));
        assert!(
            !dominates(&[1.0, 2.0], &[1.0, 2.0]),
            "equal never dominates"
        );
        assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0]), "incomparable");
        assert!(!dominates(&[f64::NAN, 0.0], &[1.0, 1.0]));
        assert!(!dominates(&[0.0, 0.0], &[f64::NAN, 1.0]));
        assert!(dominates(&[1.0], &[f64::INFINITY]), "+inf is dominated");
    }

    #[test]
    fn sorting_builds_the_expected_fronts() {
        // (0): front 0; (1) and (2): incomparable front 1; (3): front 2.
        let objs = vec![
            vec![1.0, 1.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
            vec![4.0, 4.0],
        ];
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts, vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn crowding_marks_boundaries_infinite_and_orders_interior() {
        let objs = vec![
            vec![0.0, 4.0],
            vec![1.0, 2.0],
            vec![3.0, 1.5],
            vec![4.0, 0.0],
        ];
        let front = vec![0, 1, 2, 3];
        let d = crowding_distance(&objs, &front);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[2].is_finite());
        // Point 1 sits in the wider gap on the y axis; both accumulate the
        // same normalized x gap.
        assert!(d[1] > d[2], "{} vs {}", d[1], d[2]);
    }

    #[test]
    fn selection_breaks_ties_by_digest_not_input_order() {
        // Two identical objective vectors: same front, and both are
        // boundary points with infinite crowding — only the digest can
        // order them, and it must do so regardless of input order.
        let objs = vec![vec![1.0, 1.0]; 2];
        assert_eq!(selection_order(&objs, &[key(30), key(10)]), vec![1, 0]);
        assert_eq!(selection_order(&objs, &[key(10), key(30)]), vec![0, 1]);
    }

    #[test]
    fn single_objective_selection_is_score_order() {
        let objs: Vec<Vec<f64>> = [3.0, 1.0, 2.0, 0.5].iter().map(|&v| vec![v]).collect();
        let keys: Vec<CacheKey> = (0..4).map(|i| key(i + 1)).collect();
        assert_eq!(selection_order(&objs, &keys), vec![3, 1, 2, 0]);
    }

    #[test]
    fn normalization_maps_poison_to_worst_corner() {
        let pts = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![f64::INFINITY, 20.0]];
        let n = normalize_objectives(&pts);
        assert_eq!(n[0], vec![0.0, 0.0]);
        assert_eq!(n[1], vec![1.0, 1.0]);
        assert_eq!(n[2], vec![1.0, 0.5]);
    }

    #[test]
    fn hypervolume_matches_hand_computed_cases() {
        assert_eq!(hypervolume(&[]), 0.0);
        assert_eq!(hypervolume(&[vec![0.25]]), 0.75);
        assert_eq!(hypervolume(&[vec![0.0, 0.0]]), 1.0);
        assert_eq!(hypervolume(&[vec![0.5, 0.5]]), 0.25);
        // Two incomparable points: 0.25 + two flanking slabs of 0.25.
        let hv = hypervolume(&[vec![0.0, 0.5], vec![0.5, 0.0]]);
        assert!((hv - 0.75).abs() < 1e-12, "hv {hv}");
        // A dominated point adds nothing.
        let hv2 = hypervolume(&[vec![0.0, 0.5], vec![0.5, 0.0], vec![0.6, 0.6]]);
        assert!((hv2 - 0.75).abs() < 1e-12, "hv {hv2}");
        // 3D corner point dominates the whole unit cube.
        assert!((hypervolume(&[vec![0.0, 0.0, 0.0]]) - 1.0).abs() < 1e-12);
        // 3D: a single interior point spans (1-x)(1-y)(1-z).
        let hv3 = hypervolume(&[vec![0.5, 0.5, 0.5]]);
        assert!((hv3 - 0.125).abs() < 1e-12, "hv {hv3}");
    }

    #[test]
    fn front_json_is_shaped_like_json() {
        let front = vec![FrontPoint {
            gene: Gene {
                config: crate::SubConfig {
                    n_blocks: 1,
                    widths: vec![vec![2, 1]],
                },
                layout: vec![0, 2],
            },
            objectives: vec![0.5, f64::INFINITY],
        }];
        let json = front_json(&[Objective::Loss, Objective::Depth], &front);
        assert!(json.contains("\"objectives\": [\"loss\", \"depth\"]"));
        assert!(json.contains("\"loss\": 0.5"));
        assert!(json.contains("\"depth\": null"));
        assert!(json.contains("\"layout\": [0, 2]"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
