//! Iterative magnitude-based quantum pruning with finetuning.

use crate::checkpoint::PruneCheckpoint;
use crate::runtime::{hash_circuit, RuntimeOptions, SearchRuntime};
use crate::train::{eval_task, Split};
use crate::{train_task, Task, TrainConfig};
use qns_circuit::{Circuit, Param};
use qns_runtime::{timers, GenerationEvent, StructuralHasher};
use std::time::Instant;

/// Pruning hyperparameters (paper Section III-D / IV-A: polynomial decay
/// from an initial ratio of 0.05, finetuning at LR 2e-5 — LR raised here
/// because our scaled-down runs take far fewer steps).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PruneConfig {
    /// Final fraction of parameters to remove.
    pub final_ratio: f64,
    /// Starting fraction (the paper uses 0.05).
    pub initial_ratio: f64,
    /// Number of prune→finetune rounds.
    pub steps: usize,
    /// Finetuning epochs after each pruning round.
    pub finetune_epochs: usize,
    /// Finetuning learning rate.
    pub lr: f64,
    /// RNG seed for finetuning batches.
    pub seed: u64,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            final_ratio: 0.3,
            initial_ratio: 0.05,
            steps: 4,
            finetune_epochs: 3,
            lr: 5e-3,
            seed: 0,
        }
    }
}

/// The polynomial pruning-ratio schedule of Zhu & Gupta used by the paper:
/// `r(t) = r_f + (r_i − r_f) · (1 − t)³` for progress `t ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// use quantumnas::polynomial_ratio;
/// assert!((polynomial_ratio(0.05, 0.5, 0.0) - 0.05).abs() < 1e-12);
/// assert!((polynomial_ratio(0.05, 0.5, 1.0) - 0.5).abs() < 1e-12);
/// ```
pub fn polynomial_ratio(initial: f64, fin: f64, progress: f64) -> f64 {
    let p = progress.clamp(0.0, 1.0);
    fin + (initial - fin) * (1.0 - p).powi(3)
}

/// The outcome of iterative pruning.
#[derive(Clone, Debug)]
pub struct PruneResult {
    /// The circuit with pruned parameter slots frozen to `Fixed(0)`.
    pub circuit: Circuit,
    /// Finetuned parameters (pruned entries zeroed).
    pub params: Vec<f64>,
    /// `mask[i]` is `true` when parameter `i` survived.
    pub mask: Vec<bool>,
    /// Ratio actually pruned.
    pub pruned_ratio: f64,
    /// Noise-free validation loss after pruning + finetuning.
    pub final_loss: f64,
}

/// Normalizes an angle to `[-π, π)` — the magnitude used for ranking.
fn normalized_angle(v: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut r = v.rem_euclid(two_pi);
    if r >= std::f64::consts::PI {
        r -= two_pi;
    }
    r
}

/// Freezes pruned parameter slots to `Fixed(0.0)` so compilation gets the
/// Table II gate-count reductions.
fn apply_mask(circuit: &Circuit, mask: &[bool]) -> Circuit {
    let mut out = circuit.map_train_params(|i| {
        if mask[i] {
            Param::Train(i)
        } else {
            Param::Fixed(0.0)
        }
    });
    out.set_num_train_params(circuit.num_train_params());
    out
}

/// Iterative magnitude pruning (paper Section III-D): rank all normalized
/// rotation angles, zero the smallest, finetune, and repeat with the
/// polynomially growing ratio until `final_ratio` is reached.
///
/// Only parameters the circuit actually references are candidates; the
/// mask is re-derived from scratch each round (cumulative magnitude
/// ranking), matching the reference pruning recipe.
///
/// # Panics
///
/// Panics if ratios are outside `[0, 1)` or `params` is shorter than the
/// circuit's parameter space.
pub fn iterative_prune(
    circuit: &Circuit,
    params: &[f64],
    task: &Task,
    config: &PruneConfig,
) -> PruneResult {
    let rt = SearchRuntime::new(RuntimeOptions::default());
    iterative_prune_rt(circuit, params, task, config, &rt)
}

/// [`iterative_prune`] on a caller-owned [`SearchRuntime`]: each
/// prune→finetune round lands in the shared event log (round index, loss,
/// wall time) and validation evaluation time is folded into the simulate
/// histogram, so a full pipeline run reports one coherent telemetry
/// stream.
pub fn iterative_prune_rt(
    circuit: &Circuit,
    params: &[f64],
    task: &Task,
    config: &PruneConfig,
    rt: &SearchRuntime,
) -> PruneResult {
    assert!(
        (0.0..1.0).contains(&config.final_ratio) && (0.0..1.0).contains(&config.initial_ratio),
        "ratios must be in [0, 1)"
    );
    assert!(
        params.len() >= circuit.num_train_params(),
        "parameter vector too short"
    );
    let referenced = circuit.referenced_train_indices();
    // Hash the starting parameters before they are shadowed: they are part
    // of the pruning trajectory's identity.
    let resume_context = {
        let mut h = StructuralHasher::new();
        h.write_str("iterative-prune");
        hash_circuit(&mut h, circuit);
        h.write_str(task.name());
        h.write_usize(task.num_qubits());
        h.write_f64(config.final_ratio);
        h.write_f64(config.initial_ratio);
        h.write_usize(config.steps);
        h.write_usize(config.finetune_epochs);
        h.write_f64(config.lr);
        h.write_u64(config.seed);
        h.write_usize(params.len());
        for &p in params {
            h.write_f64(p);
        }
        h.finish()
    };
    let mut params = params.to_vec();
    let mut mask = vec![true; params.len()];
    let mut final_loss = f64::NAN;
    let mut start_step = 0usize;

    if let Some(ck) = rt.load_checkpoint::<PruneCheckpoint>() {
        let compatible = ck.context == resume_context
            && ck.round <= config.steps
            && ck.params.len() == params.len()
            && ck.mask.len() == mask.len();
        if compatible {
            start_step = ck.round;
            params = ck.params;
            mask = ck.mask;
            final_loss = ck.final_loss;
            rt.note_resumed();
        } else {
            rt.note_checkpoint_rejected();
        }
    }

    for step in start_step..config.steps {
        // lint:allow(wallclock) — round timing feeds progress logs, not results
        let round_start = Instant::now();
        let progress = (step + 1) as f64 / config.steps as f64;
        let ratio = polynomial_ratio(config.initial_ratio, config.final_ratio, progress);
        // Rank referenced parameters by |normalized angle|.
        let mut ranked: Vec<usize> = referenced.clone();
        ranked.sort_by(|&a, &b| {
            normalized_angle(params[a])
                .abs()
                .partial_cmp(&normalized_angle(params[b]).abs())
                .expect("finite angles")
        });
        let n_prune = ((referenced.len() as f64) * ratio).round() as usize;
        for m in mask.iter_mut() {
            *m = true;
        }
        for &i in ranked.iter().take(n_prune) {
            mask[i] = false;
            params[i] = 0.0;
        }
        // Finetune the survivors.
        let masked_circuit = apply_mask(circuit, &mask);
        let cfg = TrainConfig {
            epochs: config.finetune_epochs,
            lr: config.lr,
            seed: config.seed ^ step as u64,
            ..Default::default()
        };
        let (new_params, _) = train_task(&masked_circuit, task, &cfg, Some(params.clone()));
        params = new_params;
        for (i, m) in mask.iter().enumerate() {
            if !m {
                params[i] = 0.0;
            }
        }
        let (loss, _) = rt.metrics().time(timers::SIMULATE, || {
            eval_task(&masked_circuit, &params, task, Split::Valid)
        });
        final_loss = loss;
        rt.metrics().push_event(GenerationEvent {
            generation: step,
            best_score: loss,
            mean_score: loss,
            evaluations: 1,
            memo_hits: 0,
            elapsed: round_start.elapsed(),
        });

        if rt.should_checkpoint(step + 1, config.steps) {
            rt.save_checkpoint(&PruneCheckpoint {
                context: resume_context,
                round: step + 1,
                params: params.clone(),
                mask: mask.clone(),
                final_loss,
            });
        }
        rt.fault_boundary();
    }

    let pruned = mask.iter().filter(|&&m| !m).count();
    let masked_circuit = apply_mask(circuit, &mask);
    PruneResult {
        circuit: masked_circuit,
        params,
        pruned_ratio: pruned as f64 / referenced.len().max(1) as f64,
        mask,
        final_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignSpace, SpaceKind, SuperCircuit};

    #[test]
    fn polynomial_schedule_is_monotone() {
        let mut prev = 0.0;
        for i in 0..=10 {
            let r = polynomial_ratio(0.05, 0.5, i as f64 / 10.0);
            assert!(r >= prev - 1e-12);
            prev = r;
        }
    }

    #[test]
    fn pruning_zeroes_smallest_angles() {
        let task = Task::qml_digits(&[1, 8], 10, 4, 5);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 1);
        let encoder = match &task {
            Task::Qml { encoder, .. } => encoder.clone(),
            _ => unreachable!(),
        };
        let circuit = sc.build(&sc.max_config(), Some(&encoder));
        // Parameters with clearly separated magnitudes.
        let n = circuit.num_train_params();
        let params: Vec<f64> = (0..n).map(|i| 0.01 + 0.1 * i as f64).collect();
        let cfg = PruneConfig {
            final_ratio: 0.25,
            steps: 1,
            finetune_epochs: 0,
            ..Default::default()
        };
        let result = iterative_prune(&circuit, &params, &task, &cfg);
        assert!((result.pruned_ratio - 0.25).abs() < 0.05);
        // The smallest-magnitude parameters are the pruned ones.
        let pruned: Vec<usize> = (0..n).filter(|&i| !result.mask[i]).collect();
        let max_pruned = pruned.iter().map(|&i| params[i]).fold(0.0, f64::max);
        let min_kept = (0..n)
            .filter(|&i| result.mask[i])
            .map(|i| params[i])
            .fold(f64::INFINITY, f64::min);
        assert!(max_pruned <= min_kept + 1e-9);
    }

    #[test]
    fn pruned_circuit_freezes_slots() {
        let task = Task::qml_digits(&[1, 8], 10, 4, 6);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 1);
        let encoder = match &task {
            Task::Qml { encoder, .. } => encoder.clone(),
            _ => unreachable!(),
        };
        let circuit = sc.build(&sc.max_config(), Some(&encoder));
        let params = vec![0.5; circuit.num_train_params()];
        let cfg = PruneConfig {
            final_ratio: 0.4,
            steps: 2,
            finetune_epochs: 1,
            ..Default::default()
        };
        let result = iterative_prune(&circuit, &params, &task, &cfg);
        let kept = result.circuit.referenced_train_indices().len();
        let expected = result.mask.iter().filter(|&&m| m).count();
        assert_eq!(kept, expected);
        // Pruned parameters are zero.
        for (i, &m) in result.mask.iter().enumerate() {
            if !m {
                assert_eq!(result.params[i], 0.0);
            }
        }
    }

    #[test]
    fn pruning_reduces_compiled_gate_count() {
        // The Table II effect: zeroed U3 angles compile to fewer gates.
        let task = Task::qml_digits(&[1, 8], 10, 4, 7);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 1);
        let encoder = match &task {
            Task::Qml { encoder, .. } => encoder.clone(),
            _ => unreachable!(),
        };
        let circuit = sc.build(&sc.max_config(), Some(&encoder));
        let params = vec![0.7; circuit.num_train_params()];
        let cfg = PruneConfig {
            final_ratio: 0.5,
            steps: 1,
            finetune_epochs: 0,
            ..Default::default()
        };
        let result = iterative_prune(&circuit, &params, &task, &cfg);
        let device = qns_noise::Device::yorktown();
        let layout = qns_transpile::Layout::trivial(4);
        let before = qns_transpile::transpile(&circuit, &device, &layout, 2);
        let after = qns_transpile::transpile(&result.circuit, &device, &layout, 2);
        assert!(
            after.circuit.num_ops() < before.circuit.num_ops(),
            "pruning should shrink the compiled circuit: {} vs {}",
            after.circuit.num_ops(),
            before.circuit.num_ops()
        );
    }

    #[test]
    #[should_panic(expected = "ratios")]
    fn invalid_ratio_panics() {
        let task = Task::qml_digits(&[1, 8], 5, 4, 0);
        let c = Circuit::new(4);
        let cfg = PruneConfig {
            final_ratio: 1.5,
            ..Default::default()
        };
        let _ = iterative_prune(&c, &[], &task, &cfg);
    }
}
