//! Noise-adaptive evolutionary co-search of SubCircuit and qubit mapping.

use crate::checkpoint::SearchCheckpoint;
use crate::runtime::{gene_key, search_context_key, RuntimeOptions, SearchRuntime};
use crate::{Estimator, SubConfig, SuperCircuit, Task};
use qns_proxy::{candidate_seed, compute_features, Prescreener, ProxyFeatures, ProxyOptions};
use qns_runtime::{counters, GenerationEvent, Metrics, StructuralHasher};
use qns_transpile::Layout;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One individual: a SubCircuit architecture plus a qubit mapping — the
/// concatenated gene of paper Section III-C.
#[derive(Clone, Debug, PartialEq)]
pub struct Gene {
    /// SubCircuit architecture (depth + layer widths).
    pub config: SubConfig,
    /// Logical→physical qubit mapping.
    pub layout: Vec<usize>,
}

impl Gene {
    /// The mapping as a transpiler [`Layout`].
    pub fn layout(&self) -> Layout {
        Layout::from_vec(self.layout.clone())
    }
}

/// Evolution hyperparameters. The paper uses 40 iterations, population 40,
/// 10 parents, 20 mutations at probability 0.4, and 10 crossovers.
#[derive(Clone, Debug, PartialEq)]
pub struct EvoConfig {
    /// Number of generations.
    pub iterations: usize,
    /// Population size (kept constant).
    pub population: usize,
    /// Survivors per generation.
    pub parents: usize,
    /// Mutated offspring per generation.
    pub mutations: usize,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// Crossover offspring per generation.
    pub crossovers: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional cap on trainable parameters; genes over budget are
    /// heavily penalized (used for the accuracy-vs-#parameters sweeps).
    pub max_params: Option<usize>,
    /// Search over architectures (`false` freezes the seed architecture —
    /// the paper's "mapping search only" ablation).
    pub search_arch: bool,
    /// Search over qubit mappings (`false` freezes the trivial layout —
    /// the paper's "circuit search only" ablation).
    pub search_layout: bool,
    /// Evaluation-runtime knobs (worker count, caching).
    pub runtime: RuntimeOptions,
    /// Training-free proxy prescreening (`--proxy`); disabled by default,
    /// in which case the search path is bitwise-identical to the engine
    /// without the prescreener.
    pub proxy: ProxyOptions,
}

impl Default for EvoConfig {
    fn default() -> Self {
        EvoConfig {
            iterations: 40,
            population: 40,
            parents: 10,
            mutations: 20,
            mutation_prob: 0.4,
            crossovers: 10,
            seed: 0,
            max_params: None,
            search_arch: true,
            search_layout: true,
            runtime: RuntimeOptions::default(),
            proxy: ProxyOptions::default(),
        }
    }
}

impl EvoConfig {
    /// A scaled-down configuration for quick experiments.
    pub fn fast(seed: u64) -> Self {
        EvoConfig {
            iterations: 8,
            population: 12,
            parents: 4,
            mutations: 5,
            crossovers: 3,
            mutation_prob: 0.4,
            seed,
            max_params: None,
            search_arch: true,
            search_layout: true,
            runtime: RuntimeOptions::default(),
            proxy: ProxyOptions::default(),
        }
    }
}

/// The outcome of a search run.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Best gene found.
    pub best: Gene,
    /// Its estimator score (lower is better).
    pub best_score: f64,
    /// Best-so-far score after each iteration — the optimization curve of
    /// paper Figure 22.
    pub history: Vec<f64>,
    /// Genes actually evaluated (transpiled + simulated). Memoized repeats
    /// are counted in [`SearchResult::memo_hits`], not here.
    pub evaluations: usize,
    /// Candidates answered from the score memo without re-evaluation.
    pub memo_hits: usize,
    /// Candidates whose training-free proxy features were computed
    /// (zero when prescreening is off).
    pub proxy_evals: u64,
    /// Candidates the prescreener escalated to full estimator scoring
    /// (zero when prescreening is off).
    pub proxy_escalations: u64,
    /// Structurally-duplicate offspring skipped within a generation before
    /// any scoring (zero when prescreening is off).
    pub proxy_dedup_hits: u64,
}

impl SearchResult {
    /// Total candidates considered: real evaluations plus memoized hits.
    /// This is the search *budget* — it matches across runs that differ
    /// only in caching.
    pub fn candidates(&self) -> usize {
        self.evaluations + self.memo_hits
    }
}

pub(crate) struct GenePool<'a> {
    sc: &'a SuperCircuit,
    n_phys: usize,
    pub(crate) rng: StdRng,
    /// Frozen architecture (mapping-only search) when set.
    fixed_arch: Option<SubConfig>,
    /// Frozen layout (circuit-only search) when set.
    fixed_layout: Option<Vec<usize>>,
}

impl<'a> GenePool<'a> {
    /// The pool the evolutionary loops draw from: RNG derived from the
    /// config seed, frozen components taken from the first seed gene when
    /// an ablation disables part of the search (so ablations stay
    /// parameter-matched), else the maximal architecture / trivial layout.
    /// Shared by the scalar and Pareto engines so their trajectories are
    /// bitwise-comparable.
    pub(crate) fn for_evolution(
        sc: &'a SuperCircuit,
        n_phys: usize,
        config: &EvoConfig,
        seeds: &[Gene],
    ) -> Self {
        GenePool {
            sc,
            n_phys,
            rng: StdRng::seed_from_u64(config.seed ^ 0xE70),
            fixed_arch: if config.search_arch {
                None
            } else {
                Some(
                    seeds
                        .first()
                        .map(|g| g.config.clone())
                        .unwrap_or_else(|| sc.max_config()),
                )
            },
            fixed_layout: if config.search_layout {
                None
            } else {
                Some(
                    seeds
                        .first()
                        .map(|g| g.layout.clone())
                        .unwrap_or_else(|| (0..sc.num_qubits()).collect()),
                )
            },
        }
    }

    pub(crate) fn random_gene(&mut self) -> Gene {
        let n_qubits = self.sc.num_qubits();
        let n_blocks = self.sc.num_blocks();
        let n_layers = self.sc.space().layers_per_block().len();
        let config = match &self.fixed_arch {
            Some(cfg) => cfg.clone(),
            None => SubConfig {
                n_blocks: self.rng.gen_range(1..=n_blocks),
                widths: (0..n_blocks)
                    .map(|_| {
                        (0..n_layers)
                            .map(|_| self.rng.gen_range(1..=n_qubits))
                            .collect()
                    })
                    .collect(),
            },
        };
        let layout = match &self.fixed_layout {
            Some(l) => l.clone(),
            None => {
                let mut phys: Vec<usize> = (0..self.n_phys).collect();
                phys.shuffle(&mut self.rng);
                phys.truncate(n_qubits);
                phys
            }
        };
        Gene { config, layout }
    }

    pub(crate) fn mutate(&mut self, gene: &Gene, prob: f64) -> Gene {
        let n_qubits = self.sc.num_qubits();
        let mut out = gene.clone();
        if self.fixed_arch.is_none() {
            // Depth gene.
            if self.rng.gen_bool(prob) {
                out.config.n_blocks = self.rng.gen_range(1..=self.sc.num_blocks());
            }
            // Width genes.
            for block in &mut out.config.widths {
                for w in block.iter_mut() {
                    if self.rng.gen_bool(prob) {
                        *w = self.rng.gen_range(1..=n_qubits);
                    }
                }
            }
        }
        if self.fixed_layout.is_some() {
            return out;
        }
        // Mapping genes: swap two positions or rehome one qubit.
        for i in 0..out.layout.len() {
            if !self.rng.gen_bool(prob) {
                continue;
            }
            if self.rng.gen_bool(0.5) && out.layout.len() > 1 {
                let j = self.rng.gen_range(0..out.layout.len());
                out.layout.swap(i, j);
            } else {
                let unused: Vec<usize> = (0..self.n_phys)
                    .filter(|p| !out.layout.contains(p))
                    .collect();
                if let Some(&p) = unused.as_slice().choose(&mut self.rng) {
                    out.layout[i] = p;
                }
            }
        }
        out
    }

    pub(crate) fn crossover(&mut self, a: &Gene, b: &Gene) -> Gene {
        let mut config = a.config.clone();
        if self.rng.gen_bool(0.5) {
            config.n_blocks = b.config.n_blocks;
        }
        for (bi, block) in config.widths.iter_mut().enumerate() {
            for (li, w) in block.iter_mut().enumerate() {
                if self.rng.gen_bool(0.5) {
                    *w = b.config.widths[bi][li];
                }
            }
        }
        // Mapping crossover with duplicate repair.
        let mut layout = Vec::with_capacity(a.layout.len());
        for i in 0..a.layout.len() {
            let pick = if self.rng.gen_bool(0.5) {
                a.layout[i]
            } else {
                b.layout[i]
            };
            layout.push(pick);
        }
        let mut seen = std::collections::HashSet::new();
        for slot in layout.iter_mut() {
            if !seen.insert(*slot) {
                let replacement = (0..self.n_phys)
                    .find(|p| !seen.contains(p))
                    .expect("device has enough qubits");
                *slot = replacement;
                seen.insert(replacement);
            }
        }
        Gene { config, layout }
    }
}

/// The logical circuit a gene denotes under the task's encoder.
pub(crate) fn build_gene_circuit(
    sc: &SuperCircuit,
    task: &Task,
    gene: &Gene,
) -> qns_circuit::Circuit {
    match task {
        Task::Qml { encoder, .. } => sc.build(&gene.config, Some(encoder)),
        Task::Vqe { .. } => sc.build(&gene.config, None),
    }
}

pub(crate) fn score_gene(
    sc: &SuperCircuit,
    shared_params: &[f64],
    task: &Task,
    estimator: &Estimator,
    gene: &Gene,
    max_params: Option<usize>,
) -> f64 {
    let circuit = build_gene_circuit(sc, task, gene);
    if let Some(cap) = max_params {
        if circuit.referenced_train_indices().len() > cap {
            return 1e9;
        }
    }
    estimator.score(&circuit, shared_params, task, &gene.layout())
}

/// Folds one generation's proxy-vs-full rank agreement into the metrics:
/// a Spearman correlation as `(rho + 1) * 1000` milli-units (mean derivable
/// from `PROXY_RANK_SUM_MILLI / PROXY_RANK_OBS`), plus a log2-bucketed
/// disagreement counter `proxy_rank_bNN` so the spread survives averaging.
pub(crate) fn record_rank_quality(metrics: &Metrics, predicted: &[f64], actual: &[f64]) {
    let (xs, ys): (Vec<f64>, Vec<f64>) = predicted
        .iter()
        .zip(actual)
        .filter(|(p, a)| p.is_finite() && a.is_finite())
        .map(|(&p, &a)| (p, a))
        .unzip();
    if xs.len() < 2 {
        return;
    }
    let rho = qns_ml::spearman(&xs, &ys);
    if !rho.is_finite() {
        return;
    }
    metrics.incr(counters::PROXY_RANK_OBS, 1);
    metrics.incr(
        counters::PROXY_RANK_SUM_MILLI,
        ((rho + 1.0) * 1000.0).round() as u64,
    );
    let disagreement = ((1.0 - rho) * 1000.0).round() as u64;
    let bucket = (64 - disagreement.leading_zeros() as u64).min(11);
    metrics.incr(&format!("proxy_rank_b{bucket:02}"), 1);
}

/// Seed population shared by the scalar and Pareto engines: canonicalize
/// by structural digest so duplicated seeds (common when several ablations
/// pass the same human design) occupy one slot, then top up with unique
/// random genes. Retries are bounded: tiny design spaces may not hold
/// `population` distinct genes, in which case duplicates are admitted
/// rather than looping forever.
pub(crate) fn seed_population(
    pool: &mut GenePool,
    config: &EvoConfig,
    seeds: &[Gene],
) -> Vec<Gene> {
    let mut population: Vec<Gene> = Vec::with_capacity(config.population);
    let mut keys = std::collections::HashSet::new();
    for seed in seeds.iter().take(config.population) {
        if keys.insert(gene_key(seed)) {
            population.push(seed.clone());
        }
    }
    let mut attempts = 0usize;
    while population.len() < config.population {
        let g = pool.random_gene();
        attempts += 1;
        if keys.insert(gene_key(&g)) || attempts > 64 * config.population {
            population.push(g);
        }
    }
    population
}

/// The common prefix of the scalar and Pareto resume-context digests:
/// scoring context, evolution hyperparameters, proxy settings, and the
/// seed population. The Pareto engine appends its objective vector before
/// finishing, so scalar and multi-objective snapshots can never satisfy
/// each other's context check even if the wire kinds were ignored.
pub(crate) fn evo_context_hasher(
    context: qns_runtime::CacheKey,
    config: &EvoConfig,
    seeds: &[Gene],
) -> StructuralHasher {
    let mut h = StructuralHasher::new();
    h.write_u64(context.lo);
    h.write_u64(context.hi);
    h.write_usize(config.iterations);
    h.write_usize(config.population);
    h.write_usize(config.parents);
    h.write_usize(config.mutations);
    h.write_f64(config.mutation_prob);
    h.write_usize(config.crossovers);
    h.write_u64(config.seed);
    h.write_u64(config.search_arch as u64);
    h.write_u64(config.search_layout as u64);
    h.write_u64(config.proxy.enabled as u64);
    h.write_u64(config.proxy.keep.to_bits());
    h.write_usize(config.proxy.warmup);
    h.write_usize(seeds.len());
    for seed in seeds {
        h.write_u64(gene_key(seed).lo);
        h.write_u64(gene_key(seed).hi);
    }
    h
}

/// The paper's evolutionary co-search: a genetic algorithm over
/// (architecture, mapping) genes, scored with SuperCircuit-inherited
/// parameters on a noise-aware estimator.
///
/// # Panics
///
/// Panics if the device is smaller than the SuperCircuit or the population
/// is not larger than the parent count.
pub fn evolutionary_search(
    sc: &SuperCircuit,
    shared_params: &[f64],
    task: &Task,
    estimator: &Estimator,
    config: &EvoConfig,
) -> SearchResult {
    evolutionary_search_seeded(sc, shared_params, task, estimator, config, &[])
}

/// [`evolutionary_search`] with caller-provided seed genes injected into
/// the initial population (e.g. the human design, so the search starts
/// from a known-good architecture at a parameter budget).
pub fn evolutionary_search_seeded(
    sc: &SuperCircuit,
    shared_params: &[f64],
    task: &Task,
    estimator: &Estimator,
    config: &EvoConfig,
    seeds: &[Gene],
) -> SearchResult {
    let rt = SearchRuntime::new(config.runtime.clone());
    evolutionary_search_seeded_rt(sc, shared_params, task, estimator, config, seeds, &rt)
}

/// [`evolutionary_search_seeded`] on a caller-owned [`SearchRuntime`], so
/// several searches (e.g. the pipeline's stages, or a device sweep) can
/// share one worker pool, transpile cache, and metrics registry.
#[allow(clippy::too_many_arguments)]
pub fn evolutionary_search_seeded_rt(
    sc: &SuperCircuit,
    shared_params: &[f64],
    task: &Task,
    estimator: &Estimator,
    config: &EvoConfig,
    seeds: &[Gene],
    rt: &SearchRuntime,
) -> SearchResult {
    assert!(
        estimator.device().num_qubits() >= sc.num_qubits(),
        "device too small"
    );
    assert!(
        config.parents >= 2 && config.parents < config.population,
        "need 2 <= parents < population"
    );
    let estimator = rt.instrument_estimator(estimator);
    let context = search_context_key(&estimator, task, shared_params, config.max_params);
    let mut pool = GenePool::for_evolution(sc, estimator.device().num_qubits(), config, seeds);
    let mut population = seed_population(&mut pool, config, seeds);
    let mut history = Vec::with_capacity(config.iterations);
    let mut evaluations = 0usize;
    let mut memo_hits = 0usize;
    let mut best: Option<(Gene, f64)> = None;
    let mut start_generation = 0usize;
    let mut prescreener: Option<Prescreener> =
        config.proxy.enabled.then(|| Prescreener::new(config.proxy));
    let mut proxy_evals = 0u64;
    let mut proxy_escalations = 0u64;
    let mut proxy_dedup_hits = 0u64;

    // Everything that shapes the evolution trajectory goes into the
    // snapshot's context digest: the scoring context plus the evolution
    // hyperparameters and the seed population. A snapshot written under
    // any other configuration is rejected rather than resumed.
    let resume_context = evo_context_hasher(context, config, seeds).finish();
    if let Some(ck) = rt.load_checkpoint::<SearchCheckpoint>() {
        let compatible = ck.context == resume_context
            && ck.generation <= config.iterations
            && ck.population.len() == config.population
            && ck.proxy.is_some() == config.proxy.enabled;
        if compatible {
            start_generation = ck.generation;
            population = ck.population;
            pool.rng = StdRng::from_state(ck.rng);
            best = ck.best;
            history = ck.history;
            evaluations = ck.evaluations;
            memo_hits = ck.memo_hits;
            rt.restore_memo(&ck.memo);
            if let Some(state) = &ck.proxy {
                prescreener = Some(Prescreener::from_state(config.proxy, state));
                proxy_evals = state.proxy_evals;
                proxy_escalations = state.proxy_escalations;
                proxy_dedup_hits = state.proxy_dedup_hits;
            }
            rt.note_resumed();
        } else {
            rt.note_checkpoint_rejected();
        }
    }

    for generation in start_generation..config.iterations {
        // With prescreening on, only a proxy-ranked subset of the
        // generation reaches the estimator; with it off, `candidates` is
        // the whole population and the loop body is unchanged.
        let (candidates, proxy_batch) = match prescreener.as_ref() {
            None => (std::mem::take(&mut population), None),
            Some(pre) => {
                // Structurally-identical offspring collapse to one slot
                // before any scoring — the digest is the same one the
                // score memo keys on.
                let mut uniq: Vec<usize> = Vec::with_capacity(population.len());
                let mut keys = Vec::with_capacity(population.len());
                let mut seen = std::collections::HashSet::new();
                for (i, g) in population.iter().enumerate() {
                    let key = gene_key(g);
                    if seen.insert(key) {
                        uniq.push(i);
                        keys.push(key);
                    }
                }
                let dups = (population.len() - uniq.len()) as u64;
                if dups > 0 {
                    rt.metrics().incr(counters::PROXY_DEDUP_HITS, dups);
                }
                proxy_dedup_hits += dups;

                let missing: Vec<usize> = (0..uniq.len())
                    .filter(|&u| pre.cached_features(keys[u]).is_none())
                    .collect();
                let missing_genes: Vec<&Gene> =
                    missing.iter().map(|&u| &population[uniq[u]]).collect();
                let computed = rt.map_isolated(&missing_genes, |g| {
                    let circuit = build_gene_circuit(sc, task, g);
                    let key = gene_key(g);
                    let cx = estimator.proxy_context(
                        &circuit,
                        &g.layout,
                        candidate_seed(config.seed, key.lo, key.hi),
                    );
                    compute_features(&cx)
                });
                let mut proxy_panics = 0u64;
                for (&u, r) in missing.iter().zip(computed) {
                    let feats = match r {
                        Ok(f) => f,
                        // A panicked proxy poisons its features (ranked
                        // last) instead of killing the search.
                        Err(_) => {
                            proxy_panics += 1;
                            ProxyFeatures::poisoned()
                        }
                    };
                    pre.record_features(keys[u], feats);
                }
                proxy_evals += missing.len() as u64;
                rt.metrics()
                    .incr(counters::PROXY_EVALS, missing.len() as u64);
                if proxy_panics > 0 {
                    rt.metrics().incr(counters::PANICS, proxy_panics);
                }

                let feats: Vec<ProxyFeatures> = keys
                    .iter()
                    .map(|&k| pre.cached_features(k).expect("recorded above"))
                    .collect();
                // Warmup generations escalate every unique candidate so
                // the fusion model trains before it gates anything.
                let (escalated, predicted) = if generation < pre.options().warmup {
                    ((0..uniq.len()).collect::<Vec<usize>>(), Vec::new())
                } else {
                    let predicted: Vec<f64> = feats.iter().map(|f| pre.predict(f)).collect();
                    let count = pre.escalation_count(config.population, config.parents, uniq.len());
                    (pre.select(&predicted, count), predicted)
                };
                proxy_escalations += escalated.len() as u64;
                rt.metrics()
                    .incr(counters::PROXY_ESCALATIONS, escalated.len() as u64);
                let candidates: Vec<Gene> = escalated
                    .iter()
                    .map(|&u| population[uniq[u]].clone())
                    .collect();
                let esc_feats: Vec<ProxyFeatures> = escalated.iter().map(|&u| feats[u]).collect();
                let esc_pred: Vec<f64> = if predicted.is_empty() {
                    Vec::new()
                } else {
                    escalated.iter().map(|&u| predicted[u]).collect()
                };
                population.clear();
                (candidates, Some((esc_feats, esc_pred)))
            }
        };
        let outcome = rt.score_batch(context, &candidates, |g| {
            score_gene(sc, shared_params, task, &estimator, g, config.max_params)
        });
        evaluations += outcome.evaluated;
        memo_hits += outcome.memo_hits;
        if let (Some(pre), Some((esc_feats, esc_pred))) = (prescreener.as_mut(), proxy_batch) {
            // Rank quality vs the full scores (absent during warmup, when
            // nothing was gated), then feed every full score back into the
            // fusion model in deterministic batch order.
            if !esc_pred.is_empty() {
                record_rank_quality(rt.metrics(), &esc_pred, &outcome.scores);
            }
            for (f, &s) in esc_feats.iter().zip(&outcome.scores) {
                pre.observe(f, s);
            }
        }
        let mut scored: Vec<(Gene, f64)> = candidates
            .into_iter()
            .zip(outcome.scores.iter().copied())
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
        if best.as_ref().map(|(_, s)| scored[0].1 < *s).unwrap_or(true) {
            best = Some(scored[0].clone());
        }
        history.push(best.as_ref().expect("just set").1);
        rt.metrics().push_event(GenerationEvent {
            generation,
            best_score: history[generation],
            mean_score: mean_finite(&outcome.scores),
            evaluations: outcome.evaluated,
            memo_hits: outcome.memo_hits,
            elapsed: outcome.elapsed,
        });

        let parents: Vec<Gene> = scored
            .into_iter()
            .take(config.parents)
            .map(|(g, _)| g)
            .collect();
        let mut next = parents.clone();
        for _ in 0..config.mutations {
            let p = parents.as_slice().choose(&mut pool.rng).expect("parents");
            next.push(pool.mutate(p, config.mutation_prob));
        }
        for _ in 0..config.crossovers {
            let a = parents.as_slice().choose(&mut pool.rng).expect("parents");
            let b = parents.as_slice().choose(&mut pool.rng).expect("parents");
            next.push(pool.crossover(a, b));
        }
        while next.len() < config.population {
            next.push(pool.random_gene());
        }
        next.truncate(config.population);
        population = next;

        // Snapshot the state *entering* generation + 1 at the boundary,
        // then give the fault plan its chance to kill the process — the
        // order mirrors a real crash landing between two generations.
        if rt.should_checkpoint(generation + 1, config.iterations) {
            rt.save_checkpoint(&SearchCheckpoint {
                context: resume_context,
                generation: generation + 1,
                population: population.clone(),
                rng: pool.rng.state(),
                best: best.clone(),
                history: history.clone(),
                evaluations,
                memo_hits,
                memo: rt.memo_entries(),
                proxy: prescreener
                    .as_ref()
                    .map(|p| p.snapshot(proxy_evals, proxy_escalations, proxy_dedup_hits)),
            });
        }
        rt.fault_boundary();
    }

    let (best, best_score) = best.expect("at least one iteration");
    SearchResult {
        best,
        best_score,
        history,
        evaluations,
        memo_hits,
        proxy_evals,
        proxy_escalations,
        proxy_dedup_hits,
    }
}

/// The random-search baseline of paper Figures 21-22: the same evaluation
/// budget spent on uniformly random genes.
pub fn random_search(
    sc: &SuperCircuit,
    shared_params: &[f64],
    task: &Task,
    estimator: &Estimator,
    config: &EvoConfig,
) -> SearchResult {
    let rt = SearchRuntime::new(config.runtime.clone());
    random_search_rt(sc, shared_params, task, estimator, config, &rt)
}

/// [`random_search`] on a caller-owned [`SearchRuntime`].
pub fn random_search_rt(
    sc: &SuperCircuit,
    shared_params: &[f64],
    task: &Task,
    estimator: &Estimator,
    config: &EvoConfig,
    rt: &SearchRuntime,
) -> SearchResult {
    let estimator = rt.instrument_estimator(estimator);
    let context = search_context_key(&estimator, task, shared_params, config.max_params);
    let mut pool = GenePool {
        sc,
        n_phys: estimator.device().num_qubits(),
        rng: StdRng::seed_from_u64(config.seed ^ 0x4A4D),
        fixed_arch: if config.search_arch {
            None
        } else {
            Some(sc.max_config())
        },
        fixed_layout: if config.search_layout {
            None
        } else {
            Some((0..sc.num_qubits()).collect())
        },
    };
    let mut best: Option<(Gene, f64)> = None;
    let mut history = Vec::with_capacity(config.iterations);
    let mut evaluations = 0usize;
    let mut memo_hits = 0usize;
    for generation in 0..config.iterations {
        let batch: Vec<Gene> = (0..config.population).map(|_| pool.random_gene()).collect();
        let outcome = rt.score_batch(context, &batch, |g| {
            score_gene(sc, shared_params, task, &estimator, g, config.max_params)
        });
        evaluations += outcome.evaluated;
        memo_hits += outcome.memo_hits;
        for (g, &s) in batch.into_iter().zip(&outcome.scores) {
            if best.as_ref().map(|(_, bs)| s < *bs).unwrap_or(true) {
                best = Some((g, s));
            }
        }
        history.push(best.as_ref().expect("scored").1);
        rt.metrics().push_event(GenerationEvent {
            generation,
            best_score: history[generation],
            mean_score: mean_finite(&outcome.scores),
            evaluations: outcome.evaluated,
            memo_hits: outcome.memo_hits,
            elapsed: outcome.elapsed,
        });
    }
    let (best, best_score) = best.expect("non-empty budget");
    SearchResult {
        best,
        best_score,
        history,
        evaluations,
        memo_hits,
        proxy_evals: 0,
        proxy_escalations: 0,
        proxy_dedup_hits: 0,
    }
}

/// Mean over the finite entries (panicked candidates score `+inf` and
/// would otherwise wipe out the generation statistics).
pub(crate) fn mean_finite(scores: &[f64]) -> f64 {
    let finite: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
    if finite.is_empty() {
        f64::INFINITY
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignSpace, EstimatorKind, SpaceKind};
    use qns_noise::Device;

    fn setup() -> (SuperCircuit, Vec<f64>, Task, Estimator) {
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
        let task = Task::qml_digits(&[1, 8], 15, 4, 4);
        let params: Vec<f64> = (0..sc.num_params())
            .map(|i| 0.2 * ((i % 5) as f64) - 0.4)
            .collect();
        let est =
            Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1).with_valid_cap(4);
        (sc, params, task, est)
    }

    #[test]
    fn evolution_runs_and_improves_monotonically() {
        let (sc, params, task, est) = setup();
        let result = evolutionary_search(&sc, &params, &task, &est, &EvoConfig::fast(1));
        assert_eq!(result.history.len(), 8);
        for w in result.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "best-so-far must be monotone");
        }
        assert!(result.best_score.is_finite());
        assert_eq!(result.best.layout.len(), 4);
    }

    #[test]
    fn layouts_stay_injective_through_evolution() {
        let (sc, params, task, est) = setup();
        let result = evolutionary_search(&sc, &params, &task, &est, &EvoConfig::fast(7));
        let mut seen = std::collections::HashSet::new();
        assert!(result.best.layout.iter().all(|&p| seen.insert(p)));
        assert!(result.best.layout.iter().all(|&p| p < 5));
    }

    #[test]
    fn evolution_beats_or_matches_random_given_same_budget() {
        let (sc, params, task, est) = setup();
        let cfg = EvoConfig::fast(3);
        let evo = evolutionary_search(&sc, &params, &task, &est, &cfg);
        let rand = random_search(&sc, &params, &task, &est, &cfg);
        // Budgets match in *candidates*; how many were memoized vs
        // actually evaluated differs between the two searches.
        assert_eq!(evo.candidates(), rand.candidates());
        // Evolution should not be dramatically worse (allow small noise).
        assert!(
            evo.best_score <= rand.best_score * 1.15,
            "evo {} vs random {}",
            evo.best_score,
            rand.best_score
        );
    }

    #[test]
    fn duplicate_seeds_collapse_to_one_population_slot() {
        let (sc, params, task, est) = setup();
        let seed_gene = Gene {
            config: sc.max_config(),
            layout: vec![0, 1, 2, 3],
        };
        // Twelve copies of the same seed: the dedup path must keep one and
        // fill the rest with distinct random genes.
        let seeds = vec![seed_gene.clone(); 12];
        let cfg = EvoConfig {
            iterations: 1,
            ..EvoConfig::fast(11)
        };
        let rt = SearchRuntime::new(cfg.runtime.clone());
        let res = evolutionary_search_seeded_rt(&sc, &params, &task, &est, &cfg, &seeds, &rt);
        // All 12 initial candidates were distinct, so none were memoized
        // within the first (only) generation.
        assert_eq!(res.evaluations, 12);
        assert_eq!(res.memo_hits, 0);
    }

    #[test]
    fn memoization_changes_accounting_but_not_results() {
        let (sc, params, task, est) = setup();
        let cached = EvoConfig::fast(3);
        let uncached = EvoConfig {
            runtime: RuntimeOptions::sequential_uncached(),
            ..cached
        };
        let a = evolutionary_search(&sc, &params, &task, &est, &cached);
        let b = evolutionary_search(&sc, &params, &task, &est, &uncached);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
        assert_eq!(a.history, b.history);
        assert_eq!(a.candidates(), b.candidates());
        assert_eq!(b.memo_hits, 0, "uncached run cannot memoize");
        assert!(a.evaluations <= b.evaluations);
    }

    #[test]
    fn mutation_respects_bounds() {
        let (sc, _, _, est) = setup();
        let mut pool = GenePool {
            sc: &sc,
            n_phys: est.device().num_qubits(),
            rng: StdRng::seed_from_u64(5),
            fixed_arch: None,
            fixed_layout: None,
        };
        let g = pool.random_gene();
        for _ in 0..50 {
            let m = pool.mutate(&g, 0.8);
            assert!(m.config.n_blocks >= 1 && m.config.n_blocks <= 2);
            for block in &m.config.widths {
                assert!(block.iter().all(|&w| (1..=4).contains(&w)));
            }
            let mut seen = std::collections::HashSet::new();
            assert!(m.layout.iter().all(|&p| seen.insert(p)));
        }
    }

    #[test]
    fn crossover_mixes_parents() {
        let (sc, _, _, est) = setup();
        let mut pool = GenePool {
            sc: &sc,
            n_phys: est.device().num_qubits(),
            rng: StdRng::seed_from_u64(9),
            fixed_arch: None,
            fixed_layout: None,
        };
        let a = pool.random_gene();
        let b = pool.random_gene();
        let c = pool.crossover(&a, &b);
        // Every width comes from one of the parents.
        for (bi, block) in c.config.widths.iter().enumerate() {
            for (li, &w) in block.iter().enumerate() {
                assert!(w == a.config.widths[bi][li] || w == b.config.widths[bi][li]);
            }
        }
        let mut seen = std::collections::HashSet::new();
        assert!(c.layout.iter().all(|&p| seen.insert(p)));
    }
}
