//! Search-cost accounting (paper Table I).

/// Analytic circuit-run counts for the two search strategies of Table I.
///
/// A "circuit run" is one (possibly batched) circuit execution on the
/// evaluation backend.
///
/// # Examples
///
/// ```
/// use quantumnas::RunCost;
/// let cost = RunCost {
///     n_devices: 10,
///     n_search: 1600,
///     n_train: 40_000,
///     n_eval: 1,
/// };
/// assert!(cost.naive() / cost.with_supercircuit() > 10_000.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunCost {
    /// Number of target devices.
    pub n_devices: u64,
    /// Circuits evaluated during one search.
    pub n_search: u64,
    /// Circuit runs to train one circuit.
    pub n_train: u64,
    /// Circuit runs to evaluate one circuit.
    pub n_eval: u64,
}

impl RunCost {
    /// Naïve search: every candidate trained and evaluated per device,
    /// `N_device × N_search × (N_train + N_eval)`.
    pub fn naive(&self) -> f64 {
        (self.n_devices * self.n_search * (self.n_train + self.n_eval)) as f64
    }

    /// SuperCircuit search: one training run shared by everything,
    /// `1 × N_train + N_device × N_search × N_eval`.
    pub fn with_supercircuit(&self) -> f64 {
        (self.n_train + self.n_devices * self.n_search * self.n_eval) as f64
    }

    /// The reduction factor, ≈ `N_device × N_search` when evaluation is
    /// cheap relative to training (the paper quotes 16 000×).
    pub fn reduction(&self) -> f64 {
        self.naive() / self.with_supercircuit()
    }
}

/// A live counter of circuit executions, for measuring the Table I effect
/// empirically. Stages increment it; reports read it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CircuitRunCounter {
    runs: u64,
}

impl CircuitRunCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        CircuitRunCounter::default()
    }

    /// Records `n` circuit runs.
    pub fn record(&mut self, n: u64) {
        self.runs += n;
    }

    /// Total runs recorded.
    pub fn total(&self) -> u64 {
        self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setting_reduction_is_about_16000x() {
        // N_device = 10, N_search = 1600: the paper's quoted setting.
        let cost = RunCost {
            n_devices: 10,
            n_search: 1600,
            n_train: 40_000,
            n_eval: 1,
        };
        let r = cost.reduction();
        // Approaches N_device × N_search = 16 000 as N_train dominates.
        assert!(r > 10_000.0 && r < 16_000.0, "reduction {r}");
    }

    #[test]
    fn supercircuit_always_cheaper_for_multi_device() {
        let cost = RunCost {
            n_devices: 2,
            n_search: 10,
            n_train: 100,
            n_eval: 5,
        };
        assert!(cost.with_supercircuit() < cost.naive());
    }

    #[test]
    fn counter_accumulates() {
        let mut c = CircuitRunCounter::new();
        c.record(3);
        c.record(4);
        assert_eq!(c.total(), 7);
    }
}
