//! SubCircuit sampling: progressive shrinking and restricted sampling.

use crate::{SubConfig, SuperCircuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the SuperCircuit training sampler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplerConfig {
    /// Final lower bound on sampled block count (the paper's `d_min`).
    pub min_blocks: usize,
    /// Step at which progressive shrinking starts.
    pub shrink_start: usize,
    /// Step at which `d_min` reaches `min_blocks`.
    pub shrink_end: usize,
    /// Maximum number of layers that may differ between consecutive
    /// samples (the paper uses 7).
    pub max_layer_diff: usize,
    /// Enable progressive shrinking.
    pub progressive: bool,
    /// Enable restricted sampling.
    pub restricted: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            min_blocks: 1,
            shrink_start: 0,
            shrink_end: 100,
            max_layer_diff: 7,
            progressive: true,
            restricted: true,
            seed: 0,
        }
    }
}

/// Samples SubCircuit configurations for SuperCircuit training.
///
/// **Progressive shrinking** (paper Figure 6): only SubCircuits with
/// `d_min(t) ..= d_max` blocks are sampled, and `d_min(t)` decreases
/// linearly from `d_max` to [`SamplerConfig::min_blocks`] between
/// `shrink_start` and `shrink_end`; afterwards all block counts are
/// uniform.
///
/// **Restricted sampling** (paper Figure 7): consecutive samples differ in
/// at most [`SamplerConfig::max_layer_diff`] layers, counting the layers of
/// added/removed blocks.
///
/// # Examples
///
/// ```
/// use quantumnas::{DesignSpace, Sampler, SamplerConfig, SpaceKind, SuperCircuit};
///
/// let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 4);
/// let mut sampler = Sampler::new(&sc, SamplerConfig::default());
/// let a = sampler.next_config();
/// let b = sampler.next_config();
/// assert!(a.layer_distance(&b) <= 7);
/// ```
#[derive(Clone, Debug)]
pub struct Sampler {
    config: SamplerConfig,
    n_qubits: usize,
    n_blocks: usize,
    n_layers: usize,
    prev: SubConfig,
    step: usize,
    rng: StdRng,
}

impl Sampler {
    /// Creates a sampler for a SuperCircuit. The first sample is restricted
    /// against the maximal configuration (matching "train large first").
    pub fn new(supercircuit: &SuperCircuit, config: SamplerConfig) -> Self {
        assert!(
            config.min_blocks >= 1 && config.min_blocks <= supercircuit.num_blocks(),
            "min_blocks out of range"
        );
        assert!(
            config.shrink_end > config.shrink_start,
            "empty shrink window"
        );
        Sampler {
            config,
            n_qubits: supercircuit.num_qubits(),
            n_blocks: supercircuit.num_blocks(),
            n_layers: supercircuit.space().layers_per_block().len(),
            prev: supercircuit.max_config(),
            step: 0,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// Current lower bound on block count.
    pub fn d_min(&self) -> usize {
        if !self.config.progressive {
            return self.config.min_blocks;
        }
        let (s0, s1) = (self.config.shrink_start, self.config.shrink_end);
        if self.step <= s0 {
            self.n_blocks
        } else if self.step >= s1 {
            self.config.min_blocks
        } else {
            let progress = (self.step - s0) as f64 / (s1 - s0) as f64;
            let span = (self.n_blocks - self.config.min_blocks) as f64;
            (self.n_blocks as f64 - progress * span).round() as usize
        }
    }

    /// Draws the next configuration and advances the schedule.
    pub fn next_config(&mut self) -> SubConfig {
        let d_min = self.d_min();
        // Unrestricted candidate.
        let depth = self.rng.gen_range(d_min..=self.n_blocks);
        let widths: Vec<Vec<usize>> = (0..self.n_blocks)
            .map(|_| {
                (0..self.n_layers)
                    .map(|_| self.rng.gen_range(1..=self.n_qubits))
                    .collect()
            })
            .collect();
        let candidate = SubConfig {
            n_blocks: depth,
            widths,
        };

        let next = if self.config.restricted {
            self.restrict(candidate, d_min)
        } else {
            candidate
        };
        self.prev = next.clone();
        self.step += 1;
        next
    }

    /// Clamps a candidate to within `max_layer_diff` layers of the
    /// previous sample.
    fn restrict(&mut self, candidate: SubConfig, d_min: usize) -> SubConfig {
        let budget = self.config.max_layer_diff;
        // Depth moves cost n_layers changed layers per block.
        let max_depth_move = budget / self.n_layers;
        let depth = candidate
            .n_blocks
            .clamp(
                self.prev.n_blocks.saturating_sub(max_depth_move).max(d_min),
                (self.prev.n_blocks + max_depth_move).min(self.n_blocks),
            )
            .max(d_min);
        let depth_cost = depth.abs_diff(self.prev.n_blocks) * self.n_layers;
        let remaining = budget.saturating_sub(depth_cost);

        // Start from the previous widths; adopt candidate widths for a
        // random subset of differing active cells within budget.
        let mut widths = self.prev.widths.clone();
        let active = depth.min(self.prev.n_blocks);
        let mut cells: Vec<(usize, usize)> = (0..active)
            .flat_map(|b| (0..self.n_layers).map(move |l| (b, l)))
            .filter(|&(b, l)| candidate.widths[b][l] != self.prev.widths[b][l])
            .collect();
        // Newly activated blocks take candidate widths for free-ish: they
        // count as changed layers against the depth cost already paid.
        if depth > self.prev.n_blocks {
            widths[self.prev.n_blocks..depth]
                .clone_from_slice(&candidate.widths[self.prev.n_blocks..depth]);
        }
        // Fisher-Yates subset selection.
        for i in (1..cells.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            cells.swap(i, j);
        }
        for &(b, l) in cells.iter().take(remaining.min(cells.len())) {
            widths[b][l] = candidate.widths[b][l];
        }
        SubConfig {
            n_blocks: depth,
            widths,
        }
    }

    /// Steps taken so far.
    pub fn step(&self) -> usize {
        self.step
    }

    /// The sampler's full mutable state — previous sample, schedule
    /// position, and RNG stream position — for checkpointing.
    pub fn state(&self) -> (SubConfig, usize, [u64; 4]) {
        (self.prev.clone(), self.step, self.rng.state())
    }

    /// Restores state captured with [`Sampler::state`]; the restored
    /// sampler draws the exact sequence the original would have.
    pub fn restore(&mut self, prev: SubConfig, step: usize, rng: [u64; 4]) {
        self.prev = prev;
        self.step = step;
        self.rng = StdRng::from_state(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignSpace, SpaceKind};

    fn supercircuit() -> SuperCircuit {
        SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 8)
    }

    #[test]
    fn progressive_shrinking_lowers_d_min() {
        let sc = supercircuit();
        let mut s = Sampler::new(
            &sc,
            SamplerConfig {
                shrink_start: 10,
                shrink_end: 50,
                ..Default::default()
            },
        );
        assert_eq!(s.d_min(), 8);
        for _ in 0..30 {
            let _ = s.next_config();
        }
        let mid = s.d_min();
        assert!(mid < 8 && mid > 1, "d_min mid-schedule: {mid}");
        for _ in 0..30 {
            let _ = s.next_config();
        }
        assert_eq!(s.d_min(), 1);
    }

    #[test]
    fn samples_respect_d_min() {
        let sc = supercircuit();
        let mut s = Sampler::new(
            &sc,
            SamplerConfig {
                shrink_start: 0,
                shrink_end: 20,
                restricted: false,
                ..Default::default()
            },
        );
        for _ in 0..100 {
            let d_min = s.d_min();
            let cfg = s.next_config();
            assert!(cfg.n_blocks >= d_min && cfg.n_blocks <= 8);
        }
    }

    #[test]
    fn restricted_sampling_bounds_layer_distance() {
        let sc = supercircuit();
        let mut s = Sampler::new(
            &sc,
            SamplerConfig {
                progressive: false,
                max_layer_diff: 7,
                ..Default::default()
            },
        );
        let mut prev = sc.max_config();
        for _ in 0..200 {
            let cfg = s.next_config();
            let d = cfg.layer_distance(&prev);
            assert!(d <= 7, "layer distance {d} exceeds 7");
            prev = cfg;
        }
    }

    #[test]
    fn unrestricted_sampling_wanders_further() {
        let sc = supercircuit();
        let restricted_max = {
            let mut s = Sampler::new(
                &sc,
                SamplerConfig {
                    progressive: false,
                    restricted: true,
                    ..Default::default()
                },
            );
            let mut prev = s.next_config();
            let mut max_d = 0;
            for _ in 0..50 {
                let cfg = s.next_config();
                max_d = max_d.max(cfg.layer_distance(&prev));
                prev = cfg;
            }
            max_d
        };
        let unrestricted_max = {
            let mut s = Sampler::new(
                &sc,
                SamplerConfig {
                    progressive: false,
                    restricted: false,
                    ..Default::default()
                },
            );
            let mut prev = s.next_config();
            let mut max_d = 0;
            for _ in 0..50 {
                let cfg = s.next_config();
                max_d = max_d.max(cfg.layer_distance(&prev));
                prev = cfg;
            }
            max_d
        };
        assert!(restricted_max <= 7);
        assert!(unrestricted_max > 7, "unrestricted max {unrestricted_max}");
    }

    #[test]
    fn sampled_configs_build_valid_circuits() {
        let sc = supercircuit();
        let mut s = Sampler::new(&sc, SamplerConfig::default());
        for _ in 0..20 {
            let cfg = s.next_config();
            let c = sc.build(&cfg, None);
            assert!(c.num_ops() > 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let sc = supercircuit();
        let mut a = Sampler::new(&sc, SamplerConfig::default());
        let mut b = Sampler::new(&sc, SamplerConfig::default());
        for _ in 0..10 {
            assert_eq!(a.next_config(), b.next_config());
        }
    }
}
