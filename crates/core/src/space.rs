//! The six circuit design spaces of Section IV-A.

use qns_circuit::GateKind;

/// How a layer's gates are arranged over the qubits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerArrangement {
    /// One single-qubit gate per qubit; width `w` uses the first `w`
    /// qubits.
    OneQubit,
    /// Two-qubit gates on ring connections `(q, (q+1) mod n)`; width `w`
    /// uses the first `w` ring pairs.
    Ring,
}

/// One layer of a design-space block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerSpec {
    /// Gate applied throughout the layer.
    pub gate: GateKind,
    /// Arrangement over qubits.
    pub arrangement: LayerArrangement,
}

impl LayerSpec {
    /// A one-qubit layer.
    pub const fn one(gate: GateKind) -> Self {
        LayerSpec {
            gate,
            arrangement: LayerArrangement::OneQubit,
        }
    }

    /// A ring two-qubit layer.
    pub const fn ring(gate: GateKind) -> Self {
        LayerSpec {
            gate,
            arrangement: LayerArrangement::Ring,
        }
    }

    /// Trainable parameters per gate in this layer.
    pub fn params_per_gate(&self) -> usize {
        self.gate.num_params()
    }
}

/// The paper's named design spaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpaceKind {
    /// 'U3+CU3': per block one U3 layer and one CU3 ring layer; 8 blocks.
    U3Cu3,
    /// 'ZZ+RY': per block one RZZ ring layer and one RY layer; 8 blocks.
    ZzRy,
    /// 'RXYZ': per block RX, RY, RZ, CZ(ring); √H layer upfront; 8 blocks.
    Rxyz,
    /// 'ZX+XX': per block one RZX ring and one RXX ring layer; 8 blocks.
    ZxXx,
    /// 'RXYZ+U1+CU3': 11 layers per block (RX, S, CNOT, RY, T, SWAP, RZ,
    /// H, √SWAP, U1, CU3); 4 blocks.
    RxyzU1Cu3,
    /// 'IBMQ Basis': 6 layers per block (RZ, X, RZ, SX, RZ, CNOT);
    /// 20 blocks; depth-elastic only (no width sharing inside blocks).
    IbmqBasis,
}

impl SpaceKind {
    /// All six spaces in the paper's order.
    pub fn all() -> &'static [SpaceKind] {
        &[
            SpaceKind::U3Cu3,
            SpaceKind::ZzRy,
            SpaceKind::Rxyz,
            SpaceKind::ZxXx,
            SpaceKind::RxyzU1Cu3,
            SpaceKind::IbmqBasis,
        ]
    }

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            SpaceKind::U3Cu3 => "U3+CU3",
            SpaceKind::ZzRy => "ZZ+RY",
            SpaceKind::Rxyz => "RXYZ",
            SpaceKind::ZxXx => "ZX+XX",
            SpaceKind::RxyzU1Cu3 => "RXYZ+U1+CU3",
            SpaceKind::IbmqBasis => "IBMQ Basis",
        }
    }
}

impl std::fmt::Display for SpaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete design space: block structure plus elasticity rules.
///
/// # Examples
///
/// ```
/// use quantumnas::{DesignSpace, SpaceKind};
/// let space = DesignSpace::new(SpaceKind::U3Cu3);
/// assert_eq!(space.layers_per_block().len(), 2);
/// assert_eq!(space.default_blocks(), 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DesignSpace {
    kind: SpaceKind,
    layers: Vec<LayerSpec>,
    prefix: Vec<LayerSpec>,
    default_blocks: usize,
    elastic_width: bool,
}

impl DesignSpace {
    /// Builds the named space with the paper's block structure.
    pub fn new(kind: SpaceKind) -> Self {
        use GateKind::*;
        let (layers, prefix, default_blocks, elastic_width) = match kind {
            SpaceKind::U3Cu3 => (
                vec![LayerSpec::one(U3), LayerSpec::ring(CU3)],
                vec![],
                8,
                true,
            ),
            SpaceKind::ZzRy => (
                vec![LayerSpec::ring(RZZ), LayerSpec::one(RY)],
                vec![],
                8,
                true,
            ),
            SpaceKind::Rxyz => (
                vec![
                    LayerSpec::one(RX),
                    LayerSpec::one(RY),
                    LayerSpec::one(RZ),
                    LayerSpec::ring(CZ),
                ],
                vec![LayerSpec::one(SH)],
                8,
                true,
            ),
            SpaceKind::ZxXx => (
                vec![LayerSpec::ring(RZX), LayerSpec::ring(RXX)],
                vec![],
                8,
                true,
            ),
            SpaceKind::RxyzU1Cu3 => (
                vec![
                    LayerSpec::one(RX),
                    LayerSpec::one(S),
                    LayerSpec::ring(CX),
                    LayerSpec::one(RY),
                    LayerSpec::one(T),
                    LayerSpec::ring(Swap),
                    LayerSpec::one(RZ),
                    LayerSpec::one(H),
                    LayerSpec::ring(SqrtSwap),
                    LayerSpec::one(U1),
                    LayerSpec::ring(CU3),
                ],
                vec![],
                4,
                true,
            ),
            SpaceKind::IbmqBasis => (
                vec![
                    LayerSpec::one(RZ),
                    LayerSpec::one(X),
                    LayerSpec::one(RZ),
                    LayerSpec::one(SX),
                    LayerSpec::one(RZ),
                    LayerSpec::ring(CX),
                ],
                vec![],
                20,
                false,
            ),
        };
        DesignSpace {
            kind,
            layers,
            prefix,
            default_blocks,
            elastic_width,
        }
    }

    /// Which named space this is.
    pub fn kind(&self) -> SpaceKind {
        self.kind
    }

    /// The per-block layer structure.
    pub fn layers_per_block(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Fixed layers prepended once before the blocks (e.g. RXYZ's √H).
    pub fn prefix_layers(&self) -> &[LayerSpec] {
        &self.prefix
    }

    /// The paper's SuperCircuit block count for this space.
    pub fn default_blocks(&self) -> usize {
        self.default_blocks
    }

    /// Whether SubCircuits may shrink layer widths (all spaces except
    /// 'IBMQ Basis', which is depth-elastic only).
    pub fn elastic_width(&self) -> bool {
        self.elastic_width
    }

    /// Trainable parameters in one full-width block over `n_qubits`.
    pub fn params_per_block(&self, n_qubits: usize) -> usize {
        self.layers
            .iter()
            .map(|l| l.params_per_gate() * n_qubits)
            .sum::<usize>()
    }

    /// log10 of the design-space size for `n_qubits` and `blocks` — the
    /// paper quotes ~4 billion SubCircuits for U3+CU3 (4 qubits, 8
    /// blocks).
    pub fn log10_size(&self, n_qubits: usize, blocks: usize) -> f64 {
        if !self.elastic_width {
            return (blocks as f64).log10();
        }
        let layers = self.layers.len() * blocks;
        layers as f64 * (n_qubits as f64).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_spaces_construct() {
        for &kind in SpaceKind::all() {
            let s = DesignSpace::new(kind);
            assert!(!s.layers_per_block().is_empty(), "{kind}");
        }
    }

    #[test]
    fn u3cu3_space_size_matches_paper() {
        // 4^(2*8) ≈ 4.3e9 SubCircuits for 4 qubits, 8 blocks.
        let s = DesignSpace::new(SpaceKind::U3Cu3);
        let log = s.log10_size(4, 8);
        assert!((log - 9.63).abs() < 0.05, "log10 size {log}");
    }

    #[test]
    fn rxyz_u1_cu3_space_size_matches_paper() {
        // 4^(11*4) ≈ 3e26.
        let s = DesignSpace::new(SpaceKind::RxyzU1Cu3);
        let log = s.log10_size(4, 4);
        assert!((log - 26.5).abs() < 0.2, "log10 size {log}");
    }

    #[test]
    fn rxyz_has_sqrt_h_prefix() {
        let s = DesignSpace::new(SpaceKind::Rxyz);
        assert_eq!(s.prefix_layers().len(), 1);
        assert_eq!(s.prefix_layers()[0].gate, GateKind::SH);
    }

    #[test]
    fn ibmq_basis_is_depth_elastic_only() {
        let s = DesignSpace::new(SpaceKind::IbmqBasis);
        assert!(!s.elastic_width());
        assert_eq!(s.default_blocks(), 20);
        assert_eq!(s.layers_per_block().len(), 6);
    }

    #[test]
    fn params_per_block_counts() {
        // U3 (3 params) + CU3 (3 params), each n gates per layer.
        let s = DesignSpace::new(SpaceKind::U3Cu3);
        assert_eq!(s.params_per_block(4), 24);
        // ZZ (1) + RY (1).
        let s = DesignSpace::new(SpaceKind::ZzRy);
        assert_eq!(s.params_per_block(4), 8);
    }
}
