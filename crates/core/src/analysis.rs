//! Trainability analysis: barren-plateau probes.
//!
//! The paper's outlook asks whether searched ansatzes alleviate the barren
//! plateau (McClean et al.): in deep random circuits the gradient variance
//! of any cost function decays exponentially in qubit count, flattening
//! the landscape. This module measures that variance directly, so the
//! effect — and the searched circuits' position relative to it — can be
//! quantified.

use crate::{DesignSpace, SpaceKind, SubConfig, SuperCircuit};
use qns_circuit::Circuit;
use qns_sim::{adjoint_gradient, DiagObservable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Variance of `∂<O>/∂θ_k` over random parameter initializations — the
/// standard barren-plateau diagnostic.
///
/// Parameters are drawn uniformly from `[-π, π)`; the observable is
/// `Z` on qubit 0 (the McClean et al. convention) unless `weights`
/// overrides it. Returns the variance of the gradient entry `param_index`.
///
/// # Panics
///
/// Panics if the circuit has no trainable parameters or `param_index` is
/// out of range.
///
/// # Examples
///
/// ```
/// use quantumnas::{gradient_variance, DesignSpace, SpaceKind, SuperCircuit};
///
/// let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::Rxyz), 4, 2);
/// let circuit = sc.build(&sc.max_config(), None);
/// let var = gradient_variance(&circuit, None, 0, 32, 7);
/// assert!(var >= 0.0);
/// ```
pub fn gradient_variance(
    circuit: &Circuit,
    weights: Option<Vec<f64>>,
    param_index: usize,
    n_samples: usize,
    seed: u64,
) -> f64 {
    let n_params = circuit.num_train_params();
    assert!(n_params > 0, "circuit has no trainable parameters");
    assert!(param_index < n_params, "param index out of range");
    let mut obs_weights = weights.unwrap_or_else(|| {
        let mut w = vec![0.0; circuit.num_qubits()];
        w[0] = 1.0;
        w
    });
    obs_weights.resize(circuit.num_qubits(), 0.0);
    let obs = DiagObservable::new(obs_weights);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA88E7);
    let mut grads = Vec::with_capacity(n_samples);
    let input = vec![0.0; circuit.num_inputs()];
    for _ in 0..n_samples {
        let params: Vec<f64> = (0..n_params)
            .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
            .collect();
        let (_, g) = adjoint_gradient(circuit, &params, &input, &obs);
        grads.push(g[param_index]);
    }
    let mean: f64 = grads.iter().sum::<f64>() / n_samples as f64;
    grads.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n_samples as f64
}

/// One row of a barren-plateau scan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlateauPoint {
    /// Number of qubits.
    pub n_qubits: usize,
    /// Number of blocks (depth proxy).
    pub n_blocks: usize,
    /// Gradient variance of the first parameter.
    pub variance: f64,
}

/// Scans gradient variance over qubit counts for full-width circuits in a
/// design space — the exponential decay in `n_qubits` is the barren
/// plateau.
///
/// # Panics
///
/// Panics if `qubit_counts` contains a value below 2.
pub fn barren_plateau_scan(
    space: SpaceKind,
    qubit_counts: &[usize],
    n_blocks: usize,
    n_samples: usize,
    seed: u64,
) -> Vec<PlateauPoint> {
    qubit_counts
        .iter()
        .map(|&n| {
            let sc = SuperCircuit::new(DesignSpace::new(space), n, n_blocks);
            let circuit = sc.build(&sc.max_config(), None);
            PlateauPoint {
                n_qubits: n,
                n_blocks,
                variance: gradient_variance(&circuit, None, 0, n_samples, seed),
            }
        })
        .collect()
}

/// Compares the gradient variance of a searched SubCircuit against the
/// full-width SuperCircuit at the same qubit count — the paper's outlook
/// question ("can a searched ansatz alleviate the barren plateau?").
///
/// Returns `(searched_variance, full_variance)`.
pub fn plateau_relief(
    sc: &SuperCircuit,
    searched: &SubConfig,
    n_samples: usize,
    seed: u64,
) -> (f64, f64) {
    let searched_circuit = sc.build(searched, None);
    let full_circuit = sc.build(&sc.max_config(), None);
    (
        gradient_variance(&searched_circuit, None, 0, n_samples, seed),
        gradient_variance(&full_circuit, None, 0, n_samples, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rotation_variance_is_analytic() {
        // <Z> of RY(θ): gradient is -sin θ; over θ ~ U[-π, π) the variance
        // of -sin θ is 1/2.
        let mut c = Circuit::new(2);
        c.push(
            qns_circuit::GateKind::RY,
            &[0],
            &[qns_circuit::Param::Train(0)],
        );
        let var = gradient_variance(&c, None, 0, 4000, 3);
        assert!((var - 0.5).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn variance_decays_with_qubit_count() {
        // The barren plateau: more qubits (at fixed blocks of a
        // hardware-efficient space) → smaller gradient variance.
        let scan = barren_plateau_scan(SpaceKind::Rxyz, &[2, 4, 6], 3, 64, 5);
        assert_eq!(scan.len(), 3);
        assert!(scan[0].variance > scan[2].variance, "no decay: {:?}", scan);
    }

    #[test]
    fn shallow_circuits_have_larger_gradients() {
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::Rxyz), 5, 6);
        let mut shallow = sc.max_config();
        shallow.n_blocks = 1;
        let (searched_var, full_var) = plateau_relief(&sc, &shallow, 64, 9);
        assert!(
            searched_var > full_var,
            "shallow {searched_var} vs full {full_var}"
        );
    }

    #[test]
    #[should_panic(expected = "no trainable parameters")]
    fn empty_circuit_panics() {
        let c = Circuit::new(2);
        let _ = gradient_variance(&c, None, 0, 4, 0);
    }
}
