//! Task definitions: QML classification and VQE.

use qns_chem::{Molecule, PauliSum};
use qns_circuit::Circuit;
use qns_data::{
    encoder_4x4, encoder_6x6, encoder_vowel, image_to_input, synthetic_digits, synthetic_fashion,
    synthetic_vowel, Dataset, Splits,
};
use qns_ml::Pca;

/// Maps per-qubit Pauli-Z expectations to class logits.
///
/// The paper's readout: 4/10-class tasks use one qubit per class; 2-class
/// tasks sum qubits {0,1} and {2,3}.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Readout {
    groups: Vec<Vec<usize>>,
    n_qubits: usize,
}

impl Readout {
    /// One qubit per class: `n_classes` logits from the first qubits.
    pub fn per_qubit(n_classes: usize, n_qubits: usize) -> Self {
        assert!(n_classes <= n_qubits, "need one qubit per class");
        Readout {
            groups: (0..n_classes).map(|q| vec![q]).collect(),
            n_qubits,
        }
    }

    /// The paper's 2-class readout on 4 qubits: logits = `E0+E1`, `E2+E3`.
    pub fn two_class_paired() -> Self {
        Readout {
            groups: vec![vec![0, 1], vec![2, 3]],
            n_qubits: 4,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.groups.len()
    }

    /// Expected circuit width.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Class logits from per-qubit expectations.
    ///
    /// # Panics
    ///
    /// Panics if `expectations` is narrower than the readout expects.
    pub fn logits(&self, expectations: &[f64]) -> Vec<f64> {
        self.groups
            .iter()
            .map(|g| g.iter().map(|&q| expectations[q]).sum())
            .collect()
    }

    /// Pulls a logit gradient back to per-qubit observable weights:
    /// `w_q = Σ_{groups g ∋ q} dL/dlogit_g`.
    pub fn weights_from_logit_grad(&self, dlogits: &[f64]) -> Vec<f64> {
        assert_eq!(dlogits.len(), self.groups.len(), "one grad per logit");
        let mut w = vec![0.0; self.n_qubits];
        for (g, &dl) in self.groups.iter().zip(dlogits) {
            for &q in g {
                w[q] += dl;
            }
        }
        w
    }
}

/// A benchmark task: QML classification or VQE ground-state search.
///
/// QML tasks carry pre-encoded inputs (angles), splits, an encoder circuit
/// and a readout; VQE tasks carry a molecule Hamiltonian.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // tasks are built once, not shuffled around
pub enum Task {
    /// Classification with a variational circuit.
    Qml {
        /// Human-readable name (e.g. `"MNIST-4"`).
        name: String,
        /// Train/valid/test splits with features already encoded as
        /// rotation angles.
        splits: Splits,
        /// Data-encoding circuit consuming the angle vector.
        encoder: Circuit,
        /// Expectation → logits mapping.
        readout: Readout,
    },
    /// Variational ground-state search.
    Vqe {
        /// Molecule name.
        name: String,
        /// The qubit Hamiltonian.
        hamiltonian: PauliSum,
        /// Number of qubits.
        n_qubits: usize,
    },
}

impl Task {
    /// An MNIST-like digit classification task: `classes` picks the
    /// digits, images are pooled to `side`×`side` (4 → 4 qubits,
    /// 6 → 10 qubits).
    ///
    /// # Panics
    ///
    /// Panics if `side` is not 4 or 6, or if the class count exceeds the
    /// readout capacity.
    pub fn qml_digits(classes: &[usize], n_per_class: usize, side: usize, seed: u64) -> Task {
        let raw = synthetic_digits(classes, n_per_class, seed);
        Task::from_images("MNIST", classes.len(), raw, side, seed)
    }

    /// A Fashion-like classification task (class ids follow
    /// Fashion-MNIST; the paper uses {0,1,2,3} and {3,6}).
    pub fn qml_fashion(classes: &[usize], n_per_class: usize, side: usize, seed: u64) -> Task {
        let raw = synthetic_fashion(classes, n_per_class, seed);
        Task::from_images("Fashion", classes.len(), raw, side, seed)
    }

    fn from_images(base: &str, n_classes: usize, raw: Dataset, side: usize, seed: u64) -> Task {
        assert!(side == 4 || side == 6, "side must be 4 (4q) or 6 (10q)");
        let encoded = raw.map_features(|img| image_to_input(img, side));
        // The paper: 95% train / 5% valid from 'train', test separate; we
        // split one pool 76/4/20 to the same effect.
        let splits = encoded.split(0.76, 0.04, seed ^ 0x5EED);
        let (encoder, readout) = if side == 4 {
            let readout = if n_classes == 2 {
                Readout::two_class_paired()
            } else {
                Readout::per_qubit(n_classes, 4)
            };
            (encoder_4x4(), readout)
        } else {
            (encoder_6x6(), Readout::per_qubit(n_classes, 10))
        };
        Task::Qml {
            name: format!("{base}-{n_classes}"),
            splits,
            encoder,
            readout,
        }
    }

    /// The Vowel-4 task: 990 samples, PCA to 10 dims, 4 qubits,
    /// train:valid:test = 6:1:3.
    pub fn qml_vowel(seed: u64) -> Task {
        let raw = synthetic_vowel(4, 990, seed);
        let pca = Pca::fit(&raw.features, 10);
        let reduced = raw.map_features(|x| {
            // Normalize PCA outputs into rotation angles.
            pca.transform(x)
                .into_iter()
                .map(|v| (v / 2.0).clamp(-std::f64::consts::PI, std::f64::consts::PI))
                .collect()
        });
        let splits = reduced.split(0.6, 0.1, seed ^ 0x70E1);
        Task::Qml {
            name: "Vowel-4".to_string(),
            splits,
            encoder: encoder_vowel(),
            readout: Readout::per_qubit(4, 4),
        }
    }

    /// A VQE task for one of the benchmark molecules.
    pub fn vqe(molecule: &Molecule) -> Task {
        Task::Vqe {
            name: molecule.name().to_string(),
            hamiltonian: molecule.hamiltonian().clone(),
            n_qubits: molecule.num_qubits(),
        }
    }

    /// Task name.
    pub fn name(&self) -> &str {
        match self {
            Task::Qml { name, .. } => name,
            Task::Vqe { name, .. } => name,
        }
    }

    /// Number of logical qubits the task's circuits use.
    pub fn num_qubits(&self) -> usize {
        match self {
            Task::Qml { encoder, .. } => encoder.num_qubits(),
            Task::Vqe { n_qubits, .. } => *n_qubits,
        }
    }

    /// `true` for classification tasks.
    pub fn is_qml(&self) -> bool {
        matches!(self, Task::Qml { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_class_readout_pairs_qubits() {
        let r = Readout::two_class_paired();
        let logits = r.logits(&[0.1, 0.2, 0.3, 0.4]);
        assert!((logits[0] - 0.3).abs() < 1e-12);
        assert!((logits[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn readout_weight_pullback() {
        let r = Readout::two_class_paired();
        let w = r.weights_from_logit_grad(&[1.0, -1.0]);
        assert_eq!(w, vec![1.0, 1.0, -1.0, -1.0]);
        let r4 = Readout::per_qubit(4, 4);
        let w4 = r4.weights_from_logit_grad(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(w4, vec![0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn digit_task_shapes() {
        let t = Task::qml_digits(&[0, 1, 2, 3], 30, 4, 1);
        assert_eq!(t.num_qubits(), 4);
        match &t {
            Task::Qml {
                splits, readout, ..
            } => {
                assert_eq!(readout.num_classes(), 4);
                assert_eq!(splits.train.dim(), 16);
                assert!(splits.test.num_samples() > 0);
            }
            _ => panic!("expected QML"),
        }
    }

    #[test]
    fn mnist10_uses_ten_qubits() {
        let t = Task::qml_digits(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], 5, 6, 2);
        assert_eq!(t.num_qubits(), 10);
    }

    #[test]
    fn vowel_task_has_paper_splits() {
        let t = Task::qml_vowel(3);
        match &t {
            Task::Qml { splits, .. } => {
                assert_eq!(splits.train.num_samples(), 594);
                assert_eq!(splits.valid.num_samples(), 99);
                assert_eq!(splits.test.num_samples(), 297);
                assert_eq!(splits.train.dim(), 10);
            }
            _ => panic!("expected QML"),
        }
    }

    #[test]
    fn vqe_task_from_molecule() {
        let t = Task::vqe(&Molecule::h2());
        assert_eq!(t.num_qubits(), 2);
        assert!(!t.is_qml());
        assert_eq!(t.name(), "H2");
    }
}
