//! Training *on the device*: parameter-shift gradients estimated from
//! noisy measurements.
//!
//! The paper notes that for circuits too large to simulate classically,
//! the whole pipeline can move onto quantum hardware: SuperCircuit and
//! SubCircuit training via the parameter-shift rule, with every gradient
//! entry estimated from measured expectation values. This module is that
//! path against the noisy device models: the circuit is transpiled once
//! (parameters stay symbolic through compilation), and each training step
//! evaluates shifted parameter vectors on the trajectory executor.

use crate::Task;
use qns_circuit::Circuit;
use qns_ml::{cross_entropy_grad, nll_loss, Adam, AdamConfig};
use qns_noise::{Device, TrajectoryConfig, TrajectoryExecutor};
use qns_transpile::{transpile, Layout, Transpiled};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Settings for on-device training.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnDeviceTrainConfig {
    /// Optimization steps.
    pub steps: usize,
    /// Learning rate (Adam).
    pub lr: f64,
    /// Trajectories per expectation estimate (plays the role of shots).
    pub trajectories: usize,
    /// Training samples per QML step (gradients average over the batch;
    /// measured-evaluation cost scales linearly).
    pub batch: usize,
    /// RNG seed (initialization, batch selection, trajectory streams).
    pub seed: u64,
}

impl Default for OnDeviceTrainConfig {
    fn default() -> Self {
        OnDeviceTrainConfig {
            steps: 40,
            lr: 0.05,
            trajectories: 16,
            batch: 2,
            seed: 0,
        }
    }
}

/// Measured per-qubit `<Z>` of a compiled circuit at given parameters.
fn measured_logical_z(
    t: &Transpiled,
    exec: &TrajectoryExecutor,
    params: &[f64],
    input: &[f64],
) -> Vec<f64> {
    let noisy = exec.expect_z(&t.circuit, params, input, &t.phys_of);
    t.dense_of_logical
        .iter()
        .map(|&d| noisy.expect_z[d])
        .collect()
}

/// Which logical parameters admit the two-term shift rule (the rest use a
/// symmetric finite difference — noisy on hardware but workable).
fn shiftable_params(circuit: &Circuit) -> Vec<bool> {
    let n = circuit.num_train_params();
    let mut shiftable = vec![true; n];
    for op in circuit.iter() {
        for slot in &op.params {
            if let Some((ti, scale)) = slot.train_component() {
                if !op.kind.supports_parameter_shift() || (scale.abs() - 1.0).abs() > 1e-12 {
                    shiftable[ti] = false;
                }
            }
        }
    }
    shiftable
}

/// Trains a QML circuit end-to-end on the noisy device model with
/// parameter-shift gradients of the measured loss.
///
/// Each step draws one training sample, measures the per-qubit
/// expectations at `θ` and at every `θ_i ± π/2` (or `± h` for non-shift
/// gates), and assembles `dL/dθ` through the softmax cross-entropy chain
/// rule. Returns `(parameters, per-step measured loss history)`.
///
/// Cost per step is `(2·P + 1)` noisy circuit evaluations for `P`
/// parameters — the hardware-realistic price the paper's Table VI run
/// pays; keep circuits small.
///
/// # Panics
///
/// Panics if called with a VQE task (use [`train_vqe_on_device`]) or if
/// the layout does not fit the device.
pub fn train_qml_on_device(
    circuit: &Circuit,
    task: &Task,
    device: &Device,
    layout: &Layout,
    config: &OnDeviceTrainConfig,
) -> (Vec<f64>, Vec<f64>) {
    let (splits, readout) = match task {
        Task::Qml {
            splits, readout, ..
        } => (splits, readout),
        Task::Vqe { .. } => panic!("use train_vqe_on_device for VQE tasks"),
    };
    let t = transpile(circuit, device, layout, 2);
    let shiftable = shiftable_params(circuit);
    let n = circuit.num_train_params();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xDE71CE);
    let mut params: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.3..0.3)).collect();
    let mut opt = Adam::new(n, AdamConfig::default());
    let mut history = Vec::with_capacity(config.steps);
    let data = &splits.train;

    for step in 0..config.steps {
        let exec = TrajectoryExecutor::new(
            device.clone(),
            TrajectoryConfig {
                trajectories: config.trajectories,
                // Fresh trajectory stream per step, like fresh shots.
                seed: config.seed ^ (step as u64) << 8,
                readout: true,
            },
        );
        let batch: Vec<usize> = (0..config.batch.max(1))
            .map(|_| rng.gen_range(0..data.num_samples()))
            .collect();

        let mut grad = vec![0.0; n];
        let mut step_loss = 0.0;
        for &sample in &batch {
            let input = &data.features[sample];
            let label = data.labels[sample];
            let e = measured_logical_z(&t, &exec, &params, input);
            let logits = readout.logits(&e);
            step_loss += nll_loss(&logits, label);
            let dlogits = cross_entropy_grad(&logits, label);
            let weights = readout.weights_from_logit_grad(&dlogits);

            // dL/dθ_i = Σ_q w_q dE_q/dθ_i, each dE_q by shift/difference.
            let mut work = params.clone();
            for (i, g) in grad.iter_mut().enumerate() {
                let original = work[i];
                let (step_size, denom) = if shiftable[i] {
                    (std::f64::consts::FRAC_PI_2, 2.0)
                } else {
                    (0.1, 0.2)
                };
                work[i] = original + step_size;
                let plus = measured_logical_z(&t, &exec, &work, input);
                work[i] = original - step_size;
                let minus = measured_logical_z(&t, &exec, &work, input);
                work[i] = original;
                *g += weights
                    .iter()
                    .zip(plus.iter().zip(minus.iter()))
                    .map(|(w, (p, m))| w * (p - m) / denom)
                    .sum::<f64>()
                    / batch.len() as f64;
            }
        }
        history.push(step_loss / batch.len() as f64);
        opt.step(&mut params, &grad, config.lr);
    }
    (params, history)
}

/// Trains a VQE ansatz on the noisy device model: the measured energy
/// (qubit-wise-commuting grouped measurement) is minimized directly with
/// parameter-shift gradients. Returns `(parameters, measured-energy
/// history)`.
///
/// # Panics
///
/// Panics if called with a QML task.
pub fn train_vqe_on_device(
    circuit: &Circuit,
    task: &Task,
    device: &Device,
    layout: &Layout,
    config: &OnDeviceTrainConfig,
) -> (Vec<f64>, Vec<f64>) {
    let hamiltonian = match task {
        Task::Vqe { hamiltonian, .. } => hamiltonian,
        Task::Qml { .. } => panic!("use train_qml_on_device for QML tasks"),
    };
    let estimator = crate::Estimator::new(device.clone(), crate::EstimatorKind::Noiseless, 2);
    let shiftable = shiftable_params(circuit);
    let n = circuit.num_train_params();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7C9E);
    let mut params: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.3..0.3)).collect();
    let mut opt = Adam::new(n, AdamConfig::default());
    let mut history = Vec::with_capacity(config.steps);

    for step in 0..config.steps {
        let traj = TrajectoryConfig {
            trajectories: config.trajectories,
            seed: config.seed ^ (step as u64) << 8,
            readout: true,
        };
        let energy_at = |p: &[f64]| -> f64 {
            estimator.vqe_energy_measured(circuit, p, hamiltonian, layout, traj)
        };
        history.push(energy_at(&params));
        let mut grad = vec![0.0; n];
        let mut work = params.clone();
        for (i, g) in grad.iter_mut().enumerate() {
            let original = work[i];
            let (step_size, denom) = if shiftable[i] {
                (std::f64::consts::FRAC_PI_2, 2.0)
            } else {
                (0.1, 0.2)
            };
            work[i] = original + step_size;
            let plus = energy_at(&work);
            work[i] = original - step_size;
            let minus = energy_at(&work);
            work[i] = original;
            *g = (plus - minus) / denom;
        }
        opt.step(&mut params, &grad, config.lr);
    }
    (params, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignSpace, SpaceKind, SuperCircuit};

    #[test]
    fn on_device_qml_training_reduces_measured_loss() {
        let task = Task::qml_digits(&[1, 8], 20, 4, 41);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::ZzRy), 4, 1);
        let encoder = match &task {
            Task::Qml { encoder, .. } => encoder.clone(),
            _ => unreachable!(),
        };
        let circuit = sc.build(&sc.max_config(), Some(&encoder));
        let device = Device::santiago();
        let cfg = OnDeviceTrainConfig {
            steps: 15,
            lr: 0.1,
            trajectories: 4,
            batch: 2,
            seed: 11,
        };
        let (params, history) =
            train_qml_on_device(&circuit, &task, &device, &Layout::trivial(4), &cfg);
        assert_eq!(params.len(), sc.num_params());
        assert_eq!(history.len(), cfg.steps);
        assert!(history.iter().all(|l| l.is_finite() && *l >= 0.0));
        // With a handful of noisy steps the per-step loss is too
        // stochastic for a strict decrease test; instead verify the
        // trained parameters beat the (deterministic) initialization on
        // the noise-free validation loss.
        let init: Vec<f64> = {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xDE71CE);
            (0..params.len())
                .map(|_| rng.gen_range(-0.3..0.3))
                .collect()
        };
        let (before, _) = crate::eval_task(&circuit, &init, &task, crate::Split::Valid);
        let (after, _) = crate::eval_task(&circuit, &params, &task, crate::Split::Valid);
        assert!(
            after < before + 0.1,
            "on-device training regressed badly: {before} -> {after}"
        );
    }

    #[test]
    fn on_device_vqe_training_lowers_measured_energy() {
        let mol = qns_chem::Molecule::h2();
        let task = Task::vqe(&mol);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 2, 1);
        let circuit = sc.build(&sc.max_config(), None);
        let cfg = OnDeviceTrainConfig {
            steps: 25,
            lr: 0.1,
            trajectories: 8,
            batch: 1,
            seed: 5,
        };
        let (_, history) = train_vqe_on_device(
            &circuit,
            &task,
            &Device::santiago(),
            &Layout::trivial(2),
            &cfg,
        );
        let first = history[0];
        let last = *history.last().expect("non-empty");
        assert!(last < first, "energy did not drop: {first} -> {last}");
        assert!(last < -0.3, "measured energy {last} not bound");
    }
}
