//! Quantum feature-map (data-encoder) search — the paper's outlook #1.
//!
//! QuantumNAS searches the *processing* circuit but fixes the data
//! encoder. The paper's outlook asks how to extend the noise-adaptive
//! strategy to the feature map itself. This module does the natural first
//! step: a catalogue of encoder variants (different rotation-axis
//! schedules over the same input budget), each co-searched with the
//! standard machinery, with the best validation score winning.

use crate::{
    evolutionary_search, train_supercircuit, Estimator, EvoConfig, SuperCircuit, SuperTrainConfig,
    Task,
};
use qns_circuit::{Circuit, GateKind, Param};

/// A named data-encoder variant.
#[derive(Clone, Debug)]
pub struct EncoderVariant {
    /// Display name (the axis schedule, e.g. `"XYZX"`).
    pub name: String,
    /// The encoder circuit.
    pub circuit: Circuit,
}

/// Builds an encoder over `n_qubits` consuming `n_inputs` values with the
/// given per-layer rotation axes (cycling over qubits).
///
/// # Panics
///
/// Panics if `axes` is empty or contains a non-rotation gate.
pub fn axis_encoder(n_qubits: usize, n_inputs: usize, axes: &[GateKind]) -> Circuit {
    assert!(!axes.is_empty(), "need at least one axis");
    for a in axes {
        assert!(
            matches!(a, GateKind::RX | GateKind::RY | GateKind::RZ),
            "encoders use rotation gates"
        );
    }
    let mut c = Circuit::new(n_qubits);
    let mut input = 0usize;
    'outer: for &axis in axes.iter().cycle() {
        for q in 0..n_qubits {
            if input >= n_inputs {
                break 'outer;
            }
            c.push(axis, &[q], &[Param::Input(input)]);
            input += 1;
        }
    }
    c
}

/// The encoder catalogue searched by [`search_feature_map`]: the paper's
/// XYZX default plus axis permutations and a single-axis baseline.
pub fn encoder_catalogue(n_qubits: usize, n_inputs: usize) -> Vec<EncoderVariant> {
    use GateKind::{RX, RY, RZ};
    let schedules: [(&str, Vec<GateKind>); 5] = [
        ("XYZX", vec![RX, RY, RZ, RX]),
        ("YZXY", vec![RY, RZ, RX, RY]),
        ("ZXYZ", vec![RZ, RX, RY, RZ]),
        ("XYXY", vec![RX, RY, RX, RY]),
        ("YYYY", vec![RY, RY, RY, RY]),
    ];
    schedules
        .into_iter()
        .map(|(name, axes)| EncoderVariant {
            name: name.to_string(),
            circuit: axis_encoder(n_qubits, n_inputs, &axes),
        })
        .collect()
}

/// The outcome of a feature-map search.
#[derive(Clone, Debug)]
pub struct FeatureMapResult {
    /// Winning encoder name.
    pub encoder_name: String,
    /// Winning encoder circuit.
    pub encoder: Circuit,
    /// Its searched gene.
    pub gene: crate::Gene,
    /// Its estimator score.
    pub score: f64,
    /// `(name, score)` per catalogue entry, in catalogue order.
    pub all_scores: Vec<(String, f64)>,
}

/// Co-searches the data encoder alongside the circuit and mapping: for
/// each catalogue encoder, trains a SuperCircuit and runs the standard
/// noise-adaptive evolutionary search; the lowest estimator score wins.
///
/// # Panics
///
/// Panics if `task` is not a QML task (VQE has no data encoder).
pub fn search_feature_map(
    task: &Task,
    sc: &SuperCircuit,
    estimator: &Estimator,
    super_cfg: &SuperTrainConfig,
    evo: &EvoConfig,
) -> FeatureMapResult {
    let (splits, readout, n_inputs) = match task {
        Task::Qml {
            splits,
            readout,
            encoder,
            ..
        } => (splits.clone(), readout.clone(), encoder.num_inputs()),
        Task::Vqe { .. } => panic!("feature-map search applies to QML tasks"),
    };
    let mut best: Option<FeatureMapResult> = None;
    let mut all_scores = Vec::new();
    for (i, variant) in encoder_catalogue(sc.num_qubits(), n_inputs)
        .into_iter()
        .enumerate()
    {
        // Rebuild the task around this encoder.
        let variant_task = Task::Qml {
            name: format!("{}+enc{}", task.name(), variant.name),
            splits: splits.clone(),
            encoder: variant.circuit.clone(),
            readout: readout.clone(),
        };
        let mut cfg = *super_cfg;
        cfg.seed = super_cfg.seed ^ (i as u64);
        let (shared, _) = train_supercircuit(sc, &variant_task, &cfg);
        let mut evo_cfg = evo.clone();
        evo_cfg.seed = evo.seed ^ (i as u64) << 4;
        let search = evolutionary_search(sc, &shared, &variant_task, estimator, &evo_cfg);
        all_scores.push((variant.name.clone(), search.best_score));
        let better = best
            .as_ref()
            .map(|b| search.best_score < b.score)
            .unwrap_or(true);
        if better {
            best = Some(FeatureMapResult {
                encoder_name: variant.name,
                encoder: variant.circuit,
                gene: search.best,
                score: search.best_score,
                all_scores: Vec::new(),
            });
        }
    }
    let mut result = best.expect("catalogue is non-empty");
    result.all_scores = all_scores;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignSpace, EstimatorKind, SpaceKind};
    use qns_noise::Device;

    #[test]
    fn axis_encoder_consumes_exact_inputs() {
        let enc = axis_encoder(4, 10, &[GateKind::RX, GateKind::RY]);
        assert_eq!(enc.num_inputs(), 10);
        assert_eq!(enc.num_ops(), 10);
        assert_eq!(enc.num_train_params(), 0);
    }

    #[test]
    fn catalogue_variants_are_distinct() {
        let cat = encoder_catalogue(4, 16);
        assert_eq!(cat.len(), 5);
        for v in &cat {
            assert_eq!(v.circuit.num_inputs(), 16);
        }
        assert_ne!(cat[0].circuit, cat[1].circuit);
        // The default XYZX matches qns-data's encoder shape.
        let reference = qns_data::encoder_4x4();
        assert_eq!(cat[0].circuit, reference);
    }

    #[test]
    fn feature_map_search_picks_lowest_score() {
        let task = Task::qml_digits(&[1, 8], 20, 4, 3);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::ZzRy), 4, 1);
        let estimator =
            Estimator::new(Device::belem(), EstimatorKind::SuccessRate, 1).with_valid_cap(4);
        let super_cfg = SuperTrainConfig {
            steps: 15,
            batch_size: 6,
            warmup_steps: 2,
            ..Default::default()
        };
        let evo = EvoConfig {
            iterations: 2,
            population: 4,
            parents: 2,
            mutations: 1,
            crossovers: 1,
            ..EvoConfig::fast(1)
        };
        let result = search_feature_map(&task, &sc, &estimator, &super_cfg, &evo);
        assert_eq!(result.all_scores.len(), 5);
        let min = result
            .all_scores
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::INFINITY, f64::min);
        assert!((result.score - min).abs() < 1e-12);
        assert!(result
            .all_scores
            .iter()
            .any(|(n, _)| *n == result.encoder_name));
    }

    #[test]
    #[should_panic(expected = "rotation gates")]
    fn non_rotation_axis_panics() {
        let _ = axis_encoder(2, 4, &[GateKind::H]);
    }
}
