//! Performance estimators: the search engine's fitness function and the
//! final "measured on device" evaluation.

use crate::{Readout, Task};
use qns_chem::qwc_groups;
use qns_circuit::Circuit;
use qns_data::Dataset;
use qns_ml::{accuracy, nll_loss};
use qns_noise::{circuit_success_rate, Device, TrajectoryConfig, TrajectoryExecutor};
use qns_runtime::{counters, timers, Metrics, ShardedCache, Workers};
use qns_sim::{
    parallel_map, run, run_with, ExecMode, SimBackend, SimPlan, StateBatch, DEFAULT_BATCH_LANES,
    DEFAULT_FUSION_LEVEL,
};
use qns_transpile::{transpile_with, Layout, TranspileOptions, Transpiled};
use qns_verify::{VerifyLevel, PANIC_MARKER};
use std::sync::Arc;
use std::time::Instant;

/// How SubCircuit performance is estimated during search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EstimatorKind {
    /// Noise-free simulation only (the paper's noise-unaware baseline).
    Noiseless,
    /// Trajectory simulation with the device noise model — the paper's
    /// accurate-but-slower first method.
    NoisySim(TrajectoryConfig),
    /// Noise-free loss scaled by the compiled circuit's gate success rate —
    /// the paper's fast second method for larger circuits.
    SuccessRate,
    /// Exact density-matrix simulation with the device noise model — what
    /// Qiskit's noisy simulator computes. Exact but `4^n` memory: use for
    /// small circuits and high-precision reference runs.
    DensitySim,
}

/// Scores (circuit, qubit-mapping) pairs on a device.
///
/// Lower scores are better: validation NLL for QML, energy for VQE — the
/// same fitness the paper's evolution engine minimizes.
///
/// # Examples
///
/// ```no_run
/// use quantumnas::{Estimator, EstimatorKind, Task};
/// use qns_noise::{Device, TrajectoryConfig};
/// use qns_transpile::Layout;
///
/// let task = Task::qml_digits(&[3, 6], 40, 4, 0);
/// let est = Estimator::new(
///     Device::yorktown(),
///     EstimatorKind::NoisySim(TrajectoryConfig::default()),
///     2,
/// );
/// # let circuit = qns_circuit::Circuit::new(4);
/// # let params: Vec<f64> = vec![];
/// let score = est.score(&circuit, &params, &task, &Layout::trivial(4));
/// ```
#[derive(Clone, Debug)]
pub struct Estimator {
    device: Device,
    kind: EstimatorKind,
    opt_level: u8,
    /// Cap on validation samples scored per call (speed knob; the paper
    /// evaluates the full validation split).
    valid_cap: usize,
    /// Shared transpile cache; `None` compiles every call.
    transpile_cache: Option<Arc<ShardedCache<Transpiled>>>,
    /// Shared telemetry registry; `None` skips all accounting.
    metrics: Option<Arc<Metrics>>,
    /// Per-stage contract checking on every fresh transpile.
    verify: VerifyLevel,
    /// Which simulator kernels score candidates (`Fast` in production;
    /// `Reference` replays the naive oracle for differential runs).
    backend: SimBackend,
    /// Worker policy for fanning noise trajectories of one candidate over
    /// the runtime engine (VQE measurement path). Sample-parallel QML paths
    /// keep trajectories sequential to avoid nested oversubscription.
    traj_workers: Workers,
}

impl Estimator {
    /// Creates an estimator for a device at a transpiler optimization
    /// level (the paper uses level 2).
    pub fn new(device: Device, kind: EstimatorKind, opt_level: u8) -> Self {
        Estimator {
            device,
            kind,
            opt_level,
            valid_cap: 24,
            transpile_cache: None,
            metrics: None,
            verify: VerifyLevel::Off,
            backend: SimBackend::Fast,
            traj_workers: Workers::Fixed(1),
        }
    }

    /// Selects the simulation backend for every score path.
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The configured simulation backend.
    pub fn backend(&self) -> SimBackend {
        self.backend
    }

    /// Fans noise trajectories for one candidate over the runtime engine in
    /// the trajectory-only paths (VQE measurement). Results are
    /// bit-identical for any worker count.
    pub fn with_trajectory_workers(mut self, workers: Workers) -> Self {
        self.traj_workers = workers;
        self
    }

    /// Caps how many validation samples each score call touches.
    pub fn with_valid_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "need at least one validation sample");
        self.valid_cap = cap;
        self
    }

    /// Turns on per-stage transpiler contract checking. A violation panics
    /// with a [`PANIC_MARKER`]-prefixed message, which the batch engine
    /// catches and classifies as a verification failure (a real error in
    /// the telemetry) instead of silently poisoning the score.
    pub fn with_verify(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// The configured verification level.
    pub fn verify_level(&self) -> VerifyLevel {
        self.verify
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Replaces the device (drifting-noise experiments). Cached transpiles
    /// stay valid: keys embed the full device fingerprint, so the old
    /// device's entries simply stop matching.
    pub fn set_device(&mut self, device: Device) {
        self.device = device;
    }

    /// The estimation mode.
    pub fn kind(&self) -> EstimatorKind {
        self.kind
    }

    /// The transpiler optimization level.
    pub fn opt_level(&self) -> u8 {
        self.opt_level
    }

    /// The validation-sample cap per score call.
    pub fn valid_cap(&self) -> usize {
        self.valid_cap
    }

    /// Bundles a candidate with this estimator's device for training-free
    /// proxy scoring: the topology proxy reads the same calibration data
    /// full scoring would, so proxy ranks track the estimator's noise
    /// awareness.
    pub fn proxy_context<'a>(
        &'a self,
        circuit: &'a Circuit,
        layout: &'a [usize],
        seed: u64,
    ) -> qns_proxy::ProxyContext<'a> {
        qns_proxy::ProxyContext {
            circuit,
            device: &self.device,
            layout,
            seed,
        }
    }

    /// Wires this estimator into a search runtime: compiles go through
    /// `cache` (content-addressed, so distinct devices or opt levels never
    /// collide) and transpile/simulate wall time plus cache hit counters
    /// land in `metrics`.
    pub fn attach_runtime(
        &mut self,
        cache: Option<Arc<ShardedCache<Transpiled>>>,
        metrics: Option<Arc<Metrics>>,
    ) {
        self.transpile_cache = cache;
        self.metrics = metrics;
    }

    /// Depth and 2Q-gate count of the candidate's *compiled* circuit —
    /// the structural objectives of the multi-objective search. Goes
    /// through the shared transpile cache when one is attached, so a
    /// candidate that is also fully scored pays for one compile, not two.
    pub fn compiled_shape(&self, circuit: &Circuit, layout: &Layout) -> (usize, usize) {
        let t = self.compile(circuit, layout);
        (t.depth(), t.circuit.count_2q())
    }

    fn compile(&self, circuit: &Circuit, layout: &Layout) -> Arc<Transpiled> {
        let Some(cache) = &self.transpile_cache else {
            return Arc::new(self.timed_transpile(circuit, layout));
        };
        let key = crate::runtime::transpile_key(circuit, &self.device, layout, self.opt_level);
        let mut compiled = false;
        let t = cache.get_or_insert_with(key, || {
            compiled = true;
            self.timed_transpile(circuit, layout)
        });
        if let Some(m) = &self.metrics {
            let counter = if compiled {
                counters::TRANSPILE_MISSES
            } else {
                counters::TRANSPILE_HITS
            };
            m.incr(counter, 1);
        }
        t
    }

    fn timed_transpile(&self, circuit: &Circuit, layout: &Layout) -> Transpiled {
        // lint:allow(wallclock) — transpile wall time lands in the telemetry registry only
        let start = Instant::now();
        let opts = TranspileOptions::verified(self.verify);
        let result = transpile_with(circuit, &self.device, layout, self.opt_level, opts);
        if let Some(m) = &self.metrics {
            m.record(timers::TRANSPILE, start.elapsed());
            if self.verify.enabled() {
                m.incr(counters::VERIFY_CHECKS, 1);
            }
        }
        match result {
            Ok(t) => t,
            // The marker lets the batch engine tell a contract violation
            // from an arbitrary worker crash (and count it separately).
            Err(e) => {
                let msg = e.to_string();
                if msg.starts_with(PANIC_MARKER) {
                    panic!("{msg}");
                }
                panic!("{PANIC_MARKER} {msg}");
            }
        }
    }

    fn timed_sim<T>(&self, f: impl FnOnce() -> T) -> T {
        match &self.metrics {
            Some(m) => m.time(timers::SIMULATE, f),
            None => f(),
        }
    }

    /// Scores a logical circuit with the given parameters and mapping.
    /// Lower is better (QML validation loss / VQE energy).
    ///
    /// # Panics
    ///
    /// Panics if the layout width differs from the circuit width.
    pub fn score(&self, circuit: &Circuit, params: &[f64], task: &Task, layout: &Layout) -> f64 {
        match task {
            Task::Qml {
                splits, readout, ..
            } => self.score_qml(circuit, params, &splits.valid, readout, layout),
            Task::Vqe { hamiltonian, .. } => self.score_vqe(circuit, params, hamiltonian, layout),
        }
    }

    /// Per-sample validation losses via the batched fast path: the fusion
    /// plan is compiled once, the blocks are materialized once, and the
    /// samples replay in lane-batches — shared blocks sweep every lane at
    /// once, only input-encoding blocks re-materialize per lane. The
    /// reference backend re-runs the naive per-gate oracle instead.
    fn qml_losses(
        &self,
        circuit: &Circuit,
        params: &[f64],
        valid: &Dataset,
        readout: &Readout,
        samples: &[usize],
    ) -> Vec<f64> {
        match self.backend {
            SimBackend::Fast => {
                let plan = SimPlan::compile(circuit, DEFAULT_FUSION_LEVEL);
                let base = plan.materialize(circuit, params, &valid.features[samples[0]]);
                let chunks: Vec<&[usize]> = samples.chunks(DEFAULT_BATCH_LANES).collect();
                let per_chunk: Vec<Vec<f64>> = parallel_map(&chunks, |chunk| {
                    let inputs: Vec<&[f64]> = chunk
                        .iter()
                        .map(|&i| valid.features[i].as_slice())
                        .collect();
                    let mut batch = StateBatch::zero_state(circuit.num_qubits(), inputs.len());
                    plan.replay_batch_into(circuit, &base, params, &inputs, &mut batch);
                    batch
                        .expect_z_all_lanes()
                        .iter()
                        .zip(chunk.iter())
                        .map(|(ez, &i)| nll_loss(&readout.logits(ez), valid.labels[i]))
                        .collect()
                });
                per_chunk.into_iter().flatten().collect()
            }
            SimBackend::Reference => parallel_map(samples, |&i| {
                let s = run_with(
                    circuit,
                    params,
                    &valid.features[i],
                    ExecMode::Dynamic,
                    SimBackend::Reference,
                );
                nll_loss(&readout.logits(&s.expect_z_all()), valid.labels[i])
            }),
            // MPS replays the same fused block program as the fast path,
            // one sample per matrix-product state, densified for readout.
            SimBackend::Mps(_) => parallel_map(samples, |&i| {
                let s = run_with(
                    circuit,
                    params,
                    &valid.features[i],
                    ExecMode::Static,
                    self.backend,
                );
                nll_loss(&readout.logits(&s.expect_z_all()), valid.labels[i])
            }),
        }
    }

    fn score_qml(
        &self,
        circuit: &Circuit,
        params: &[f64],
        valid: &Dataset,
        readout: &Readout,
        layout: &Layout,
    ) -> f64 {
        let n = valid.num_samples().min(self.valid_cap);
        assert!(n > 0, "empty validation split");
        let samples: Vec<usize> = (0..n).collect();
        match self.kind {
            EstimatorKind::Noiseless => {
                let losses =
                    self.timed_sim(|| self.qml_losses(circuit, params, valid, readout, &samples));
                mean(&losses)
            }
            EstimatorKind::SuccessRate => {
                let t = self.compile(circuit, layout);
                let rate = circuit_success_rate(&t.circuit, &self.device, &t.phys_of, true);
                let losses =
                    self.timed_sim(|| self.qml_losses(circuit, params, valid, readout, &samples));
                qns_noise::augmented_loss(mean(&losses), rate.max(1e-6))
            }
            EstimatorKind::NoisySim(cfg) => {
                let t = self.compile(circuit, layout);
                // Samples already fan out below; trajectories stay
                // sequential inside each sample.
                let exec =
                    TrajectoryExecutor::new(self.device.clone(), cfg).with_backend(self.backend);
                let losses = self.timed_sim(|| {
                    parallel_map(&samples, |&i| {
                        let noisy =
                            exec.expect_z(&t.circuit, params, &valid.features[i], &t.phys_of);
                        let logical: Vec<f64> = t
                            .dense_of_logical
                            .iter()
                            .map(|&d| noisy.expect_z[d])
                            .collect();
                        nll_loss(&readout.logits(&logical), valid.labels[i])
                    })
                });
                mean(&losses)
            }
            EstimatorKind::DensitySim => {
                let t = self.compile(circuit, layout);
                let losses = self.timed_sim(|| {
                    parallel_map(&samples, |&i| {
                        let exact = qns_noise::density_expect_z(
                            &t.circuit,
                            params,
                            &valid.features[i],
                            &self.device,
                            &t.phys_of,
                            true,
                        );
                        let logical: Vec<f64> =
                            t.dense_of_logical.iter().map(|&d| exact[d]).collect();
                        nll_loss(&readout.logits(&logical), valid.labels[i])
                    })
                });
                mean(&losses)
            }
        }
    }

    fn score_vqe(
        &self,
        circuit: &Circuit,
        params: &[f64],
        hamiltonian: &qns_chem::PauliSum,
        layout: &Layout,
    ) -> f64 {
        match self.kind {
            EstimatorKind::Noiseless => {
                let s = self
                    .timed_sim(|| run_with(circuit, params, &[], ExecMode::Static, self.backend));
                hamiltonian.expectation(&s)
            }
            EstimatorKind::SuccessRate => {
                let t = self.compile(circuit, layout);
                let rate = circuit_success_rate(&t.circuit, &self.device, &t.phys_of, true);
                let s = self
                    .timed_sim(|| run_with(circuit, params, &[], ExecMode::Static, self.backend));
                let e = hamiltonian.expectation(&s);
                // Depolarization drives <H> toward the identity component,
                // so the estimated measured energy interpolates with the
                // success rate.
                let offset = hamiltonian.identity_coeff();
                offset + rate * (e - offset)
            }
            EstimatorKind::NoisySim(cfg) => {
                self.vqe_energy_measured(circuit, params, hamiltonian, layout, cfg)
            }
            EstimatorKind::DensitySim => {
                let (offset, groups) = qwc_groups(hamiltonian);
                let mut energy = offset;
                for group in &groups {
                    let mut logical = circuit.clone();
                    logical.extend_from(&group.rotation_circuit());
                    let t = self.compile(&logical, layout);
                    let masks: Vec<u64> = group
                        .z_masks()
                        .iter()
                        .map(|&m| {
                            let mut dense = 0u64;
                            for l in 0..circuit.num_qubits() {
                                if m & (1 << l) != 0 {
                                    dense |= 1 << t.dense_of_logical[l];
                                }
                            }
                            dense
                        })
                        .collect();
                    let parities = self.timed_sim(|| {
                        qns_noise::density_expect_masks(
                            &t.circuit,
                            params,
                            &[],
                            &self.device,
                            &t.phys_of,
                            &masks,
                            true,
                        )
                    });
                    energy += group.energy_from_parities(&parities);
                }
                energy
            }
        }
    }

    /// "Measured" VQE energy: transpiles the ansatz plus each
    /// qubit-wise-commuting group's basis rotation, runs the noisy
    /// trajectory executor, and recombines parities — the full hardware
    /// estimation path.
    pub fn vqe_energy_measured(
        &self,
        circuit: &Circuit,
        params: &[f64],
        hamiltonian: &qns_chem::PauliSum,
        layout: &Layout,
        cfg: TrajectoryConfig,
    ) -> f64 {
        let (offset, groups) = qwc_groups(hamiltonian);
        // One candidate at a time here, so its trajectories fan out over
        // the runtime engine (bit-identical for any worker count).
        let exec = TrajectoryExecutor::new(self.device.clone(), cfg)
            .with_workers(self.traj_workers)
            .with_backend(self.backend);
        let mut energy = offset;
        for group in &groups {
            let mut logical = circuit.clone();
            logical.extend_from(&group.rotation_circuit());
            let t = self.compile(&logical, layout);
            // Translate logical parity masks to dense simulator qubits.
            let masks: Vec<u64> = group
                .z_masks()
                .iter()
                .map(|&m| {
                    let mut dense = 0u64;
                    for l in 0..circuit.num_qubits() {
                        if m & (1 << l) != 0 {
                            dense |= 1 << t.dense_of_logical[l];
                        }
                    }
                    dense
                })
                .collect();
            let parities =
                self.timed_sim(|| exec.expect_z_masks(&t.circuit, params, &[], &t.phys_of, &masks));
            energy += group.energy_from_parities(&parities);
        }
        energy
    }

    /// "Measured" QML accuracy on (a subset of) the test split: the final
    /// deployment metric the paper reports from real hardware.
    ///
    /// # Panics
    ///
    /// Panics if called on a VQE task.
    pub fn test_accuracy(
        &self,
        circuit: &Circuit,
        params: &[f64],
        task: &Task,
        layout: &Layout,
        n_test: usize,
        traj: TrajectoryConfig,
    ) -> f64 {
        let (splits, readout) = match task {
            Task::Qml {
                splits, readout, ..
            } => (splits, readout),
            Task::Vqe { .. } => panic!("test_accuracy is a QML metric"),
        };
        let test = splits.test.subsample(n_test, 0x7E57);
        let t = self.compile(circuit, layout);
        let exec = TrajectoryExecutor::new(self.device.clone(), traj).with_backend(self.backend);
        let logits: Vec<Vec<f64>> = parallel_map(&test.features, |input| {
            let noisy = exec.expect_z(&t.circuit, params, input, &t.phys_of);
            let logical: Vec<f64> = t
                .dense_of_logical
                .iter()
                .map(|&d| noisy.expect_z[d])
                .collect();
            readout.logits(&logical)
        });
        accuracy(&logits, &test.labels)
    }

    /// Noise-free accuracy on (a subset of) the test split.
    pub fn ideal_accuracy(
        &self,
        circuit: &Circuit,
        params: &[f64],
        task: &Task,
        n_test: usize,
    ) -> f64 {
        let (splits, readout) = match task {
            Task::Qml {
                splits, readout, ..
            } => (splits, readout),
            Task::Vqe { .. } => panic!("ideal_accuracy is a QML metric"),
        };
        let test = splits.test.subsample(n_test, 0x7E57);
        let logits: Vec<Vec<f64>> = parallel_map(&test.features, |input| {
            let s = run(circuit, params, input, ExecMode::Static);
            readout.logits(&s.expect_z_all())
        });
        accuracy(&logits, &test.labels)
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignSpace, SpaceKind, SuperCircuit};
    use qns_chem::Molecule;

    fn tiny_setup() -> (Task, Circuit, Vec<f64>) {
        let task = Task::qml_digits(&[1, 8], 15, 4, 2);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 1);
        let encoder = match &task {
            Task::Qml { encoder, .. } => encoder.clone(),
            _ => unreachable!(),
        };
        let circuit = sc.build(&sc.max_config(), Some(&encoder));
        let params: Vec<f64> = (0..circuit.num_train_params())
            .map(|i| 0.1 * (i as f64 % 7.0) - 0.3)
            .collect();
        (task, circuit, params)
    }

    #[test]
    fn noiseless_score_is_finite_and_positive() {
        let (task, circuit, params) = tiny_setup();
        let est = Estimator::new(Device::yorktown(), EstimatorKind::Noiseless, 1).with_valid_cap(4);
        let s = est.score(&circuit, &params, &task, &Layout::trivial(4));
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn success_rate_score_exceeds_noiseless() {
        let (task, circuit, params) = tiny_setup();
        let layout = Layout::trivial(4);
        let noiseless = Estimator::new(Device::yorktown(), EstimatorKind::Noiseless, 1)
            .with_valid_cap(4)
            .score(&circuit, &params, &task, &layout);
        let augmented = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1)
            .with_valid_cap(4)
            .score(&circuit, &params, &task, &layout);
        assert!(augmented > noiseless, "{augmented} vs {noiseless}");
    }

    #[test]
    fn noisy_score_runs_and_exceeds_noiseless_on_noisy_device() {
        let (task, circuit, params) = tiny_setup();
        let layout = Layout::trivial(4);
        let cfg = TrajectoryConfig {
            trajectories: 4,
            seed: 1,
            readout: true,
        };
        let noisy = Estimator::new(Device::yorktown(), EstimatorKind::NoisySim(cfg), 1)
            .with_valid_cap(3)
            .score(&circuit, &params, &task, &layout);
        assert!(noisy.is_finite() && noisy > 0.0);
    }

    #[test]
    fn vqe_noiseless_matches_direct_expectation() {
        let mol = Molecule::h2();
        let task = Task::vqe(&mol);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 2, 1);
        let circuit = sc.build(&sc.max_config(), None);
        let params = vec![0.2; circuit.num_train_params()];
        let est = Estimator::new(Device::belem(), EstimatorKind::Noiseless, 1);
        let s = est.score(&circuit, &params, &task, &Layout::trivial(2));
        let direct = {
            let state = run(&circuit, &params, &[], ExecMode::Static);
            mol.hamiltonian().expectation(&state)
        };
        assert!((s - direct).abs() < 1e-10);
    }

    #[test]
    fn vqe_measured_energy_is_damped_toward_offset() {
        let mol = Molecule::h2();
        let task = Task::vqe(&mol);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 2, 1);
        let circuit = sc.build(&sc.max_config(), None);
        // Train briefly so the ideal energy is meaningfully negative.
        let (params, _) = crate::train::train_task(
            &circuit,
            &task,
            &crate::TrainConfig {
                epochs: 120,
                lr: 0.05,
                ..Default::default()
            },
            None,
        );
        let layout = Layout::trivial(2);
        let ideal = Estimator::new(Device::santiago(), EstimatorKind::Noiseless, 1)
            .score(&circuit, &params, &task, &layout);
        let cfg = TrajectoryConfig {
            trajectories: 16,
            seed: 2,
            readout: true,
        };
        let measured = Estimator::new(Device::yorktown(), EstimatorKind::NoisySim(cfg), 1)
            .score(&circuit, &params, &task, &layout);
        // Noise pulls the energy up toward the identity offset.
        assert!(
            measured > ideal - 0.05,
            "measured {measured} vs ideal {ideal}"
        );
        assert!(measured < 0.0, "still bound: {measured}");
    }

    #[test]
    fn density_estimator_matches_many_trajectory_limit() {
        let (task, circuit, params) = tiny_setup();
        let layout = Layout::trivial(4);
        let device = Device::yorktown().scaled_errors(3.0);
        let exact = Estimator::new(device.clone(), EstimatorKind::DensitySim, 1)
            .with_valid_cap(2)
            .score(&circuit, &params, &task, &layout);
        let sampled = Estimator::new(
            device,
            EstimatorKind::NoisySim(TrajectoryConfig {
                trajectories: 600,
                seed: 3,
                readout: true,
            }),
            1,
        )
        .with_valid_cap(2)
        .score(&circuit, &params, &task, &layout);
        assert!(
            (exact - sampled).abs() < 0.05,
            "density {exact} vs trajectory {sampled}"
        );
    }

    #[test]
    fn density_vqe_estimator_is_finite_and_bound() {
        let mol = Molecule::h2();
        let task = Task::vqe(&mol);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 2, 1);
        let circuit = sc.build(&sc.max_config(), None);
        let params = vec![0.3; circuit.num_train_params()];
        let e = Estimator::new(Device::belem(), EstimatorKind::DensitySim, 1).score(
            &circuit,
            &params,
            &task,
            &Layout::trivial(2),
        );
        assert!(e.is_finite());
        assert!(e > mol.fci_energy() - 1e-6, "below the ground energy: {e}");
    }

    #[test]
    fn attached_cache_reuses_transpiles_and_separates_devices() {
        let (task, circuit, params) = tiny_setup();
        let layout = Layout::trivial(4);
        let cache = Arc::new(ShardedCache::new(8));
        let metrics = Arc::new(Metrics::new());
        let mut est =
            Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1).with_valid_cap(2);
        est.attach_runtime(Some(cache.clone()), Some(metrics.clone()));

        let uncached = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1)
            .with_valid_cap(2)
            .score(&circuit, &params, &task, &layout);
        let first = est.score(&circuit, &params, &task, &layout);
        let second = est.score(&circuit, &params, &task, &layout);
        assert_eq!(first, uncached, "caching must not change scores");
        assert_eq!(first, second);
        assert_eq!(metrics.counter(counters::TRANSPILE_MISSES), 1);
        assert_eq!(metrics.counter(counters::TRANSPILE_HITS), 1);
        assert_eq!(cache.len(), 1);

        // A different device must compile fresh, never share an entry.
        est.set_device(Device::yorktown().scaled_errors(2.0));
        est.score(&circuit, &params, &task, &layout);
        assert_eq!(metrics.counter(counters::TRANSPILE_MISSES), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reference_backend_matches_fast_scores() {
        let (task, circuit, params) = tiny_setup();
        let layout = Layout::trivial(4);
        for kind in [EstimatorKind::Noiseless, EstimatorKind::SuccessRate] {
            let fast = Estimator::new(Device::yorktown(), kind, 1)
                .with_valid_cap(4)
                .score(&circuit, &params, &task, &layout);
            let oracle = Estimator::new(Device::yorktown(), kind, 1)
                .with_valid_cap(4)
                .with_backend(qns_sim::SimBackend::Reference)
                .score(&circuit, &params, &task, &layout);
            assert!(
                (fast - oracle).abs() < 1e-9,
                "{kind:?}: fast {fast} vs oracle {oracle}"
            );
        }
    }

    #[test]
    fn mps_backend_matches_fast_scores() {
        // Exact-regime MPS scoring must agree with the dense fast path on
        // every estimator kind, including noisy trajectories (same Kraus
        // draw outcomes in the exact regime).
        let (task, circuit, params) = tiny_setup();
        let layout = Layout::trivial(4);
        let mps = qns_sim::SimBackend::Mps(qns_sim::MpsConfig::exact());
        let cfg = TrajectoryConfig {
            trajectories: 6,
            seed: 4,
            readout: true,
        };
        for kind in [
            EstimatorKind::Noiseless,
            EstimatorKind::SuccessRate,
            EstimatorKind::NoisySim(cfg),
        ] {
            let fast = Estimator::new(Device::yorktown(), kind, 1)
                .with_valid_cap(4)
                .score(&circuit, &params, &task, &layout);
            let via_mps = Estimator::new(Device::yorktown(), kind, 1)
                .with_valid_cap(4)
                .with_backend(mps)
                .score(&circuit, &params, &task, &layout);
            assert!(
                (fast - via_mps).abs() < 1e-9,
                "{kind:?}: fast {fast} vs mps {via_mps}"
            );
        }
    }

    #[test]
    fn parallel_trajectory_vqe_is_bit_identical() {
        let mol = Molecule::h2();
        let task = Task::vqe(&mol);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 2, 1);
        let circuit = sc.build(&sc.max_config(), None);
        let params = vec![0.25; circuit.num_train_params()];
        let layout = Layout::trivial(2);
        let cfg = TrajectoryConfig {
            trajectories: 12,
            seed: 4,
            readout: true,
        };
        let seq = Estimator::new(Device::belem(), EstimatorKind::NoisySim(cfg), 1)
            .score(&circuit, &params, &task, &layout);
        let par = Estimator::new(Device::belem(), EstimatorKind::NoisySim(cfg), 1)
            .with_trajectory_workers(Workers::Fixed(4))
            .score(&circuit, &params, &task, &layout);
        assert_eq!(seq, par, "worker count changed the VQE energy");
    }

    #[test]
    fn test_accuracy_is_in_unit_interval() {
        let (task, circuit, params) = tiny_setup();
        let est = Estimator::new(Device::belem(), EstimatorKind::Noiseless, 1);
        let cfg = TrajectoryConfig {
            trajectories: 2,
            seed: 0,
            readout: true,
        };
        let acc = est.test_accuracy(&circuit, &params, &task, &Layout::trivial(4), 10, cfg);
        assert!((0.0..=1.0).contains(&acc));
        let ideal = est.ideal_accuracy(&circuit, &params, &task, 10);
        assert!((0.0..=1.0).contains(&ideal));
    }
}
