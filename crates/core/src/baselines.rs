//! The paper's baseline circuit designs: human and random.

use crate::{SubConfig, SuperCircuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's human-design baseline: full-width front blocks, with the
/// last block's layers trimmed so the total trainable-parameter count is
/// as close as possible to (without exceeding) `target_params`.
///
/// Returns the [`SubConfig`] within the same SuperCircuit so parameters
/// remain comparable.
///
/// # Panics
///
/// Panics if `target_params` is smaller than one single-gate layer.
///
/// # Examples
///
/// ```
/// use quantumnas::{human_design, DesignSpace, SpaceKind, SuperCircuit};
/// let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 8);
/// let cfg = human_design(&sc, 36);
/// let circuit = sc.build(&cfg, None);
/// assert!(circuit.referenced_train_indices().len() <= 36);
/// ```
pub fn human_design(sc: &SuperCircuit, target_params: usize) -> SubConfig {
    assert!(target_params >= 1, "need a positive parameter budget");
    let n_qubits = sc.num_qubits();
    let layers = sc.space().layers_per_block();
    let mut widths = vec![vec![0usize; layers.len()]; sc.num_blocks()];
    let mut used = 0usize;
    let mut active_blocks = 0usize;
    let mut exhausted = false;
    #[allow(clippy::needless_range_loop)] // `b` is a block index used in two tables
    for b in 0..sc.num_blocks() {
        if exhausted {
            break;
        }
        let mut block_used = false;
        for (l, spec) in layers.iter().enumerate() {
            let per_gate = spec.params_per_gate();
            if per_gate == 0 {
                // Fixed layers are free: full width, as in the paper's
                // human designs.
                widths[b][l] = n_qubits;
                block_used = true;
                continue;
            }
            let afford = ((target_params - used) / per_gate).min(n_qubits);
            widths[b][l] = afford;
            used += afford * per_gate;
            if afford > 0 {
                block_used = true;
            }
            if afford < n_qubits {
                exhausted = true;
            }
        }
        if block_used && widths[b].iter().any(|&w| w > 0) {
            active_blocks = b + 1;
        }
        if exhausted {
            break;
        }
    }
    SubConfig {
        n_blocks: active_blocks.max(1),
        widths,
    }
}

/// The paper's random baseline: a uniformly random architecture whose
/// parameter count is constrained to `target_params` (within one gate's
/// worth); the paper generates three and reports the best — callers vary
/// `seed` for that.
pub fn random_design(sc: &SuperCircuit, target_params: usize, seed: u64) -> SubConfig {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4A17D0);
    let n_qubits = sc.num_qubits();
    let layers = sc.space().layers_per_block();
    let count = |cfg: &SubConfig| -> usize {
        cfg.widths[..cfg.n_blocks]
            .iter()
            .map(|block| {
                block
                    .iter()
                    .zip(layers)
                    .map(|(&w, spec)| w * spec.params_per_gate())
                    .sum::<usize>()
            })
            .sum()
    };
    // Rejection-style: sample, then repair toward the target.
    let mut best: Option<SubConfig> = None;
    for _ in 0..200 {
        let mut cfg = SubConfig {
            n_blocks: rng.gen_range(1..=sc.num_blocks()),
            widths: (0..sc.num_blocks())
                .map(|_| {
                    (0..layers.len())
                        .map(|_| rng.gen_range(1..=n_qubits))
                        .collect()
                })
                .collect(),
        };
        // Shrink while over target.
        let mut guard = 0;
        while count(&cfg) > target_params && guard < 1000 {
            guard += 1;
            let b = rng.gen_range(0..cfg.n_blocks);
            let l = rng.gen_range(0..layers.len());
            if layers[l].params_per_gate() > 0 && cfg.widths[b][l] > 1 {
                cfg.widths[b][l] -= 1;
            } else if cfg.n_blocks > 1 && rng.gen_bool(0.2) {
                cfg.n_blocks -= 1;
            }
        }
        let c = count(&cfg);
        let best_c = best.as_ref().map(&count).unwrap_or(0);
        if c <= target_params && c > best_c {
            best = Some(cfg);
        }
        if best_c == target_params {
            break;
        }
    }
    best.expect("rejection sampling finds a design")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignSpace, SpaceKind};

    fn param_count(sc: &SuperCircuit, cfg: &SubConfig) -> usize {
        sc.build(cfg, None).referenced_train_indices().len()
    }

    #[test]
    fn human_design_hits_target_in_u3cu3() {
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 8);
        for target in [12, 24, 36, 48] {
            let cfg = human_design(&sc, target);
            let n = param_count(&sc, &cfg);
            assert!(n <= target, "target {target}: got {n}");
            assert!(n >= target.saturating_sub(6), "target {target}: got {n}");
        }
    }

    #[test]
    fn human_design_fills_front_blocks_first() {
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 8);
        let cfg = human_design(&sc, 48); // exactly two full blocks
        assert_eq!(cfg.n_blocks, 2);
        assert_eq!(cfg.widths[0], vec![4, 4]);
        assert_eq!(cfg.widths[1], vec![4, 4]);
    }

    #[test]
    fn human_design_works_in_low_param_spaces() {
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::ZzRy), 4, 8);
        let cfg = human_design(&sc, 7); // the paper's Vowel-4 ZZ+RY count
        let n = param_count(&sc, &cfg);
        assert!((5..=7).contains(&n), "got {n}");
    }

    #[test]
    fn random_design_respects_budget_and_varies() {
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 8);
        let a = random_design(&sc, 36, 0);
        let b = random_design(&sc, 36, 1);
        assert!(param_count(&sc, &a) <= 36);
        assert!(param_count(&sc, &b) <= 36);
        assert!(param_count(&sc, &a) >= 24, "uses most of the budget");
        assert_ne!(a, b, "different seeds give different designs");
    }

    #[test]
    fn designs_build_valid_circuits_in_every_space() {
        for &kind in SpaceKind::all() {
            let sc = SuperCircuit::new(DesignSpace::new(kind), 4, 4);
            let budget = sc.space().params_per_block(4).max(4) * 2;
            let h = human_design(&sc, budget);
            let r = random_design(&sc, budget, 3);
            assert!(sc.build(&h, None).num_ops() > 0, "{kind}");
            assert!(sc.build(&r, None).num_ops() > 0, "{kind}");
        }
    }
}
