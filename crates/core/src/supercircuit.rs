//! The gate-sharing SuperCircuit and SubCircuit construction.

use crate::{DesignSpace, LayerArrangement};
use qns_circuit::{Circuit, Param};

/// A SubCircuit architecture: how many blocks, and each layer's width.
///
/// `widths[block][layer]` is the number of gates kept in that layer
/// (1..=n_qubits); blocks beyond `n_blocks` are inactive but keep widths
/// for gene stability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubConfig {
    /// Number of active blocks.
    pub n_blocks: usize,
    /// Per-block, per-layer gate counts.
    pub widths: Vec<Vec<usize>>,
}

impl SubConfig {
    /// The maximal architecture: all blocks at full width.
    pub fn maximal(space: &DesignSpace, n_qubits: usize, n_blocks: usize) -> Self {
        SubConfig {
            n_blocks,
            widths: vec![vec![n_qubits; space.layers_per_block().len()]; n_blocks],
        }
    }

    /// Total number of gates in the active blocks (prefix layers
    /// excluded).
    pub fn num_gates(&self) -> usize {
        self.widths[..self.n_blocks]
            .iter()
            .flat_map(|b| b.iter())
            .sum()
    }

    /// Number of layers that differ from `other` (counting depth-excluded
    /// layers as differing when widths differ) — the restricted-sampling
    /// distance.
    pub fn layer_distance(&self, other: &SubConfig) -> usize {
        let blocks = self.widths.len().max(other.widths.len());
        let mut diff = 0;
        for b in 0..blocks {
            let layers = self
                .widths
                .get(b)
                .map(Vec::len)
                .max(other.widths.get(b).map(Vec::len))
                .unwrap_or(0);
            for l in 0..layers {
                let wa = if b < self.n_blocks {
                    self.widths
                        .get(b)
                        .and_then(|x| x.get(l))
                        .copied()
                        .unwrap_or(0)
                } else {
                    0
                };
                let wb = if b < other.n_blocks {
                    other
                        .widths
                        .get(b)
                        .and_then(|x| x.get(l))
                        .copied()
                        .unwrap_or(0)
                } else {
                    0
                };
                if wa != wb {
                    diff += 1;
                }
            }
        }
        diff
    }
}

/// The gate-sharing SuperCircuit: the largest circuit in the design space,
/// whose parameters are shared by every SubCircuit.
///
/// Parameter layout is position-based: parameter indices are assigned to
/// `(block, layer, position, slot)` for the *full-width* circuit, and a
/// SubCircuit of width `w` references the first `w` positions of each
/// layer — so SubCircuits automatically share the "front blocks and front
/// gates" exactly as the paper describes.
///
/// # Examples
///
/// ```
/// use quantumnas::{DesignSpace, SpaceKind, SubConfig, SuperCircuit};
///
/// let space = DesignSpace::new(SpaceKind::U3Cu3);
/// let sc = SuperCircuit::new(space, 4, 2);
/// assert_eq!(sc.num_params(), 48); // 2 blocks × (4 U3 + 4 CU3) × 3
/// let full = sc.build(&sc.max_config(), None);
/// assert_eq!(full.num_train_params(), 48);
/// ```
#[derive(Clone, Debug)]
pub struct SuperCircuit {
    space: DesignSpace,
    n_qubits: usize,
    n_blocks: usize,
    n_params: usize,
}

impl SuperCircuit {
    /// Creates a SuperCircuit over `n_qubits` with `n_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits < 2` or `n_blocks == 0`.
    pub fn new(space: DesignSpace, n_qubits: usize, n_blocks: usize) -> Self {
        assert!(n_qubits >= 2, "need at least two qubits for ring layers");
        assert!(n_blocks >= 1, "need at least one block");
        let n_params = space.params_per_block(n_qubits) * n_blocks;
        SuperCircuit {
            space,
            n_qubits,
            n_blocks,
            n_params,
        }
    }

    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Maximum number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Size of the shared parameter vector.
    pub fn num_params(&self) -> usize {
        self.n_params
    }

    /// The maximal SubCircuit configuration.
    pub fn max_config(&self) -> SubConfig {
        SubConfig::maximal(&self.space, self.n_qubits, self.n_blocks)
    }

    /// Shared-parameter base index for `(block, layer, position)`.
    fn param_base(&self, block: usize, layer: usize, position: usize) -> usize {
        let layers = self.space.layers_per_block();
        let per_block = self.space.params_per_block(self.n_qubits);
        let mut idx = block * per_block;
        for l in &layers[..layer] {
            idx += l.params_per_gate() * self.n_qubits;
        }
        idx + layers[layer].params_per_gate() * position
    }

    /// Builds the SubCircuit for `config`, optionally prefixed by a data
    /// `encoder` circuit (whose `Input` parameters pass through), with gate
    /// parameters referencing the shared SuperCircuit parameter vector.
    ///
    /// The returned circuit declares `num_train_params() ==
    /// self.num_params()` regardless of how many indices it references, so
    /// any SubCircuit evaluates directly against the shared vector.
    ///
    /// # Panics
    ///
    /// Panics if `config` exceeds the SuperCircuit's blocks/widths or the
    /// encoder width differs.
    pub fn build(&self, config: &SubConfig, encoder: Option<&Circuit>) -> Circuit {
        assert!(
            config.n_blocks >= 1 && config.n_blocks <= self.n_blocks,
            "block count out of range"
        );
        let mut c = Circuit::new(self.n_qubits);
        if let Some(enc) = encoder {
            assert_eq!(enc.num_qubits(), self.n_qubits, "encoder width mismatch");
            c.extend_from(enc);
        }
        // Fixed prefix layers (full width, no parameters in practice).
        for spec in self.space.prefix_layers() {
            for q in 0..self.n_qubits {
                assert_eq!(spec.params_per_gate(), 0, "prefix layers are fixed");
                c.push(spec.gate, &[q], &[]);
            }
        }
        for (b, block_widths) in config.widths[..config.n_blocks].iter().enumerate() {
            assert_eq!(
                block_widths.len(),
                self.space.layers_per_block().len(),
                "one width per layer"
            );
            for (l, (&width, spec)) in block_widths
                .iter()
                .zip(self.space.layers_per_block())
                .enumerate()
            {
                assert!(width <= self.n_qubits, "layer width out of range");
                let width = if self.space.elastic_width() {
                    width
                } else {
                    self.n_qubits
                };
                for pos in 0..width {
                    let base = self.param_base(b, l, pos);
                    let params: Vec<Param> = (0..spec.params_per_gate())
                        .map(|s| Param::Train(base + s))
                        .collect();
                    match spec.arrangement {
                        LayerArrangement::OneQubit => {
                            c.push(spec.gate, &[pos], &params);
                        }
                        LayerArrangement::Ring => {
                            let a = pos;
                            let t = (pos + 1) % self.n_qubits;
                            c.push(spec.gate, &[a, t], &params);
                        }
                    }
                }
            }
        }
        c.set_num_train_params(self.n_params);
        c
    }

    /// The shared-parameter indices a config actually uses — the active
    /// subset updated during one SuperCircuit training step.
    pub fn active_params(&self, config: &SubConfig) -> Vec<usize> {
        self.build(config, None).referenced_train_indices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpaceKind;

    fn sc(kind: SpaceKind, n_qubits: usize, blocks: usize) -> SuperCircuit {
        SuperCircuit::new(DesignSpace::new(kind), n_qubits, blocks)
    }

    #[test]
    fn max_config_uses_all_params() {
        for &kind in SpaceKind::all() {
            let s = sc(kind, 4, 2);
            let c = s.build(&s.max_config(), None);
            assert_eq!(c.referenced_train_indices().len(), s.num_params(), "{kind}");
        }
    }

    #[test]
    fn narrow_config_shares_front_gates() {
        let s = sc(SpaceKind::U3Cu3, 4, 2);
        let mut narrow = s.max_config();
        narrow.widths[0][0] = 2; // first U3 layer: only 2 gates
        let c = s.build(&narrow, None);
        let active = c.referenced_train_indices();
        // First layer params are 0..12 (4 gates × 3); keeping 2 gates keeps
        // indices 0..6 — the *front* gates.
        assert!(active.contains(&0) && active.contains(&5));
        assert!(!active.contains(&6) && !active.contains(&11));
        // Later layers are unaffected.
        assert!(active.contains(&12));
    }

    #[test]
    fn depth_sharing_keeps_front_blocks() {
        let s = sc(SpaceKind::ZzRy, 4, 3);
        let mut shallow = s.max_config();
        shallow.n_blocks = 1;
        let active = s.active_params(&shallow);
        let per_block = s.space().params_per_block(4);
        assert!(active.iter().all(|&i| i < per_block));
        assert_eq!(active.len(), per_block);
    }

    #[test]
    fn built_circuit_declares_full_param_width() {
        let s = sc(SpaceKind::U3Cu3, 4, 3);
        let mut shallow = s.max_config();
        shallow.n_blocks = 1;
        let c = s.build(&shallow, None);
        assert_eq!(c.num_train_params(), s.num_params());
    }

    #[test]
    fn encoder_is_prepended() {
        let s = sc(SpaceKind::U3Cu3, 4, 1);
        let enc = qns_data::encoder_4x4();
        let c = s.build(&s.max_config(), Some(&enc));
        assert_eq!(c.num_inputs(), 16);
        assert_eq!(c.ops()[0].kind, qns_circuit::GateKind::RX);
    }

    #[test]
    fn ibmq_basis_ignores_width_gene() {
        let s = sc(SpaceKind::IbmqBasis, 4, 2);
        let mut narrow = s.max_config();
        narrow.widths[0][0] = 1;
        let full = s.build(&s.max_config(), None);
        let narrowed = s.build(&narrow, None);
        assert_eq!(full.num_ops(), narrowed.num_ops());
    }

    #[test]
    fn rxyz_prefix_layer_present() {
        let s = sc(SpaceKind::Rxyz, 4, 1);
        let c = s.build(&s.max_config(), None);
        assert_eq!(c.count_kind(qns_circuit::GateKind::SH), 4);
    }

    #[test]
    fn layer_distance_counts_changes() {
        let s = sc(SpaceKind::U3Cu3, 4, 2);
        let a = s.max_config();
        let mut b = s.max_config();
        assert_eq!(a.layer_distance(&b), 0);
        b.widths[0][0] = 2;
        b.widths[1][1] = 1;
        assert_eq!(a.layer_distance(&b), 2);
        // Depth change counts the dropped block's layers.
        let mut c = s.max_config();
        c.n_blocks = 1;
        assert_eq!(a.layer_distance(&c), 2);
    }

    #[test]
    fn param_layout_is_contiguous_per_gate() {
        let s = sc(SpaceKind::U3Cu3, 4, 1);
        let c = s.build(&s.max_config(), None);
        // First op is U3 on qubit 0 with params 0, 1, 2.
        let op = &c.ops()[0];
        assert_eq!(op.params[0], Param::Train(0));
        assert_eq!(op.params[2], Param::Train(2));
    }

    #[test]
    #[should_panic(expected = "block count out of range")]
    fn too_many_blocks_panics() {
        let s = sc(SpaceKind::U3Cu3, 4, 2);
        let mut cfg = s.max_config();
        cfg.n_blocks = 5;
        let _ = s.build(&cfg, None);
    }
}
