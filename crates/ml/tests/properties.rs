//! Property-based tests for the classical ML utilities.

use proptest::prelude::*;
use qns_ml::{
    accuracy, cross_entropy_grad, nll_loss, pearson, softmax, spearman, Adam, AdamConfig,
    CosineSchedule, Pca,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Softmax outputs a probability distribution for any logits.
    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-50.0..50.0f64, 1..8)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    /// NLL loss is non-negative and its gradient sums to zero.
    #[test]
    fn loss_and_gradient_laws(
        logits in prop::collection::vec(-10.0..10.0f64, 2..6),
        label_pick in 0usize..100,
    ) {
        let label = label_pick % logits.len();
        prop_assert!(nll_loss(&logits, label) >= -1e-12);
        let g = cross_entropy_grad(&logits, label);
        prop_assert!(g.iter().sum::<f64>().abs() < 1e-9);
        // Gradient entry for the label is negative (pull up), others
        // non-negative (push down).
        for (i, gi) in g.iter().enumerate() {
            if i == label {
                prop_assert!(*gi <= 0.0);
            } else {
                prop_assert!(*gi >= 0.0);
            }
        }
    }

    /// Correlations are bounded by 1 in absolute value; Spearman is
    /// invariant under monotone transforms.
    #[test]
    fn correlations_are_bounded(
        xs in prop::collection::vec(-10.0..10.0f64, 3..12),
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 - 1.0).collect();
        prop_assert!(pearson(&xs, &ys) > 0.999);
        let cubed: Vec<f64> = xs.iter().map(|x| x.powi(3)).collect();
        let rho = spearman(&xs, &cubed);
        prop_assert!(rho > 0.999 || xs.windows(2).all(|w| w[0] == w[1]));
        prop_assert!(pearson(&xs, &cubed).abs() <= 1.0 + 1e-9);
    }

    /// Adam converges on any positive-definite 1-D quadratic.
    #[test]
    fn adam_minimizes_quadratics(
        center in -3.0..3.0f64,
        curvature in 0.2..5.0f64,
        start in -5.0..5.0f64,
    ) {
        let mut opt = Adam::new(1, AdamConfig { weight_decay: 0.0, ..AdamConfig::default() });
        let mut x = vec![start];
        for _ in 0..600 {
            let g = vec![2.0 * curvature * (x[0] - center)];
            opt.step(&mut x, &g, 0.05);
        }
        prop_assert!((x[0] - center).abs() < 0.05, "ended at {}", x[0]);
    }

    /// Cosine schedule stays in [0, peak] everywhere.
    #[test]
    fn schedule_is_bounded(peak in 1e-5..1.0f64, total in 2usize..500, warm_frac in 0.0..0.9f64) {
        let warmup = ((total as f64) * warm_frac) as usize;
        let s = CosineSchedule::new(peak, total, warmup.min(total - 1));
        for step in 0..total + 10 {
            let lr = s.lr(step);
            prop_assert!(lr >= -1e-15 && lr <= peak + 1e-12);
        }
    }

    /// Accuracy is the empirical argmax-match frequency, in [0, 1].
    #[test]
    fn accuracy_bounds(
        rows in prop::collection::vec(prop::collection::vec(-5.0..5.0f64, 3), 1..10),
        labels_seed in 0usize..3,
    ) {
        let labels: Vec<usize> = (0..rows.len()).map(|i| (i + labels_seed) % 3).collect();
        let acc = accuracy(&rows, &labels);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    /// PCA projections of the fitted data are centered.
    #[test]
    fn pca_centers_projections(
        data in prop::collection::vec(prop::collection::vec(-5.0..5.0f64, 3), 4..20),
    ) {
        let pca = Pca::fit(&data, 2);
        let z = pca.transform_batch(&data);
        for k in 0..2 {
            let mean: f64 = z.iter().map(|r| r[k]).sum::<f64>() / z.len() as f64;
            prop_assert!(mean.abs() < 1e-8);
        }
    }
}
