//! Correlation and summary statistics.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient.
///
/// Returns 0 when either input has zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman's rank correlation — the paper's metric for estimator
/// reliability (Figures 9 and 10 report ~0.75).
///
/// Ties receive average ranks.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// // Monotone but nonlinear: rank correlation is exactly 1.
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [1.0, 8.0, 27.0, 64.0];
/// assert!((qns_ml::spearman(&xs, &ys) - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (1-based) with ties averaged.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_linear_relation_is_one() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_detects_inverse_monotone() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [9.0, 4.0, 1.0];
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_near_zero_for_uncorrelated() {
        // A fixed permutation that has near-zero rank correlation.
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ys = [3.0, 7.0, 0.0, 5.0, 2.0, 6.0, 1.0, 4.0];
        assert!(spearman(&xs, &ys).abs() < 0.3);
    }
}
