//! Adam optimizer with decoupled weight decay.

/// Hyperparameters for [`Adam`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdamConfig {
    /// First-moment decay (default 0.9).
    pub beta1: f64,
    /// Second-moment decay (default 0.999).
    pub beta2: f64,
    /// Numerical-stability epsilon (default 1e-8).
    pub eps: f64,
    /// Decoupled weight decay (default 1e-4, the paper's setting).
    pub weight_decay: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 1e-4,
        }
    }
}

/// The Adam optimizer, stateful over a fixed-size parameter vector.
///
/// Weight decay is decoupled (AdamW style): applied directly to the
/// parameters, not folded into the gradient.
///
/// # Examples
///
/// ```
/// use qns_ml::{Adam, AdamConfig};
///
/// // Minimize f(x) = x² from x = 3.
/// let mut opt = Adam::new(1, AdamConfig { weight_decay: 0.0, ..AdamConfig::default() });
/// let mut x = vec![3.0];
/// for _ in 0..500 {
///     let g = vec![2.0 * x[0]];
///     opt.step(&mut x, &g, 0.05);
/// }
/// assert!(x[0].abs() < 1e-2);
/// ```
#[derive(Clone, Debug)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `n` parameters.
    pub fn new(n: usize, config: AdamConfig) -> Self {
        Adam {
            config,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update in place.
    ///
    /// # Panics
    ///
    /// Panics if `params` or `grads` length differs from the optimizer size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * grads[i];
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * grads[i] * grads[i];
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= lr
                * (m_hat / (v_hat.sqrt() + self.config.eps) + self.config.weight_decay * params[i]);
        }
    }

    /// Applies one update only to the parameters whose indices appear in
    /// `active` — the SuperCircuit training primitive, where each step
    /// updates only the sampled SubCircuit's shared parameters.
    ///
    /// Moment estimates for inactive parameters are left untouched.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or out-of-range indices.
    pub fn step_masked(&mut self, params: &mut [f64], grads: &[f64], lr: f64, active: &[usize]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let b1 = self.config.beta1;
        let b2 = self.config.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for &i in active {
            assert!(i < params.len(), "active index {i} out of range");
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * grads[i];
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * grads[i] * grads[i];
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= lr
                * (m_hat / (v_hat.sqrt() + self.config.eps) + self.config.weight_decay * params[i]);
        }
    }

    /// The full mutable state — moment vectors and step count — for
    /// checkpointing. The config is not included; it is part of the run
    /// configuration, not the training trajectory.
    pub fn state(&self) -> (&[f64], &[f64], u64) {
        (&self.m, &self.v, self.t)
    }

    /// Restores state captured with [`Adam::state`]; the restored
    /// optimizer continues the original update sequence bitwise.
    ///
    /// # Panics
    ///
    /// Panics if the moment vectors do not match the optimizer size.
    pub fn restore(&mut self, m: Vec<f64>, v: Vec<f64>, t: u64) {
        assert_eq!(m.len(), self.m.len(), "first-moment length mismatch");
        assert_eq!(v.len(), self.v.len(), "second-moment length mismatch");
        self.m = m;
        self.v = v;
        self.t = t;
    }

    /// Resets optimizer state (moments and step count).
    pub fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_decay() -> AdamConfig {
        AdamConfig {
            weight_decay: 0.0,
            ..AdamConfig::default()
        }
    }

    #[test]
    fn minimizes_quadratic() {
        let mut opt = Adam::new(2, no_decay());
        let mut x = vec![3.0, -2.0];
        for _ in 0..800 {
            let g = vec![2.0 * x[0], 2.0 * (x[1] + 1.0)];
            opt.step(&mut x, &g, 0.05);
        }
        assert!(x[0].abs() < 1e-2);
        assert!((x[1] + 1.0).abs() < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let cfg = AdamConfig {
            weight_decay: 0.1,
            ..AdamConfig::default()
        };
        let mut opt = Adam::new(1, cfg);
        let mut x = vec![5.0];
        for _ in 0..100 {
            opt.step(&mut x, &[0.0], 0.1); // zero gradient: only decay acts
        }
        assert!(x[0] < 5.0 && x[0] > 0.0);
    }

    #[test]
    fn masked_step_only_touches_active() {
        let mut opt = Adam::new(3, no_decay());
        let mut x = vec![1.0, 1.0, 1.0];
        opt.step_masked(&mut x, &[1.0, 1.0, 1.0], 0.1, &[0, 2]);
        assert!(x[0] < 1.0);
        assert_eq!(x[1], 1.0);
        assert!(x[2] < 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(1, no_decay());
        let mut x = vec![1.0];
        opt.step(&mut x, &[1.0], 0.1);
        assert_eq!(opt.steps(), 1);
        opt.reset();
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    #[should_panic(expected = "parameter count")]
    fn size_mismatch_panics() {
        let mut opt = Adam::new(2, no_decay());
        let mut x = vec![1.0];
        opt.step(&mut x, &[1.0], 0.1);
    }
}
