//! Learning-rate schedules.

/// Cosine learning-rate decay with optional linear warmup — the paper's
/// schedule (warmup for SuperCircuit training, plain cosine for SubCircuit
/// training).
///
/// # Examples
///
/// ```
/// use qns_ml::CosineSchedule;
/// let s = CosineSchedule::new(5e-3, 100, 10);
/// assert!(s.lr(0) < 1e-9);           // warmup starts at ~0
/// assert!((s.lr(10) - 5e-3).abs() < 1e-12); // peak after warmup
/// assert!(s.lr(99) < 5e-4);          // decayed near the end
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CosineSchedule {
    peak_lr: f64,
    total_steps: usize,
    warmup_steps: usize,
}

impl CosineSchedule {
    /// Creates a schedule peaking at `peak_lr` after `warmup_steps` of
    /// linear warmup, then decaying over the remaining steps.
    ///
    /// # Panics
    ///
    /// Panics if `total_steps == 0` or `warmup_steps >= total_steps`.
    pub fn new(peak_lr: f64, total_steps: usize, warmup_steps: usize) -> Self {
        assert!(total_steps > 0, "schedule needs at least one step");
        assert!(
            warmup_steps < total_steps,
            "warmup must end before the schedule does"
        );
        CosineSchedule {
            peak_lr,
            total_steps,
            warmup_steps,
        }
    }

    /// Learning rate at `step` (clamped to the schedule length).
    pub fn lr(&self, step: usize) -> f64 {
        let step = step.min(self.total_steps - 1);
        if step < self.warmup_steps {
            return self.peak_lr * step as f64 / self.warmup_steps as f64;
        }
        let progress =
            (step - self.warmup_steps) as f64 / (self.total_steps - self.warmup_steps) as f64;
        0.5 * self.peak_lr * (1.0 + (std::f64::consts::PI * progress).cos())
    }

    /// Total step count.
    pub fn total_steps(&self) -> usize {
        self.total_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_is_linear() {
        let s = CosineSchedule::new(1.0, 100, 10);
        assert!((s.lr(5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_warmup_starts_at_peak() {
        let s = CosineSchedule::new(1.0, 50, 0);
        assert!((s.lr(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_decay_after_warmup() {
        let s = CosineSchedule::new(1.0, 200, 20);
        let mut prev = f64::INFINITY;
        for step in 20..200 {
            let lr = s.lr(step);
            assert!(lr <= prev + 1e-15, "not monotone at {step}");
            prev = lr;
        }
    }

    #[test]
    fn clamps_past_end() {
        let s = CosineSchedule::new(1.0, 10, 0);
        assert_eq!(s.lr(10_000), s.lr(9));
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn warmup_longer_than_total_panics() {
        let _ = CosineSchedule::new(1.0, 10, 10);
    }
}
