//! Classical machine-learning utilities for hybrid quantum-classical
//! training.
//!
//! The paper trains variational circuits with Adam (initial LR 5e-3, weight
//! decay 1e-4), a cosine learning-rate schedule with linear warmup, and a
//! softmax cross-entropy loss over Pauli-Z expectations; it evaluates
//! estimator quality with Spearman's rank correlation and preprocesses the
//! vowel dataset with PCA. This crate implements all of those pieces:
//!
//! - [`Adam`] — Adam with decoupled weight decay,
//! - [`CosineSchedule`] — cosine decay with linear warmup,
//! - [`softmax`], [`nll_loss`], [`cross_entropy_grad`] — classification
//!   loss and its gradient with respect to the logits,
//! - [`spearman`], [`pearson`] — correlation statistics,
//! - [`Pca`] — principal component analysis via the Jacobi eigensolver.
//!
//! # Examples
//!
//! ```
//! use qns_ml::{softmax, Adam, AdamConfig};
//!
//! let p = softmax(&[1.0, 1.0]);
//! assert!((p[0] - 0.5).abs() < 1e-12);
//!
//! let mut opt = Adam::new(2, AdamConfig::default());
//! let mut params = vec![1.0, -1.0];
//! // One step against gradient = params drives both toward zero.
//! let grads = params.clone();
//! opt.step(&mut params, &grads, 5e-3);
//! assert!(params[0] < 1.0 && params[1] > -1.0);
//! ```

mod loss;
mod optim;
mod pca;
mod schedule;
mod stats;

pub use loss::{accuracy, cross_entropy_grad, nll_loss, softmax};
pub use optim::{Adam, AdamConfig};
pub use pca::Pca;
pub use schedule::CosineSchedule;
pub use stats::{mean, pearson, spearman, std_dev};
