//! Principal component analysis.

use qns_tensor::sym_eigen;

/// A fitted PCA transform.
///
/// The paper projects the 10 vowel formant features onto their 10 most
/// significant principal components before encoding; this is that
/// preprocessing step.
///
/// # Examples
///
/// ```
/// use qns_ml::Pca;
/// // Points on a line in 2D: one component explains everything.
/// let data: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
/// let pca = Pca::fit(&data, 1);
/// let z = pca.transform(&data[3]);
/// assert_eq!(z.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Pca {
    mean: Vec<f64>,
    components: Vec<Vec<f64>>,
    explained: Vec<f64>,
}

impl Pca {
    /// Fits `n_components` principal components to `data` (rows = samples).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, rows have inconsistent lengths, or
    /// `n_components` exceeds the feature dimension.
    pub fn fit(data: &[Vec<f64>], n_components: usize) -> Self {
        assert!(!data.is_empty(), "PCA needs samples");
        let d = data[0].len();
        assert!(data.iter().all(|r| r.len() == d), "ragged data");
        assert!(
            n_components <= d,
            "cannot extract {n_components} components from {d} features"
        );
        let n = data.len() as f64;
        let mean: Vec<f64> = (0..d)
            .map(|j| data.iter().map(|r| r[j]).sum::<f64>() / n)
            .collect();
        // Covariance matrix.
        let mut cov = vec![0.0; d * d];
        for r in data {
            for i in 0..d {
                let xi = r[i] - mean[i];
                for j in i..d {
                    cov[i * d + j] += xi * (r[j] - mean[j]);
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                cov[i * d + j] /= n;
                cov[j * d + i] = cov[i * d + j];
            }
        }
        let eig = sym_eigen(&cov, d);
        Pca {
            mean,
            components: eig.vectors.into_iter().take(n_components).collect(),
            explained: eig.values.into_iter().take(n_components).collect(),
        }
    }

    /// Projects one sample onto the fitted components.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|c| {
                c.iter()
                    .zip(x.iter().zip(self.mean.iter()))
                    .map(|(ci, (xi, mi))| ci * (xi - mi))
                    .sum()
            })
            .collect()
    }

    /// Projects a batch of samples.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }

    /// Variance explained by each kept component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained
    }

    /// Number of kept components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Data spread along (1, 1)/√2 with tiny orthogonal noise.
        let data: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = (i as f64 - 50.0) / 10.0;
                let noise = ((i * 7919) % 13) as f64 / 1000.0;
                vec![t + noise, t - noise]
            })
            .collect();
        let pca = Pca::fit(&data, 2);
        let v = &pca.explained_variance();
        assert!(v[0] > 100.0 * v[1], "first component dominates: {v:?}");
    }

    #[test]
    fn transform_centers_data() {
        let data = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let pca = Pca::fit(&data, 2);
        // The mean sample projects to ~0.
        let z = pca.transform(&[3.0, 4.0]);
        assert!(z.iter().all(|x| x.abs() < 1e-9));
    }

    #[test]
    fn explained_variance_is_descending() {
        let data: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let x = i as f64;
                vec![x, 0.5 * x + (i % 5) as f64, (i % 3) as f64]
            })
            .collect();
        let pca = Pca::fit(&data, 3);
        let v = pca.explained_variance();
        assert!(v[0] >= v[1] && v[1] >= v[2]);
    }

    #[test]
    fn batch_matches_single() {
        let data = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let pca = Pca::fit(&data, 2);
        let batch = pca.transform_batch(&data);
        for (row, x) in batch.iter().zip(data.iter()) {
            assert_eq!(row, &pca.transform(x));
        }
    }

    #[test]
    #[should_panic(expected = "components")]
    fn too_many_components_panics() {
        let data = vec![vec![1.0, 2.0]];
        let _ = Pca::fit(&data, 3);
    }
}
