//! Softmax cross-entropy over expectation-value logits.

/// Numerically stable softmax.
///
/// # Panics
///
/// Panics if `logits` is empty.
///
/// # Examples
///
/// ```
/// let p = qns_ml::softmax(&[0.0, 0.0, 0.0]);
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    assert!(!logits.is_empty(), "softmax of empty slice");
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Negative log-likelihood of the true class under softmax probabilities.
///
/// # Panics
///
/// Panics if `label` is out of range.
pub fn nll_loss(logits: &[f64], label: usize) -> f64 {
    assert!(label < logits.len(), "label out of range");
    let p = softmax(logits);
    -(p[label].max(1e-300)).ln()
}

/// Gradient of [`nll_loss`] with respect to the logits:
/// `softmax(z) − one_hot(label)`.
///
/// # Panics
///
/// Panics if `label` is out of range.
pub fn cross_entropy_grad(logits: &[f64], label: usize) -> Vec<f64> {
    assert!(label < logits.len(), "label out of range");
    let mut g = softmax(logits);
    g[label] -= 1.0;
    g
}

/// Fraction of samples whose arg-max logit matches the label.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(all_logits: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(all_logits.len(), labels.len(), "one label per sample");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = all_logits
        .iter()
        .zip(labels)
        .filter(|(logits, &label)| {
            let pred = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty logits");
            pred == label
        })
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_large_values() {
        let p = softmax(&[1e10, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn nll_of_confident_correct_prediction_is_small() {
        assert!(nll_loss(&[10.0, -10.0], 0) < 1e-6);
        assert!(nll_loss(&[10.0, -10.0], 1) > 10.0);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let logits = [0.3, -1.2, 0.7];
        let label = 2;
        let g = cross_entropy_grad(&logits, label);
        let h = 1e-6;
        for i in 0..3 {
            let mut plus = logits;
            plus[i] += h;
            let mut minus = logits;
            minus[i] -= h;
            let fd = (nll_loss(&plus, label) - nll_loss(&minus, label)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-6, "logit {i}");
        }
    }

    #[test]
    fn grad_sums_to_zero() {
        let g = cross_entropy_grad(&[0.1, 0.9, -0.5, 0.3], 1);
        assert!(g.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.4]];
        let labels = vec![0, 1, 1];
        assert!((accuracy(&logits, &labels) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_of_empty_is_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
    }
}
