//! Property tests for the `qns-tensor` primitives.
//!
//! The rest of the workspace leans on these invariants (the MPS backend most
//! of all: bond splitting is SVD + re-contraction), so they are pinned here
//! directly against random small inputs rather than indirectly through the
//! simulator batteries.

use proptest::prelude::*;
use qns_tensor::{svd, Matrix, C64};

const TOL: f64 = 1e-10;

fn arb_c64() -> impl Strategy<Value = C64> {
    (-2.0..2.0f64, -2.0..2.0f64).prop_map(|(re, im)| C64::new(re, im))
}

/// A random complex matrix with shape `rows × cols`, both in `1..=max_dim`.
fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(arb_c64(), rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    })
}

/// A triple of random matrices with chained shapes `(m×k, k×l, l×n)` so both
/// association orders of the product are defined.
fn arb_chain() -> impl Strategy<Value = (Matrix, Matrix, Matrix)> {
    (1..=4usize, 1..=4usize, 1..=4usize, 1..=4usize).prop_flat_map(|(m, k, l, n)| {
        (
            prop::collection::vec(arb_c64(), m * k).prop_map(move |d| Matrix::from_vec(m, k, d)),
            prop::collection::vec(arb_c64(), k * l).prop_map(move |d| Matrix::from_vec(k, l, d)),
            prop::collection::vec(arb_c64(), l * n).prop_map(move |d| Matrix::from_vec(l, n, d)),
        )
    })
}

fn assert_matrices_close(a: &Matrix, b: &Matrix, tol: f64, label: &str) {
    assert_eq!(a.rows(), b.rows(), "{label}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{label}: col mismatch");
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let d = a[(i, j)] - b[(i, j)];
            assert!(
                d.norm_sqr().sqrt() < tol,
                "{label}: entry ({i},{j}) differs by {:.3e}",
                d.norm_sqr().sqrt()
            );
        }
    }
}

fn reconstruct(f: &qns_tensor::Svd) -> Matrix {
    let mut out = Matrix::zeros(f.u.rows(), f.vt.cols());
    for i in 0..f.u.rows() {
        for j in 0..f.vt.cols() {
            let mut acc = C64::ZERO;
            for k in 0..f.rank() {
                acc += f.u[(i, k)].scale(f.s[k]) * f.vt[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `U · diag(s) · Vᵗ` rebuilds the input to ≤1e-10 for arbitrary shapes.
    #[test]
    fn svd_reconstructs_input(a in arb_matrix(6)) {
        let f = svd(&a);
        assert_matrices_close(&a, &reconstruct(&f), TOL, "svd reconstruction");
    }

    /// The left factor has orthonormal columns and the right factor has
    /// orthonormal rows: `UᴴU = I` and `Vᵗ(Vᵗ)ᴴ = I`.
    #[test]
    fn svd_factors_are_orthonormal(a in arb_matrix(6)) {
        let f = svd(&a);
        let gram_u = f.u.adjoint().mul_mat(&f.u);
        let gram_v = f.vt.mul_mat(&f.vt.adjoint());
        for (gram, label) in [(&gram_u, "U"), (&gram_v, "V")] {
            for i in 0..f.rank() {
                for j in 0..f.rank() {
                    let expect = if i == j { C64::ONE } else { C64::ZERO };
                    let d = gram[(i, j)] - expect;
                    prop_assert!(
                        d.norm_sqr().sqrt() < TOL,
                        "{label} gram off identity at ({i},{j})"
                    );
                }
            }
        }
    }

    /// Singular values come back sorted descending and non-negative, with
    /// rank bounded by the smaller dimension.
    #[test]
    fn svd_values_sorted_and_rank_bounded(a in arb_matrix(6)) {
        let f = svd(&a);
        prop_assert!(f.rank() <= a.rows().min(a.cols()));
        for w in f.s.windows(2) {
            prop_assert!(w[0] >= w[1], "singular values not descending");
        }
        for &s in &f.s {
            prop_assert!(s >= 0.0);
        }
    }

    /// Matrix contraction is associative: `(A·B)·C == A·(B·C)` to ≤1e-10.
    #[test]
    fn contraction_is_associative((a, b, c) in arb_chain()) {
        let left = a.mul_mat(&b).mul_mat(&c);
        let right = a.mul_mat(&b.mul_mat(&c));
        assert_matrices_close(&left, &right, TOL, "associativity");
    }

    /// Contraction distributes over the adjoint: `(A·B)ᴴ == Bᴴ·Aᴴ`.
    #[test]
    fn adjoint_reverses_products((a, b, _c) in arb_chain()) {
        let left = a.mul_mat(&b).adjoint();
        let right = b.adjoint().mul_mat(&a.adjoint());
        assert_matrices_close(&left, &right, TOL, "adjoint product");
    }
}
