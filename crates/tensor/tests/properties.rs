//! Property-based tests for the linear-algebra foundation.

use proptest::prelude::*;
use qns_tensor::{sym_eigen, Mat2, Mat4, C64};

fn arb_c64() -> impl Strategy<Value = C64> {
    (-2.0..2.0f64, -2.0..2.0f64).prop_map(|(re, im)| C64::new(re, im))
}

/// A random unitary built from ZYZ angles.
fn arb_unitary() -> impl Strategy<Value = Mat2> {
    (-3.1..3.1f64, -3.1..3.1f64, -3.1..3.1f64).prop_map(|(t, p, l)| {
        let c = (t / 2.0).cos();
        let s = (t / 2.0).sin();
        Mat2::new([
            C64::real(c),
            -C64::cis(l) * s,
            C64::cis(p) * s,
            C64::cis(p + l) * c,
        ])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Complex field axioms: distributivity and conjugation morphism.
    #[test]
    fn complex_field_laws(a in arb_c64(), b in arb_c64(), c in arb_c64()) {
        prop_assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-10));
        prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj(), 1e-10));
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }

    /// Unitaries are closed under product and adjoint inverts.
    #[test]
    fn unitary_group_closure(u in arb_unitary(), v in arb_unitary()) {
        let uv = u.mul_mat(&v);
        prop_assert!(uv.is_unitary(1e-9));
        let back = uv.mul_mat(&uv.adjoint());
        prop_assert!(back.approx_eq(&Mat2::identity(), 1e-9));
    }

    /// Kronecker mixed-product law: (A⊗B)(C⊗D) = (AC)⊗(BD).
    #[test]
    fn kron_mixed_product(
        a in arb_unitary(), b in arb_unitary(),
        c in arb_unitary(), d in arb_unitary(),
    ) {
        let left = a.kron(&b).mul_mat(&c.kron(&d));
        let right = a.mul_mat(&c).kron(&b.mul_mat(&d));
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    /// swap_qubits is an involution and preserves unitarity.
    #[test]
    fn swap_conjugation_involutive(a in arb_unitary(), b in arb_unitary()) {
        let m = a.kron(&b);
        prop_assert!(m.swap_qubits().swap_qubits().approx_eq(&m, 1e-12));
        prop_assert!(m.swap_qubits().is_unitary(1e-9));
        // Swapping a product state's factors commutes with kron order.
        prop_assert!(m.swap_qubits().approx_eq(&b.kron(&a), 1e-9));
    }

    /// Determinant of a unitary has unit modulus; trace bounded by 2.
    #[test]
    fn unitary_det_and_trace(u in arb_unitary()) {
        prop_assert!((u.det().abs() - 1.0).abs() < 1e-9);
        prop_assert!(u.trace().abs() <= 2.0 + 1e-9);
    }

    /// Jacobi eigenvalues reconstruct the matrix trace and Frobenius norm.
    #[test]
    fn eigensolver_invariants(vals in prop::collection::vec(-3.0..3.0f64, 6)) {
        // Symmetric 3x3 from 6 free entries.
        let a = vec![
            vals[0], vals[3], vals[4],
            vals[3], vals[1], vals[5],
            vals[4], vals[5], vals[2],
        ];
        let eig = sym_eigen(&a, 3);
        let trace: f64 = vals[0] + vals[1] + vals[2];
        let eig_sum: f64 = eig.values.iter().sum();
        prop_assert!((trace - eig_sum).abs() < 1e-8);
        let frob: f64 = a.iter().map(|x| x * x).sum();
        let eig_sq: f64 = eig.values.iter().map(|x| x * x).sum();
        prop_assert!((frob - eig_sq).abs() < 1e-7);
    }

    /// Mat4 controlled-gate block structure: |0> control subspace is
    /// untouched for any target unitary.
    #[test]
    fn controlled_gate_preserves_zero_subspace(u in arb_unitary()) {
        let cu = Mat4::controlled(&u);
        prop_assert!(cu.is_unitary(1e-9));
        let v = [C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO];
        let out = cu.mul_vec(&v);
        prop_assert!(out[0].approx_eq(C64::ONE, 1e-12));
        let v = [C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO];
        let out = cu.mul_vec(&v);
        prop_assert!(out[1].approx_eq(C64::ONE, 1e-12));
    }
}
