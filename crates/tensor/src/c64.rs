//! Double-precision complex numbers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// `C64` is `Copy` and deliberately minimal: it implements exactly the
/// operations the simulator and transpiler need, with no external
/// dependencies. The representation is public-by-method (`re`/`im` fields are
/// public because the type is a passive data carrier in the C spirit).
///
/// # Examples
///
/// ```
/// use qns_tensor::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, -C64::ONE);
/// assert!((C64::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates `exp(i * theta)` on the unit circle.
    ///
    /// # Examples
    ///
    /// ```
    /// use qns_tensor::C64;
    /// let z = C64::cis(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|^2`, cheaper than [`C64::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Principal argument in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        C64 {
            re: r * self.im.cos(),
            im: r * self.im.sin(),
        }
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `z` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "attempted to invert zero");
        C64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Fused multiply-add: `self * b + c`.
    #[inline]
    pub fn mul_add(self, b: C64, c: C64) -> Self {
        C64 {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }

    /// Returns `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns `true` if `self` is within `tol` of `other` (per component).
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() < tol && (self.im - other.im).abs() < tol
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^-1 by definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(2.0, -3.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z - z, C64::ZERO);
        assert!((z * z.recip()).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, -C64::ONE);
    }

    #[test]
    fn cis_matches_exp() {
        let t = 0.7;
        let a = C64::cis(t);
        let b = (C64::I * t).exp();
        assert!(a.approx_eq(b, 1e-12));
    }

    #[test]
    fn conj_and_abs() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn arg_quadrants() {
        assert!((C64::new(1.0, 0.0).arg()).abs() < 1e-12);
        assert!((C64::new(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((C64::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = C64::new(1.5, -0.5);
        let b = C64::new(-2.0, 0.25);
        let c = C64::new(0.1, 0.2);
        assert!(a.mul_add(b, c).approx_eq(a * b + c, 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", C64::new(1.0, -2.0)), "1.000000-2.000000i");
        assert_eq!(format!("{}", C64::new(1.0, 2.0)), "1.000000+2.000000i");
    }

    #[test]
    fn sum_of_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert_eq!(total, C64::new(6.0, 4.0));
    }
}
