//! Jacobi eigensolver for small real-symmetric matrices.

/// Eigendecomposition of a real-symmetric matrix.
///
/// Produced by [`sym_eigen`]; eigenpairs are sorted by descending eigenvalue.
#[derive(Clone, Debug, PartialEq)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Row-major eigenvector matrix: `vectors[k]` is the k-th eigenvector.
    pub vectors: Vec<Vec<f64>>,
}

/// Computes all eigenvalues and eigenvectors of a real-symmetric matrix with
/// the cyclic Jacobi method.
///
/// `a` is given in row-major order with shape `n × n`. Intended for small
/// matrices (PCA covariances, few-qubit Hamiltonians embedded as real
/// matrices); complexity is O(n³) per sweep.
///
/// # Panics
///
/// Panics if `a.len() != n * n` or the matrix is not symmetric to within
/// `1e-8` relative tolerance.
///
/// # Examples
///
/// ```
/// let a = vec![2.0, 1.0, 1.0, 2.0];
/// let eig = qns_tensor::sym_eigen(&a, 2);
/// assert!((eig.values[0] - 3.0).abs() < 1e-10);
/// assert!((eig.values[1] - 1.0).abs() < 1e-10);
/// ```
pub fn sym_eigen(a: &[f64], n: usize) -> SymEigen {
    assert_eq!(a.len(), n * n, "matrix data must be n*n");
    let scale = a.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
    for i in 0..n {
        for j in 0..n {
            assert!(
                (a[i * n + j] - a[j * n + i]).abs() <= 1e-8 * scale,
                "matrix must be symmetric"
            );
        }
    }

    let mut m = a.to_vec();
    // v starts as identity; columns accumulate the rotations.
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i * n + j] * m[i * n + j];
            }
        }
        if off.sqrt() < 1e-12 * scale.max(1.0) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|k| {
            let val = m[k * n + k];
            let vec: Vec<f64> = (0..n).map(|i| v[i * n + k]).collect();
            (val, vec)
        })
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("eigenvalues are finite"));

    SymEigen {
        values: pairs.iter().map(|(v, _)| *v).collect(),
        vectors: pairs.into_iter().map(|(_, v)| v).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matvec(a: &[f64], n: usize, x: &[f64]) -> Vec<f64> {
        (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum())
            .collect()
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = vec![3.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0, 5.0];
        let eig = sym_eigen(&a, 3);
        assert!((eig.values[0] - 5.0).abs() < 1e-10);
        assert!((eig.values[1] - 3.0).abs() < 1e-10);
        assert!((eig.values[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigenpairs_satisfy_av_eq_lv() {
        let a = vec![
            4.0, 1.0, 0.5, //
            1.0, 3.0, -0.25, //
            0.5, -0.25, 2.0,
        ];
        let eig = sym_eigen(&a, 3);
        for (lam, vec) in eig.values.iter().zip(eig.vectors.iter()) {
            let av = matvec(&a, 3, vec);
            for (avi, vi) in av.iter().zip(vec.iter()) {
                assert!((avi - lam * vi).abs() < 1e-8, "Av != lambda v");
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = vec![
            2.0, -1.0, 0.0, //
            -1.0, 2.0, -1.0, //
            0.0, -1.0, 2.0,
        ];
        let eig = sym_eigen(&a, 3);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = eig.vectors[i]
                    .iter()
                    .zip(eig.vectors[j].iter())
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = vec![
            1.0, 0.3, 0.2, 0.1, //
            0.3, 2.0, 0.4, 0.0, //
            0.2, 0.4, 3.0, 0.5, //
            0.1, 0.0, 0.5, 4.0,
        ];
        let eig = sym_eigen(&a, 4);
        let sum: f64 = eig.values.iter().sum();
        assert!((sum - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_input_panics() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let _ = sym_eigen(&a, 2);
    }
}
