//! One-sided Jacobi singular value decomposition for complex matrices.
//!
//! The MPS simulator splits two-site tensors back into site tensors with an
//! SVD; this module provides that decomposition without any external linear
//! algebra dependency. The one-sided Jacobi method orthogonalizes the columns
//! of the input by a sequence of exactly-unitary plane rotations, which keeps
//! the factors orthogonal to machine precision — the property the bond
//! truncation in `qns-sim` relies on.

use crate::{Matrix, C64};

/// Singular values smaller than `RANK_FLOOR * s_max` are treated as exact
/// zeros and dropped from the decomposition. This reveals the true rank of
/// structured inputs (e.g. product states) so downstream bond dimensions do
/// not grow on numerically-zero directions, and avoids forming `B_j / s_j`
/// for vanishing columns.
const RANK_FLOOR: f64 = 1e-14;

/// Relative off-diagonal tolerance at which a column pair counts as
/// orthogonal and the Jacobi sweep skips it.
const PAIR_TOL: f64 = 1e-13;

/// Upper bound on Jacobi sweeps; convergence is quadratic once sweeps start
/// landing, so this is far above what small MPS bond matrices need.
const MAX_SWEEPS: usize = 64;

/// Thin singular value decomposition `A = U · diag(s) · Vᵗ` of a complex
/// matrix, with numerically-zero singular values removed.
///
/// Produced by [`svd`]. With `r` the revealed rank, `u` is `rows × r` with
/// orthonormal columns, `s` holds `r` singular values in descending order,
/// and `vt` is `r × cols` with orthonormal rows (`vt` is V-adjoint, so
/// `vt · vtᴴ = I`).
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left factor, `rows × rank`, orthonormal columns.
    pub u: Matrix,
    /// Singular values, descending, all `> RANK_FLOOR * s_max`.
    pub s: Vec<f64>,
    /// Right factor (V-adjoint), `rank × cols`, orthonormal rows.
    pub vt: Matrix,
}

impl Svd {
    /// The revealed rank `r = s.len()`.
    pub fn rank(&self) -> usize {
        self.s.len()
    }
}

/// Computes the thin SVD of `a` by one-sided Jacobi rotations.
///
/// Numerically-zero singular values (below [`RANK_FLOOR`] relative to the
/// largest) are dropped, so the returned factors have the revealed rank of
/// `a` rather than `min(rows, cols)` columns. A zero matrix yields a rank-1
/// factorization with a single zero singular value (factors cannot be empty).
///
/// # Panics
///
/// Panics if `a` has zero rows or columns.
///
/// # Examples
///
/// ```
/// use qns_tensor::{svd, C64, Matrix};
///
/// let a = Matrix::from_vec(2, 2, vec![
///     C64::real(3.0), C64::ZERO,
///     C64::ZERO, C64::real(-2.0),
/// ]);
/// let f = svd(&a);
/// assert!((f.s[0] - 3.0).abs() < 1e-12);
/// assert!((f.s[1] - 2.0).abs() < 1e-12);
/// ```
pub fn svd(a: &Matrix) -> Svd {
    let (rows, cols) = (a.rows(), a.cols());
    assert!(rows > 0 && cols > 0, "svd requires a non-empty matrix");
    if rows < cols {
        // One-sided Jacobi wants a tall matrix; decompose the adjoint and
        // swap the factors: A† = U'ΣV'† implies A = V'ΣU'†.
        let f = svd_tall(&a.adjoint());
        let rank = f.s.len();
        let mut u = Matrix::zeros(rows, rank);
        for i in 0..rows {
            for k in 0..rank {
                u[(i, k)] = f.vt[(k, i)].conj();
            }
        }
        let mut vt = Matrix::zeros(rank, cols);
        for k in 0..rank {
            for j in 0..cols {
                vt[(k, j)] = f.u[(j, k)].conj();
            }
        }
        return Svd { u, s: f.s, vt };
    }
    svd_tall(a)
}

/// One-sided Jacobi SVD for `rows >= cols`.
fn svd_tall(a: &Matrix) -> Svd {
    let (rows, cols) = (a.rows(), a.cols());

    // Working copy of A as column vectors; rotations act on whole columns.
    let mut b: Vec<Vec<C64>> = (0..cols)
        .map(|j| (0..rows).map(|i| a[(i, j)]).collect())
        .collect();
    // V accumulates the same column rotations, starting from the identity.
    let mut v: Vec<Vec<C64>> = (0..cols)
        .map(|j| {
            let mut col = vec![C64::ZERO; cols];
            col[j] = C64::ONE;
            col
        })
        .collect();

    // Columns whose squared norm falls below this are numerically zero;
    // rotating them against live columns computes a garbage phase from
    // subnormal arithmetic (a non-unitary update that corrupts the live
    // column), so such pairs are skipped. The Frobenius norm is invariant
    // under the rotations, so the threshold is computed once.
    let scale_sq: f64 = b
        .iter()
        .flat_map(|col| col.iter())
        .map(|z| z.norm_sqr())
        .sum();
    let dead_sq = RANK_FLOOR * RANK_FLOOR * scale_sq;

    for _ in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..cols {
            for q in (p + 1)..cols {
                let app: f64 = b[p].iter().map(|z| z.norm_sqr()).sum();
                let aqq: f64 = b[q].iter().map(|z| z.norm_sqr()).sum();
                if app <= dead_sq || aqq <= dead_sq {
                    continue;
                }
                let apq: C64 = b[p]
                    .iter()
                    .zip(b[q].iter())
                    .map(|(x, y)| x.conj() * *y)
                    .fold(C64::ZERO, |acc, z| acc + z);
                let off = apq.norm_sqr().sqrt();
                if off <= PAIR_TOL * (app * aqq).sqrt().max(f64::MIN_POSITIVE) {
                    continue;
                }
                rotated = true;
                // Phase of the off-diagonal Gram entry; the rotation below is
                // the standard Hermitian 2×2 diagonalization of
                // [[app, apq], [apq*, aqq]] applied from the right.
                let phase = apq.scale(1.0 / off); // e^{iφ}
                let tau = (aqq - app) / (2.0 * off);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let cs = 1.0 / (1.0 + t * t).sqrt();
                let sn = t * cs;
                let sp = phase.conj(); // e^{-iφ}
                rotate_pair(&mut b, p, q, cs, sn, sp);
                rotate_pair(&mut v, p, q, cs, sn, sp);
            }
        }
        if !rotated {
            break;
        }
    }

    // Column norms are the singular values; sort descending and drop
    // numerically-zero directions.
    let norms: Vec<f64> = b
        .iter()
        .map(|col| col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt())
        .collect();
    let s_max = norms.iter().fold(0.0f64, |m, &x| m.max(x));
    let mut order: Vec<usize> = (0..cols).collect();
    order.sort_by(|&i, &j| {
        norms[j]
            .partial_cmp(&norms[i])
            .expect("singular values are finite")
            .then(i.cmp(&j))
    });
    let kept: Vec<usize> = order
        .into_iter()
        .filter(|&j| norms[j] > RANK_FLOOR * s_max)
        .collect();
    if kept.is_empty() {
        // Zero matrix: `Matrix` cannot have zero dimensions, so return a
        // canonical rank-1 factorization with a zero singular value.
        let mut u = Matrix::zeros(rows, 1);
        u[(0, 0)] = C64::ONE;
        let mut vt = Matrix::zeros(1, cols);
        vt[(0, 0)] = C64::ONE;
        return Svd {
            u,
            s: vec![0.0],
            vt,
        };
    }

    let rank = kept.len();
    let mut u = Matrix::zeros(rows, rank);
    let mut vt = Matrix::zeros(rank, cols);
    let mut s = Vec::with_capacity(rank);
    for (k, &j) in kept.iter().enumerate() {
        let inv = 1.0 / norms[j];
        for i in 0..rows {
            u[(i, k)] = b[j][i].scale(inv);
        }
        for i in 0..cols {
            vt[(k, i)] = v[j][i].conj();
        }
        s.push(norms[j]);
    }
    Svd { u, s, vt }
}

/// Applies the unitary plane rotation
/// `(colp, colq) ← (cs·colp − sn·sp·colq, sn·colp + cs·sp·colq)`
/// to columns `p` and `q`, where `sp = e^{-iφ}` cancels the phase of the
/// Gram off-diagonal.
fn rotate_pair(cols: &mut [Vec<C64>], p: usize, q: usize, cs: f64, sn: f64, sp: C64) {
    debug_assert!(p < q);
    let (head, tail) = cols.split_at_mut(q);
    let cp = &mut head[p];
    let cq = &mut tail[0];
    for (x, y) in cp.iter_mut().zip(cq.iter_mut()) {
        let xp = *x;
        let yq = sp * *y;
        *x = xp.scale(cs) - yq.scale(sn);
        *y = xp.scale(sn) + yq.scale(cs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(f: &Svd) -> Matrix {
        let rank = f.rank();
        let rows = f.u.rows();
        let cols = f.vt.cols();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let mut acc = C64::ZERO;
                for k in 0..rank {
                    acc += f.u[(i, k)].scale(f.s[k]) * f.vt[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    fn assert_reconstructs(a: &Matrix, tol: f64) {
        let f = svd(a);
        let r = reconstruct(&f);
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                let d = a[(i, j)] - r[(i, j)];
                assert!(
                    d.norm_sqr().sqrt() < tol,
                    "reconstruction off at ({i},{j}): {d:?}"
                );
            }
        }
    }

    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64) * 2.0 - 1.0
        };
        let data: Vec<C64> = (0..rows * cols).map(|_| C64::new(next(), next())).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn diagonal_real_matrix() {
        let a = Matrix::from_vec(
            2,
            2,
            vec![C64::real(3.0), C64::ZERO, C64::ZERO, C64::real(-2.0)],
        );
        let f = svd(&a);
        assert_eq!(f.rank(), 2);
        assert!((f.s[0] - 3.0).abs() < 1e-12);
        assert!((f.s[1] - 2.0).abs() < 1e-12);
        assert_reconstructs(&a, 1e-12);
    }

    #[test]
    fn random_square_reconstructs() {
        for seed in 0..8 {
            let a = lcg_matrix(6, 6, seed);
            assert_reconstructs(&a, 1e-10);
        }
    }

    #[test]
    fn random_tall_and_wide_reconstruct() {
        for seed in 0..4 {
            assert_reconstructs(&lcg_matrix(8, 3, seed), 1e-10);
            assert_reconstructs(&lcg_matrix(3, 8, seed + 100), 1e-10);
        }
    }

    #[test]
    fn factors_are_orthonormal() {
        let a = lcg_matrix(7, 4, 42);
        let f = svd(&a);
        let utu = f.u.adjoint().mul_mat(&f.u);
        let vvt = f.vt.mul_mat(&f.vt.adjoint());
        for m in [&utu, &vvt] {
            for i in 0..f.rank() {
                for j in 0..f.rank() {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    let d = m[(i, j)] - C64::real(expect);
                    assert!(d.norm_sqr().sqrt() < 1e-12, "not orthonormal at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn rank_deficient_input_reveals_rank() {
        // Outer product → rank 1.
        let u = [C64::new(1.0, 0.5), C64::new(-0.25, 2.0), C64::real(0.75)];
        let v = [C64::new(0.5, -1.0), C64::new(2.0, 0.125)];
        let mut a = Matrix::zeros(3, 2);
        for i in 0..3 {
            for j in 0..2 {
                a[(i, j)] = u[i] * v[j];
            }
        }
        let f = svd(&a);
        assert_eq!(f.rank(), 1);
        assert_reconstructs(&a, 1e-12);
    }

    #[test]
    fn zero_matrix_yields_zero_singular_value() {
        let a = Matrix::zeros(3, 3);
        let f = svd(&a);
        assert_eq!(f.rank(), 1);
        assert_eq!(f.s[0], 0.0);
        assert_reconstructs(&a, 1e-15);
    }

    #[test]
    fn singular_values_are_sorted_descending() {
        let a = lcg_matrix(5, 5, 7);
        let f = svd(&a);
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
