//! Stack-allocated 2×2 / 4×4 unitaries and a dense heap matrix.

use crate::C64;
use std::fmt;
use std::ops::{Index, IndexMut, Mul};

/// A 2×2 complex matrix in row-major order; the workhorse for one-qubit gates.
///
/// # Examples
///
/// ```
/// use qns_tensor::Mat2;
/// let x = Mat2::pauli_x();
/// assert!(x.mul_mat(&x).approx_eq(&Mat2::identity(), 1e-12));
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Mat2 {
    /// Row-major entries `[m00, m01, m10, m11]`.
    pub m: [C64; 4],
}

impl Mat2 {
    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn new(m: [C64; 4]) -> Self {
        Mat2 { m }
    }

    /// The 2×2 identity.
    pub fn identity() -> Self {
        Mat2::new([C64::ONE, C64::ZERO, C64::ZERO, C64::ONE])
    }

    /// The zero matrix.
    pub fn zero() -> Self {
        Mat2::new([C64::ZERO; 4])
    }

    /// Pauli X.
    pub fn pauli_x() -> Self {
        Mat2::new([C64::ZERO, C64::ONE, C64::ONE, C64::ZERO])
    }

    /// Pauli Y.
    pub fn pauli_y() -> Self {
        Mat2::new([C64::ZERO, -C64::I, C64::I, C64::ZERO])
    }

    /// Pauli Z.
    pub fn pauli_z() -> Self {
        Mat2::new([C64::ONE, C64::ZERO, C64::ZERO, -C64::ONE])
    }

    /// The Hadamard gate.
    pub fn hadamard() -> Self {
        let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        Mat2::new([s, s, s, -s])
    }

    /// Matrix-vector product.
    #[inline]
    pub fn mul_vec(&self, v: &[C64; 2]) -> [C64; 2] {
        [
            self.m[0] * v[0] + self.m[1] * v[1],
            self.m[2] * v[0] + self.m[3] * v[1],
        ]
    }

    /// Matrix-matrix product `self * rhs`.
    #[inline]
    pub fn mul_mat(&self, rhs: &Mat2) -> Mat2 {
        let a = &self.m;
        let b = &rhs.m;
        Mat2::new([
            a[0] * b[0] + a[1] * b[2],
            a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2],
            a[2] * b[1] + a[3] * b[3],
        ])
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat2 {
        Mat2::new([
            self.m[0].conj(),
            self.m[2].conj(),
            self.m[1].conj(),
            self.m[3].conj(),
        ])
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, s: C64) -> Mat2 {
        Mat2::new([self.m[0] * s, self.m[1] * s, self.m[2] * s, self.m[3] * s])
    }

    /// Entry-wise sum.
    pub fn add(&self, rhs: &Mat2) -> Mat2 {
        Mat2::new([
            self.m[0] + rhs.m[0],
            self.m[1] + rhs.m[1],
            self.m[2] + rhs.m[2],
            self.m[3] + rhs.m[3],
        ])
    }

    /// Returns `true` if `U U† = I` to within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.mul_mat(&self.adjoint())
            .approx_eq(&Mat2::identity(), tol)
    }

    /// Entry-wise approximate comparison.
    pub fn approx_eq(&self, rhs: &Mat2, tol: f64) -> bool {
        self.m
            .iter()
            .zip(rhs.m.iter())
            .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Kronecker product `self ⊗ rhs`, producing a 4×4 matrix.
    pub fn kron(&self, rhs: &Mat2) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        out.m[(2 * i + k) * 4 + (2 * j + l)] = self.m[i * 2 + j] * rhs.m[k * 2 + l];
                    }
                }
            }
        }
        out
    }

    /// Determinant.
    pub fn det(&self) -> C64 {
        self.m[0] * self.m[3] - self.m[1] * self.m[2]
    }

    /// Trace.
    pub fn trace(&self) -> C64 {
        self.m[0] + self.m[3]
    }
}

impl Mul for Mat2 {
    type Output = Mat2;
    fn mul(self, rhs: Mat2) -> Mat2 {
        self.mul_mat(&rhs)
    }
}

/// A 4×4 complex matrix in row-major order; the workhorse for two-qubit gates.
///
/// Index convention: basis order is `|q_hi q_lo>` = `|00>, |01>, |10>, |11>`
/// where the *first* qubit passed to the simulator is the high bit.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Mat4 {
    /// Row-major entries.
    pub m: [C64; 16],
}

impl Mat4 {
    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn new(m: [C64; 16]) -> Self {
        Mat4 { m }
    }

    /// The 4×4 identity.
    pub fn identity() -> Self {
        let mut m = [C64::ZERO; 16];
        for i in 0..4 {
            m[i * 4 + i] = C64::ONE;
        }
        Mat4::new(m)
    }

    /// The zero matrix.
    pub fn zero() -> Self {
        Mat4::new([C64::ZERO; 16])
    }

    /// Builds a controlled gate `|0><0| ⊗ I + |1><1| ⊗ u` (control = high bit).
    pub fn controlled(u: &Mat2) -> Self {
        let mut m = Mat4::identity();
        m.m[2 * 4 + 2] = u.m[0];
        m.m[2 * 4 + 3] = u.m[1];
        m.m[3 * 4 + 2] = u.m[2];
        m.m[3 * 4 + 3] = u.m[3];
        m
    }

    /// Matrix-vector product.
    #[inline]
    pub fn mul_vec(&self, v: &[C64; 4]) -> [C64; 4] {
        let mut out = [C64::ZERO; 4];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.m[r * 4..r * 4 + 4];
            *o = row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3] * v[3];
        }
        out
    }

    /// Matrix-matrix product `self * rhs`.
    pub fn mul_mat(&self, rhs: &Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..4 {
            for k in 0..4 {
                let a = self.m[i * 4 + k];
                if a == C64::ZERO {
                    continue;
                }
                for j in 0..4 {
                    out.m[i * 4 + j] += a * rhs.m[k * 4 + j];
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                out.m[j * 4 + i] = self.m[i * 4 + j].conj();
            }
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, s: C64) -> Mat4 {
        let mut out = *self;
        for e in &mut out.m {
            *e *= s;
        }
        out
    }

    /// Entry-wise sum.
    pub fn add(&self, rhs: &Mat4) -> Mat4 {
        let mut out = *self;
        for (e, r) in out.m.iter_mut().zip(rhs.m.iter()) {
            *e += *r;
        }
        out
    }

    /// Returns `true` if `U U† = I` to within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.mul_mat(&self.adjoint())
            .approx_eq(&Mat4::identity(), tol)
    }

    /// Entry-wise approximate comparison.
    pub fn approx_eq(&self, rhs: &Mat4, tol: f64) -> bool {
        self.m
            .iter()
            .zip(rhs.m.iter())
            .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Swaps the roles of the two qubits (conjugation by SWAP).
    pub fn swap_qubits(&self) -> Mat4 {
        let perm = [0usize, 2, 1, 3];
        let mut out = Mat4::zero();
        for i in 0..4 {
            for j in 0..4 {
                out.m[perm[i] * 4 + perm[j]] = self.m[i * 4 + j];
            }
        }
        out
    }

    /// Trace.
    pub fn trace(&self) -> C64 {
        self.m[0] + self.m[5] + self.m[10] + self.m[15]
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        self.mul_mat(&rhs)
    }
}

/// A dense heap-allocated complex matrix in row-major order.
///
/// Used for transpiler resynthesis accumulators, chemistry operators on a few
/// qubits, and tests. Not intended for full many-qubit state evolution — the
/// simulator applies [`Mat2`]/[`Mat4`] directly to the state vector instead.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the row-major backing storage.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul_mat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == C64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "vector length must match columns");
        let mut out = vec![C64::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = C64::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == C64::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Returns `true` if `U U† = I` to within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let prod = self.mul_mat(&self.adjoint());
        let id = Matrix::identity(self.rows);
        prod.approx_eq(&id, tol)
    }

    /// Returns `true` if `M = M†` to within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.approx_eq(&self.adjoint(), tol)
    }

    /// Entry-wise approximate comparison.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.rows == rhs.rows
            && self.cols == rhs.cols
            && self
                .data
                .iter()
                .zip(rhs.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Embeds a [`Mat2`] as a dense matrix.
    pub fn from_mat2(m: &Mat2) -> Matrix {
        Matrix::from_vec(2, 2, m.m.to_vec())
    }

    /// Embeds a [`Mat4`] as a dense matrix.
    pub fn from_mat4(m: &Mat4) -> Matrix {
        Matrix::from_vec(4, 4, m.m.to_vec())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for p in [Mat2::pauli_x(), Mat2::pauli_y(), Mat2::pauli_z()] {
            assert!(p.is_unitary(1e-12));
            assert!(p.approx_eq(&p.adjoint(), 1e-12));
            assert!(p.mul_mat(&p).approx_eq(&Mat2::identity(), 1e-12));
        }
    }

    #[test]
    fn pauli_algebra_xy_is_iz() {
        let xy = Mat2::pauli_x().mul_mat(&Mat2::pauli_y());
        let iz = Mat2::pauli_z().scale(C64::I);
        assert!(xy.approx_eq(&iz, 1e-12));
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = Mat2::hadamard();
        assert!(h.mul_mat(&h).approx_eq(&Mat2::identity(), 1e-12));
    }

    #[test]
    fn controlled_x_is_cnot() {
        let cx = Mat4::controlled(&Mat2::pauli_x());
        // |10> -> |11>
        let v = [C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO];
        let out = cx.mul_vec(&v);
        assert!(out[3].approx_eq(C64::ONE, 1e-12));
        assert!(cx.is_unitary(1e-12));
    }

    #[test]
    fn kron_of_identities_is_identity() {
        let id = Mat2::identity().kron(&Mat2::identity());
        assert!(id.approx_eq(&Mat4::identity(), 1e-12));
    }

    #[test]
    fn kron_xz_acts_correctly() {
        let xz = Mat2::pauli_x().kron(&Mat2::pauli_z());
        // |00> -> X|0> Z|0> = |10>
        let v = [C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO];
        let out = xz.mul_vec(&v);
        assert!(out[2].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn swap_qubits_conjugation() {
        let cx = Mat4::controlled(&Mat2::pauli_x());
        let xc = cx.swap_qubits();
        // Control is now the low bit: |01> -> |11>
        let v = [C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO];
        let out = xc.mul_vec(&v);
        assert!(out[3].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn dense_matrix_roundtrip_and_products() {
        let h = Matrix::from_mat2(&Mat2::hadamard());
        assert!(h.is_unitary(1e-12));
        let hh = h.mul_mat(&h);
        assert!(hh.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn dense_kron_matches_small_kron() {
        let a = Matrix::from_mat2(&Mat2::pauli_x());
        let b = Matrix::from_mat2(&Mat2::pauli_z());
        let big = a.kron(&b);
        let small = Matrix::from_mat4(&Mat2::pauli_x().kron(&Mat2::pauli_z()));
        assert!(big.approx_eq(&small, 1e-12));
    }

    #[test]
    fn dense_hermitian_check() {
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = C64::new(0.0, 1.0);
        m[(1, 0)] = C64::new(0.0, -1.0);
        assert!(m.is_hermitian(1e-12));
        m[(1, 0)] = C64::new(0.0, 1.0);
        assert!(!m.is_hermitian(1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_product_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mul_mat(&b);
    }
}
