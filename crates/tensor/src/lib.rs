//! Complex arithmetic and small dense linear algebra for quantum simulation.
//!
//! This crate is the numeric foundation of the QuantumNAS reproduction. It
//! provides:
//!
//! - [`C64`], a `Copy` double-precision complex number with the full set of
//!   arithmetic operators,
//! - [`Mat2`] and [`Mat4`], stack-allocated 2×2 and 4×4 complex matrices used
//!   for one- and two-qubit unitaries,
//! - [`Matrix`], a heap-allocated dense complex matrix for tooling (transpiler
//!   resynthesis, chemistry),
//! - [`sym_eigen`], a Jacobi eigensolver for small real-symmetric matrices
//!   (used by PCA and by the chemistry substrate's exact diagonalization of
//!   tiny Hamiltonians),
//! - [`svd`], a one-sided Jacobi singular value decomposition for complex
//!   matrices (the bond-splitting primitive of the MPS simulator).
//!
//! # Examples
//!
//! ```
//! use qns_tensor::{C64, Mat2};
//!
//! let h = Mat2::hadamard();
//! let ket0 = [C64::ONE, C64::ZERO];
//! let psi = h.mul_vec(&ket0);
//! assert!((psi[0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
//! ```

mod c64;
mod linalg;
mod mat;
mod svd;

pub use c64::C64;
pub use linalg::{sym_eigen, SymEigen};
pub use mat::{Mat2, Mat4, Matrix};
pub use svd::{svd, Svd};

/// Tolerance used by approximate comparisons throughout the workspace.
pub const EPS: f64 = 1e-9;

/// Returns `true` if two floats agree to within [`EPS`].
///
/// # Examples
///
/// ```
/// assert!(qns_tensor::approx_eq(1.0, 1.0 + 1e-12));
/// assert!(!qns_tensor::approx_eq(1.0, 1.1));
/// ```
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() < EPS
}
