//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] schedules failures at exact points in a run — the Nth
//! candidate evaluation, the Kth loop boundary, the Nth snapshot write —
//! so crash-recovery behaviour can be asserted in tests instead of
//! claimed. Counters are atomic: the plan is shared across evaluation
//! workers and fires exactly once per scheduled site regardless of thread
//! interleaving.

use std::sync::atomic::{AtomicU64, Ordering};

/// Panic-message prefix for injected evaluation faults. The scoring layer
/// uses it to classify an injected failure separately from organic panics
/// and verifier violations in telemetry.
pub const FAULT_MARKER: &str = "qns-fault:";

/// A schedule of deterministic failures. All sites are 1-based: `n = 1`
/// fires on the first event of that kind; `None` (the default) never
/// fires. Each site fires at most once.
///
/// # Examples
///
/// ```
/// use qns_runtime::FaultPlan;
///
/// let plan = FaultPlan::new().fail_eval(2);
/// plan.before_eval(); // first eval passes
/// assert!(std::panic::catch_unwind(|| plan.before_eval()).is_err());
/// plan.before_eval(); // third eval passes again
/// assert_eq!(plan.evals_seen(), 3);
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    fail_eval_at: Option<u64>,
    crash_at_boundary: Option<u64>,
    torn_write_at: Option<u64>,
    evals: AtomicU64,
    boundaries: AtomicU64,
    writes: AtomicU64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Panics (with [`FAULT_MARKER`]) inside the `n`th candidate
    /// evaluation, exercising the engine's panic-isolation path.
    pub fn fail_eval(mut self, n: u64) -> Self {
        self.fail_eval_at = Some(n);
        self
    }

    /// Panics at the `k`th loop boundary (training step, search
    /// generation, or pruning round — whichever loops consult the plan),
    /// simulating a process kill between checkpoints.
    pub fn crash_at_boundary(mut self, k: u64) -> Self {
        self.crash_at_boundary = Some(k);
        self
    }

    /// Publishes the `n`th snapshot save half-written, simulating a torn
    /// write that the loader must detect and skip.
    pub fn torn_write(mut self, n: u64) -> Self {
        self.torn_write_at = Some(n);
        self
    }

    /// Evaluation hook; called by the engine before each candidate eval.
    ///
    /// # Panics
    ///
    /// Panics with a [`FAULT_MARKER`]-prefixed message on the scheduled
    /// evaluation.
    pub fn before_eval(&self) {
        let seen = self.evals.fetch_add(1, Ordering::Relaxed) + 1;
        if self.fail_eval_at == Some(seen) {
            panic!("{FAULT_MARKER} injected failure in evaluation {seen}");
        }
    }

    /// Boundary hook; called by the loops after each checkpoint boundary.
    ///
    /// # Panics
    ///
    /// Panics with a [`FAULT_MARKER`]-prefixed message at the scheduled
    /// boundary — deliberately outside any panic-isolation scope, so it
    /// takes the whole run down like a real kill.
    pub fn at_boundary(&self) {
        let seen = self.boundaries.fetch_add(1, Ordering::Relaxed) + 1;
        if self.crash_at_boundary == Some(seen) {
            panic!("{FAULT_MARKER} simulated crash at boundary {seen}");
        }
    }

    /// Snapshot-write hook; returns `true` when this save should be torn.
    pub fn take_torn_write(&self) -> bool {
        let seen = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        self.torn_write_at == Some(seen)
    }

    /// Evaluations observed so far.
    pub fn evals_seen(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }

    /// Boundaries observed so far.
    pub fn boundaries_seen(&self) -> u64 {
        self.boundaries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn panic_text(f: impl FnOnce()) -> String {
        let payload = catch_unwind(AssertUnwindSafe(f)).expect_err("should panic");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn fires_exactly_once_at_the_scheduled_eval() {
        let plan = FaultPlan::new().fail_eval(3);
        plan.before_eval();
        plan.before_eval();
        let msg = panic_text(|| plan.before_eval());
        assert!(msg.starts_with(FAULT_MARKER), "message was {msg:?}");
        plan.before_eval();
        assert_eq!(plan.evals_seen(), 4);
    }

    #[test]
    fn boundary_crash_is_marked_and_counted() {
        let plan = FaultPlan::new().crash_at_boundary(1);
        let msg = panic_text(|| plan.at_boundary());
        assert!(msg.starts_with(FAULT_MARKER));
        plan.at_boundary();
        assert_eq!(plan.boundaries_seen(), 2);
    }

    #[test]
    fn torn_write_fires_on_the_scheduled_save_only() {
        let plan = FaultPlan::new().torn_write(2);
        assert!(!plan.take_torn_write());
        assert!(plan.take_torn_write());
        assert!(!plan.take_torn_write());
    }

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::new();
        for _ in 0..8 {
            plan.before_eval();
            plan.at_boundary();
            assert!(!plan.take_torn_write());
        }
    }

    #[test]
    fn is_shareable_across_threads() {
        let plan = std::sync::Arc::new(FaultPlan::new().fail_eval(64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let plan = plan.clone();
                scope.spawn(move || {
                    for _ in 0..8 {
                        let _ = catch_unwind(AssertUnwindSafe(|| plan.before_eval()));
                    }
                });
            }
        });
        assert_eq!(plan.evals_seen(), 32);
    }
}
