//! Search telemetry: a lightweight metrics registry (counters, duration
//! histograms) plus a structured per-generation event log and a text
//! summary report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Well-known counter names used across the runtime. Free-form names are
/// also accepted; these constants keep the hot paths typo-proof.
pub mod counters {
    /// Real (non-memoized) candidate evaluations.
    pub const EVALUATIONS: &str = "evaluations";
    /// Gene-score memo hits (candidate skipped entirely).
    pub const MEMO_HITS: &str = "memo_hits";
    /// Transpile-cache hits.
    pub const TRANSPILE_HITS: &str = "transpile_hits";
    /// Transpile-cache misses (fresh compilations).
    pub const TRANSPILE_MISSES: &str = "transpile_misses";
    /// Candidate evaluations that panicked and were poisoned to `+inf`.
    pub const PANICS: &str = "eval_panics";
    /// Verified transpiles: pipelines run with contract checking enabled.
    pub const VERIFY_CHECKS: &str = "verify_checks";
    /// Verification contract violations (each one is a real compiler bug or
    /// an illegal candidate, surfaced instead of silently mis-scored).
    pub const VERIFY_VIOLATIONS: &str = "verify_violations";
    /// Snapshots written to the checkpoint directory.
    pub const CHECKPOINT_WRITES: &str = "checkpoint_writes";
    /// Runs that restored state from a snapshot via `--resume`.
    pub const CHECKPOINT_RESUMES: &str = "checkpoint_resumes";
    /// Snapshots found but rejected at resume (stale configuration: the
    /// run's context digest no longer matches the snapshot's).
    pub const CHECKPOINT_REJECTED: &str = "checkpoint_rejected";
    /// Snapshots skipped as corrupt (torn write, bit rot) during load.
    pub const CHECKPOINT_CORRUPT: &str = "checkpoint_corrupt";
    /// Snapshot saves that failed with an I/O error (run continues).
    pub const CHECKPOINT_IO_ERRORS: &str = "checkpoint_io_errors";
    /// Evaluations failed on purpose by an active `FaultPlan`.
    pub const INJECTED_FAULTS: &str = "injected_faults";
    /// Candidates whose training-free proxy features were computed.
    pub const PROXY_EVALS: &str = "proxy_evals";
    /// Candidates the prescreener escalated to full estimator scoring.
    pub const PROXY_ESCALATIONS: &str = "proxy_escalations";
    /// Structurally-duplicate offspring skipped before any scoring.
    pub const PROXY_DEDUP_HITS: &str = "proxy_dedup_hits";
    /// Generations contributing a proxy-vs-full Spearman observation.
    pub const PROXY_RANK_OBS: &str = "proxy_rank_obs";
    /// Running sum of per-generation `(rho + 1) * 1000`; together with
    /// `PROXY_RANK_OBS` this yields the mean rank correlation without
    /// needing float counters.
    pub const PROXY_RANK_SUM_MILLI: &str = "proxy_rank_sum_milli";
    /// Generations completed by the multi-objective Pareto search.
    pub const PARETO_GENERATIONS: &str = "pareto_generations";
    /// Running sum of per-generation archive (front) sizes; together with
    /// `PARETO_GENERATIONS` this yields the mean front size.
    pub const PARETO_FRONT_SUM: &str = "pareto_front_sum";
    /// Running sum of per-generation archive hypervolume in milli-units
    /// (`round(hv * 1000)` over min-max-normalized objectives); together
    /// with `PARETO_GENERATIONS` this yields the mean hypervolume without
    /// needing float counters.
    pub const PARETO_HV_SUM_MILLI: &str = "pareto_hv_sum_milli";
    /// Pareto objective evaluations whose compiled-shape computation
    /// panicked and was poisoned to `+inf` (surfaced instead of silently
    /// dominating nothing).
    pub const PARETO_SHAPE_POISONED: &str = "pareto_shape_poisoned";
    /// MPS bond-truncation events (splits that discarded Schmidt weight).
    pub const MPS_TRUNCATIONS: &str = "mps_truncations";
    /// Total discarded Schmidt weight across truncations, in picounits
    /// (`round(weight * 1e12)`), so fidelity loss stays auditable without
    /// float counters.
    pub const MPS_TRUNC_WEIGHT_PICO: &str = "mps_trunc_weight_pico";
    /// Largest bond dimension any MPS split produced.
    pub const MPS_MAX_BOND: &str = "mps_max_bond";
}

/// Well-known timer names.
pub mod timers {
    /// Wall time inside the transpiler.
    pub const TRANSPILE: &str = "transpile";
    /// Wall time inside simulation / scoring.
    pub const SIMULATE: &str = "simulate";
    /// Wall time of whole candidate batches.
    pub const BATCH: &str = "batch";
}

/// A log₂-bucketed duration histogram (nanoseconds, 1ns .. ~36s span)
/// with lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

const N_BUCKETS: usize = 36;

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (64 - ns.leading_zeros() as usize).min(N_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns.load(Ordering::Relaxed))
    }

    /// Mean recorded duration (zero when empty).
    pub fn mean(&self) -> Duration {
        let total = self.total_ns.load(Ordering::Relaxed);
        total
            .checked_div(self.count())
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Largest recorded duration.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// Approximate quantile from the log₂ buckets (upper bucket edge).
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_nanos(1u64 << i);
            }
        }
        self.max()
    }
}

/// One generation of an evolutionary (or random) search, as recorded by
/// the runtime for the structured event log.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerationEvent {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best score seen so far, after this generation.
    pub best_score: f64,
    /// Mean score of this generation's population (finite entries only).
    pub mean_score: f64,
    /// Real evaluations this generation.
    pub evaluations: usize,
    /// Memoized (skipped) evaluations this generation.
    pub memo_hits: usize,
    /// Wall time of this generation's scoring batch.
    pub elapsed: Duration,
}

/// The runtime's metrics registry: named counters, named duration
/// histograms, and the per-generation event log.
///
/// All recording paths are `&self` and thread-safe, so one registry can be
/// shared by every worker via `Arc`.
///
/// # Examples
///
/// ```
/// use qns_runtime::Metrics;
/// use std::time::Duration;
///
/// let m = Metrics::new();
/// m.incr("evaluations", 3);
/// m.record("simulate", Duration::from_millis(2));
/// assert_eq!(m.counter("evaluations"), 3);
/// assert!(m.summary().contains("evaluations"));
/// ```
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<Vec<(String, AtomicU64)>>,
    histograms: Mutex<Vec<(String, std::sync::Arc<Histogram>)>>,
    events: Mutex<Vec<GenerationEvent>>,
    started: Mutex<Option<Instant>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics {
            started: Mutex::new(Some(Instant::now())),
            ..Default::default()
        }
    }

    /// Adds `by` to the named counter, creating it at zero on first use.
    pub fn incr(&self, name: &str, by: u64) {
        let mut counters = self.counters.lock().expect("metrics lock");
        match counters.iter().find(|(n, _)| n == name) {
            Some((_, c)) => {
                c.fetch_add(by, Ordering::Relaxed);
            }
            None => counters.push((name.to_string(), AtomicU64::new(by))),
        }
    }

    /// The named counter's current value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("metrics lock")
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Records a duration into the named histogram.
    pub fn record(&self, name: &str, d: Duration) {
        self.histogram(name).record(d);
    }

    /// The named histogram, created on first use.
    pub fn histogram(&self, name: &str) -> std::sync::Arc<Histogram> {
        let mut hists = self.histograms.lock().expect("metrics lock");
        if let Some((_, h)) = hists.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = std::sync::Arc::new(Histogram::default());
        hists.push((name.to_string(), h.clone()));
        h
    }

    /// Times `f`, recording its wall time into the named histogram.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Appends a generation event to the structured log.
    pub fn push_event(&self, event: GenerationEvent) {
        self.events.lock().expect("metrics lock").push(event);
    }

    /// A snapshot of the per-generation event log.
    pub fn events(&self) -> Vec<GenerationEvent> {
        self.events.lock().expect("metrics lock").clone()
    }

    /// Real evaluations per second of wall time since the registry was
    /// created (0 before any evaluation).
    pub fn evals_per_sec(&self) -> f64 {
        let evals = self.counter(counters::EVALUATIONS) as f64;
        let elapsed = self
            .started
            .lock()
            .expect("metrics lock")
            .map(|t| t.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        if elapsed > 0.0 {
            evals / elapsed
        } else {
            0.0
        }
    }

    /// A human-readable text report of every counter, histogram, and the
    /// generation log tail.
    pub fn summary(&self) -> String {
        let mut out = String::from("== runtime telemetry ==\n");
        {
            let counters = self.counters.lock().expect("metrics lock");
            let mut sorted: Vec<(&str, u64)> = counters
                .iter()
                .map(|(n, c)| (n.as_str(), c.load(Ordering::Relaxed)))
                .collect();
            sorted.sort_unstable();
            for (name, value) in sorted {
                out.push_str(&format!("  {name:<22} {value}\n"));
            }
        }
        let evals = self.counter(counters::EVALUATIONS);
        let memo = self.counter(counters::MEMO_HITS);
        if evals + memo > 0 {
            out.push_str(&format!(
                "  {:<22} {:.1}%\n",
                "memo hit rate",
                100.0 * memo as f64 / (evals + memo) as f64
            ));
        }
        let t_hits = self.counter(counters::TRANSPILE_HITS);
        let t_miss = self.counter(counters::TRANSPILE_MISSES);
        if t_hits + t_miss > 0 {
            out.push_str(&format!(
                "  {:<22} {:.1}%\n",
                "transpile hit rate",
                100.0 * t_hits as f64 / (t_hits + t_miss) as f64
            ));
        }
        // When any verified transpiles ran, always show the violation count
        // — a zero here is the line auditors look for.
        if self.counter(counters::VERIFY_CHECKS) > 0 {
            out.push_str(&format!(
                "  {:<22} {}\n",
                "verify violations",
                self.counter(counters::VERIFY_VIOLATIONS)
            ));
        }
        let rank_obs = self.counter(counters::PROXY_RANK_OBS);
        if rank_obs > 0 {
            let mean_rho =
                self.counter(counters::PROXY_RANK_SUM_MILLI) as f64 / rank_obs as f64 / 1000.0
                    - 1.0;
            out.push_str(&format!("  {:<22} {mean_rho:+.3}\n", "proxy rank corr"));
        }
        {
            let hists = self.histograms.lock().expect("metrics lock");
            let mut sorted: Vec<(&str, &std::sync::Arc<Histogram>)> =
                hists.iter().map(|(n, h)| (n.as_str(), h)).collect();
            sorted.sort_unstable_by_key(|(n, _)| *n);
            for (name, h) in sorted {
                if h.count() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {name:<22} n={} total={:?} mean={:?} p90~{:?} max={:?}\n",
                    h.count(),
                    h.total(),
                    h.mean(),
                    h.quantile(0.9),
                    h.max()
                ));
            }
        }
        let rate = self.evals_per_sec();
        if rate > 0.0 {
            out.push_str(&format!("  {:<22} {rate:.1}\n", "evals/sec"));
        }
        let events = self.events.lock().expect("metrics lock");
        if !events.is_empty() {
            out.push_str(&format!("  generations            {}\n", events.len()));
            for e in events.iter().rev().take(3).rev() {
                out.push_str(&format!(
                    "    gen {:>3}: best {:.4}  mean {:.4}  evals {}  memo {}  in {:?}\n",
                    e.generation, e.best_score, e.mean_score, e.evaluations, e.memo_hits, e.elapsed
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let m = std::sync::Arc::new(Metrics::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        m.incr(counters::EVALUATIONS, 1);
                    }
                });
            }
        });
        assert_eq!(m.counter(counters::EVALUATIONS), 400);
        assert_eq!(m.counter("never-touched"), 0);
    }

    #[test]
    fn histograms_track_totals_and_quantiles() {
        let h = Histogram::default();
        for ms in [1u64, 2, 4, 8, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.total(), Duration::from_millis(115));
        assert_eq!(h.mean(), Duration::from_millis(23));
        assert!(h.max() >= Duration::from_millis(100));
        assert!(h.quantile(0.5) >= Duration::from_millis(2));
        assert!(h.quantile(1.0) >= Duration::from_millis(64));
    }

    #[test]
    fn summary_reports_counters_rates_and_events() {
        let m = Metrics::new();
        m.incr(counters::EVALUATIONS, 6);
        m.incr(counters::MEMO_HITS, 2);
        m.incr(counters::TRANSPILE_HITS, 3);
        m.incr(counters::TRANSPILE_MISSES, 1);
        m.record(timers::TRANSPILE, Duration::from_micros(300));
        m.push_event(GenerationEvent {
            generation: 0,
            best_score: 0.5,
            mean_score: 0.8,
            evaluations: 6,
            memo_hits: 2,
            elapsed: Duration::from_millis(10),
        });
        let s = m.summary();
        assert!(s.contains("evaluations"), "{s}");
        assert!(s.contains("memo hit rate"), "{s}");
        assert!(s.contains("25.0%"), "{s}");
        assert!(s.contains("transpile hit rate"), "{s}");
        assert!(s.contains("75.0%"), "{s}");
        assert!(s.contains("gen   0"), "{s}");
    }

    #[test]
    fn time_records_and_passes_through() {
        let m = Metrics::new();
        let v = m.time(timers::SIMULATE, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(m.histogram(timers::SIMULATE).count(), 1);
    }
}
