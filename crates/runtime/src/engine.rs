//! The candidate-evaluation engine: fans a batch of independent
//! evaluations out over scoped worker threads.

use crate::fault::FaultPlan;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How many workers the engine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workers {
    /// One worker per available core.
    Auto,
    /// A fixed worker count (`Fixed(1)` is the sequential reference mode).
    Fixed(usize),
}

impl Workers {
    /// Resolves to a concrete thread count (at least 1).
    pub fn resolve(self) -> usize {
        match self {
            Workers::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Workers::Fixed(n) => n.max(1),
        }
    }
}

impl From<usize> for Workers {
    /// `0` maps to [`Workers::Auto`], anything else to [`Workers::Fixed`].
    fn from(n: usize) -> Self {
        if n == 0 {
            Workers::Auto
        } else {
            Workers::Fixed(n)
        }
    }
}

/// Fans batches of independent candidate evaluations out over worker
/// threads.
///
/// Three invariants, regardless of worker count:
///
/// 1. **Deterministic collection** — results come back in input order;
///    item `i`'s result lands in slot `i`.
/// 2. **Work stealing** — workers pull the next unclaimed index from a
///    shared atomic counter, so an expensive candidate never stalls the
///    rest of the batch behind a static partition.
/// 3. **Panic isolation** — a panicking evaluation (e.g. a transpile hitting
///    an impossible layout) poisons only its own slot with the caller's
///    `on_panic` value instead of tearing down the whole search.
///
/// # Examples
///
/// ```
/// use qns_runtime::{EvalEngine, Workers};
///
/// let engine = EvalEngine::new(Workers::Fixed(2));
/// let out = engine.run(&[1, 2, 3], |&x| x * 10, 0);
/// assert_eq!(out, vec![10, 20, 30]);
/// ```
#[derive(Clone, Debug)]
pub struct EvalEngine {
    workers: Workers,
    faults: Option<Arc<FaultPlan>>,
}

impl EvalEngine {
    /// An engine with the given worker policy.
    pub fn new(workers: Workers) -> Self {
        EvalEngine {
            workers,
            faults: None,
        }
    }

    /// Attaches a fault-injection schedule: [`FaultPlan::before_eval`]
    /// fires inside each evaluation's panic-isolation scope, so an
    /// injected failure poisons one slot exactly like an organic panic.
    pub fn with_fault_plan(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers.resolve()
    }

    /// Evaluates `f` over every item, returning results in input order.
    /// A panicking evaluation yields a clone of `on_panic` in its slot.
    pub fn run<T, U, F>(&self, items: &[T], f: F, on_panic: U) -> Vec<U>
    where
        T: Sync,
        U: Send + Clone + Sync,
        F: Fn(&T) -> U + Sync,
    {
        self.try_run(items, f)
            .into_iter()
            .map(|slot| slot.unwrap_or_else(|_| on_panic.clone()))
            .collect()
    }

    /// [`EvalEngine::run`], but a panicking evaluation yields
    /// `Err(panic message)` in its slot instead of a poison value, so the
    /// caller can classify failures (e.g. a verification contract violation
    /// vs. an unexpected worker crash) rather than folding them all into
    /// one sentinel score.
    pub fn try_run<T, U, F>(&self, items: &[T], f: F) -> Vec<Result<U, String>>
    where
        T: Sync,
        U: Send + Sync,
        F: Fn(&T) -> U + Sync,
    {
        let n_workers = self.workers().min(items.len().max(1));
        let guarded = |item: &T| {
            catch_unwind(AssertUnwindSafe(|| {
                if let Some(plan) = &self.faults {
                    plan.before_eval();
                }
                f(item)
            }))
            .map_err(|p| panic_message(p.as_ref()))
        };
        if n_workers <= 1 || items.len() <= 1 {
            return items.iter().map(guarded).collect();
        }

        let next = AtomicUsize::new(0);
        let out: Mutex<Vec<Option<Result<U, String>>>> =
            Mutex::new((0..items.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..n_workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    // Evaluate outside the lock; the lock only covers the
                    // slot write, which is negligible next to a transpile
                    // or simulation.
                    let value = guarded(&items[i]);
                    out.lock().expect("no panics hold this lock")[i] = Some(value);
                });
            }
        });
        out.into_inner()
            .expect("workers joined")
            .into_iter()
            .map(|slot| slot.expect("every index is claimed by exactly one worker"))
            .collect()
    }
}

/// Extracts the human-readable message from a panic payload (the `&str` or
/// `String` that `panic!` carries; anything else gets a fixed label).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..500).collect();
        for workers in [Workers::Fixed(1), Workers::Fixed(3), Workers::Auto] {
            let engine = EvalEngine::new(workers);
            let out = engine.run(&items, |&x| x * 2, usize::MAX);
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panics_poison_only_their_slot() {
        let items: Vec<usize> = (0..32).collect();
        let engine = EvalEngine::new(Workers::Fixed(4));
        let out = engine.run(
            &items,
            |&x| {
                assert!(x % 7 != 3, "synthetic bad candidate");
                x as f64
            },
            f64::INFINITY,
        );
        for (i, v) in out.iter().enumerate() {
            if i % 7 == 3 {
                assert!(v.is_infinite(), "slot {i} should be poisoned");
            } else {
                assert_eq!(*v, i as f64);
            }
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let engine = EvalEngine::new(Workers::Fixed(8));
        let _ = engine.run(
            &items,
            |_| counter.fetch_add(1, Ordering::Relaxed),
            usize::MAX,
        );
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn try_run_carries_panic_messages() {
        let items: Vec<usize> = (0..16).collect();
        for workers in [Workers::Fixed(1), Workers::Fixed(4)] {
            let engine = EvalEngine::new(workers);
            let out = engine.try_run(&items, |&x| {
                if x % 5 == 2 {
                    panic!("candidate {x} rejected");
                }
                x * 3
            });
            for (i, slot) in out.iter().enumerate() {
                if i % 5 == 2 {
                    let msg = slot.as_ref().unwrap_err();
                    assert!(msg.contains("rejected"), "got {msg:?}");
                } else {
                    assert_eq!(*slot.as_ref().unwrap(), i * 3);
                }
            }
        }
    }

    #[test]
    fn empty_and_singleton_batches_work() {
        let engine = EvalEngine::new(Workers::Auto);
        let empty: Vec<u32> = vec![];
        assert!(engine.run(&empty, |&x| x, 0).is_empty());
        assert_eq!(engine.run(&[9u32], |&x| x + 1, 0), vec![10]);
    }

    #[test]
    fn injected_faults_poison_exactly_one_slot() {
        let items: Vec<usize> = (0..12).collect();
        let plan = Arc::new(FaultPlan::new().fail_eval(5));
        let engine = EvalEngine::new(Workers::Fixed(1)).with_fault_plan(plan.clone());
        let out = engine.try_run(&items, |&x| x);
        let failed: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_err())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failed, vec![4], "sequential mode fails the 5th eval");
        let msg = out[4].as_ref().unwrap_err();
        assert!(msg.starts_with(crate::FAULT_MARKER), "got {msg:?}");
        assert_eq!(plan.evals_seen(), 12);
    }

    #[test]
    fn worker_policy_resolution() {
        assert_eq!(Workers::Fixed(0).resolve(), 1);
        assert_eq!(Workers::Fixed(5).resolve(), 5);
        assert!(Workers::Auto.resolve() >= 1);
        assert_eq!(Workers::from(0), Workers::Auto);
        assert_eq!(Workers::from(3), Workers::Fixed(3));
    }
}
