//! Content-addressed caching: a deterministic structural hasher and a
//! sharded concurrent map keyed by 128-bit structural digests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A 128-bit content digest produced by [`StructuralHasher`].
///
/// Two independently seeded 64-bit FNV-1a streams; a collision requires
/// both to collide simultaneously, which is negligible at search scale
/// (billions of keys would be needed for a birthday collision).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Low half of the digest.
    pub lo: u64,
    /// High half of the digest.
    pub hi: u64,
}

impl CacheKey {
    /// The shard index for `n_shards` shards.
    fn shard(&self, n_shards: usize) -> usize {
        // hi is well-mixed; fold both halves so shard choice is not
        // correlated with equality on either half alone.
        ((self.hi ^ self.lo.rotate_left(32)) as usize) % n_shards
    }
}

/// Deterministic streaming hasher over structured content.
///
/// Unlike `std::collections::hash_map::DefaultHasher`, the digest is
/// stable across runs and platforms (no random state), so cache keys are
/// reproducible — a requirement for the engine's determinism guarantees.
///
/// # Examples
///
/// ```
/// use qns_runtime::StructuralHasher;
///
/// let mut a = StructuralHasher::new();
/// a.write_u64(7);
/// a.write_f64(0.5);
/// let mut b = StructuralHasher::new();
/// b.write_u64(7);
/// b.write_f64(0.5);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Clone, Debug)]
pub struct StructuralHasher {
    lo: u64,
    hi: u64,
}

impl Default for StructuralHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StructuralHasher {
    /// A fresh hasher with the standard FNV offsets.
    pub fn new() -> Self {
        StructuralHasher {
            lo: 0xCBF29CE484222325,
            // Second stream starts from a distinct, fixed offset so the
            // two halves are independent functions of the input.
            hi: 0x84222325CBF29CE4,
        }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ b as u64).wrapping_mul(0x100000001B3);
            self.hi = (self.hi ^ b as u64)
                .wrapping_mul(0x100000001B3)
                .rotate_left(1);
        }
    }

    /// Feeds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by bit pattern (`-0.0` and `0.0` hash differently;
    /// callers that care should normalize first).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string (length-prefixed so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> CacheKey {
        // A final avalanche pass so short inputs still spread over shards.
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        CacheKey {
            lo: mix(self.lo),
            hi: mix(self.hi ^ self.lo.rotate_left(17)),
        }
    }
}

/// Hit/miss counters shared by all shards of a cache.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheStats {
    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 when empty.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// A sharded concurrent map from [`CacheKey`] to `Arc<V>`.
///
/// Lock contention is bounded by sharding: each key maps to one of
/// `n_shards` independent mutex-protected tables. Values are returned as
/// `Arc<V>` so large entries (e.g. transpiled circuits) are shared, never
/// cloned.
///
/// # Examples
///
/// ```
/// use qns_runtime::{ShardedCache, StructuralHasher};
///
/// let cache: ShardedCache<String> = ShardedCache::new(8);
/// let mut h = StructuralHasher::new();
/// h.write_str("circuit-0");
/// let key = h.finish();
/// let v = cache.get_or_insert_with(key, || "compiled".to_string());
/// assert_eq!(*v, "compiled");
/// assert_eq!(cache.stats().misses(), 1);
/// let again = cache.get_or_insert_with(key, || unreachable!());
/// assert_eq!(*again, "compiled");
/// assert_eq!(cache.stats().hits(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Vec<Mutex<HashMap<CacheKey, Arc<V>>>>,
    stats: CacheStats,
}

impl<V> ShardedCache<V> {
    /// A cache with `n_shards` independent shards.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        ShardedCache {
            shards: (0..n_shards).map(|_| Mutex::new(HashMap::new())).collect(),
            stats: CacheStats::default(),
        }
    }

    /// Looks `key` up, computing and inserting with `f` on a miss.
    ///
    /// The compute runs *outside* the shard lock so long-running builds
    /// (transpiles) do not serialize unrelated lookups; two threads racing
    /// on the same fresh key may both compute, with one result kept.
    pub fn get_or_insert_with(&self, key: CacheKey, f: impl FnOnce() -> V) -> Arc<V> {
        if let Some(v) = self.get(key) {
            return v;
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(f());
        let mut shard = self.lock_shard(key);
        shard.entry(key).or_insert_with(|| value.clone()).clone()
    }

    /// Looks `key` up without computing; counts a hit when present.
    pub fn get(&self, key: CacheKey) -> Option<Arc<V>> {
        let shard = self.lock_shard(key);
        let found = shard.get(&key).cloned();
        if found.is_some() {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts without lookup accounting (seeding / warm-up).
    pub fn insert(&self, key: CacheKey, value: V) -> Arc<V> {
        let value = Arc::new(value);
        let mut shard = self.lock_shard(key);
        shard.insert(key, value.clone());
        value
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (keeps hit/miss statistics).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    /// Lookup statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// A deterministic dump of every `(key, value)` pair, sorted by key —
    /// the shape checkpoints need to persist and restore a score memo
    /// bitwise regardless of shard layout or insertion order.
    pub fn entries(&self) -> Vec<(CacheKey, V)>
    where
        V: Clone,
    {
        let mut out: Vec<(CacheKey, V)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            // lint:allow(nondet-iter) — collected across all shards, then
            // sorted by key below before anything observes the order
            out.extend(shard.iter().map(|(&k, v)| (k, (**v).clone())));
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    fn lock_shard(&self, key: CacheKey) -> std::sync::MutexGuard<'_, HashMap<CacheKey, Arc<V>>> {
        self.shards[key.shard(self.shards.len())]
            .lock()
            .expect("cache shard poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(parts: &[u64]) -> CacheKey {
        let mut h = StructuralHasher::new();
        for &p in parts {
            h.write_u64(p);
        }
        h.finish()
    }

    #[test]
    fn digests_are_stable_and_order_sensitive() {
        assert_eq!(key_of(&[1, 2, 3]), key_of(&[1, 2, 3]));
        assert_ne!(key_of(&[1, 2, 3]), key_of(&[3, 2, 1]));
        assert_ne!(key_of(&[1]), key_of(&[1, 0]));
    }

    #[test]
    fn string_hashing_is_length_prefixed() {
        let mut a = StructuralHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StructuralHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache: ShardedCache<u64> = ShardedCache::new(4);
        for i in 0..10 {
            cache.get_or_insert_with(key_of(&[i]), || i * 100);
        }
        assert_eq!(cache.stats().misses(), 10);
        assert_eq!(cache.stats().hits(), 0);
        for i in 0..10 {
            let v = cache.get_or_insert_with(key_of(&[i]), || unreachable!());
            assert_eq!(*v, i * 100);
        }
        assert_eq!(cache.stats().hits(), 10);
        assert_eq!(cache.len(), 10);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let cache: ShardedCache<u64> = ShardedCache::new(2);
        cache.get_or_insert_with(key_of(&[9]), || 9);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses(), 1);
    }

    #[test]
    fn entries_are_sorted_regardless_of_insertion_order() {
        // Regression for a QA005 triage: entries() walks each shard's
        // HashMap, so the dump must be sorted before anyone observes it.
        // Two caches with different shard counts and opposite insertion
        // orders must produce identical dumps.
        let a: ShardedCache<u64> = ShardedCache::new(3);
        let b: ShardedCache<u64> = ShardedCache::new(7);
        for i in 0..50u64 {
            a.insert(key_of(&[i]), i);
            b.insert(key_of(&[49 - i]), 49 - i);
        }
        let ea = a.entries();
        let eb = b.entries();
        assert_eq!(ea, eb);
        assert!(ea.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn concurrent_inserts_converge() {
        let cache = std::sync::Arc::new(ShardedCache::<usize>::new(8));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for i in 0..200 {
                        let v = cache.get_or_insert_with(key_of(&[i]), || i as usize);
                        assert_eq!(*v, i as usize);
                        let _ = t;
                    }
                });
            }
        });
        assert_eq!(cache.len(), 200);
    }
}
