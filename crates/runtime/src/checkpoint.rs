//! Crash-safe checkpointing: a versioned, content-hashed snapshot format
//! with atomic write-rename and corruption-detecting loads.
//!
//! A snapshot is a single file holding one *frame*:
//!
//! | offset | bytes | field |
//! |--------|-------|-------|
//! | 0      | 8     | magic `"QNSCKPT\0"` |
//! | 8      | 4     | format version (LE u32, currently 1) |
//! | 12     | 4     | payload kind tag (LE u32, per [`Checkpointable::KIND`]) |
//! | 16     | 8     | payload length (LE u64) |
//! | 24     | 16    | 128-bit structural digest of the payload |
//! | 40     | n     | payload ([`Checkpointable::encode`] bytes) |
//! | 40+n   | 4     | CRC-32 (IEEE) over bytes `0..40+n` |
//!
//! Writes go to a temp file first and are published with `fs::rename`, so
//! a crash mid-write can never leave a half-written file under a valid
//! snapshot name. Loads verify magic, version, kind, length, CRC, and the
//! payload digest before any field is decoded; every failure mode is a
//! typed [`CheckpointError`], never a panic, so a torn or truncated file
//! simply falls back to the previous snapshot.
//!
//! Serialization is hand-rolled (the workspace is dependency-free): the
//! [`ByteWriter`]/[`ByteReader`] pair speaks little-endian fixed-width
//! integers and `f64::to_bits`, which makes round-trips bitwise exact —
//! the property the resume-determinism guarantee rests on.

use crate::cache::StructuralHasher;
use crate::fault::FaultPlan;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// First 8 bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"QNSCKPT\0";
/// Current frame format version. v2: search-context digests include the
/// simulation backend ([`BackendConfig`](../../quantumnas) wire form), so
/// snapshots written under a different backend no longer resume.
pub const FORMAT_VERSION: u32 = 2;
/// Snapshot filename extension.
pub const EXTENSION: &str = "ckpt";

const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 16;
const TRAILER_LEN: usize = 4;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure while writing or reading.
    Io(io::Error),
    /// The file is shorter than its frame claims (torn write).
    Truncated {
        /// Bytes the frame requires.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The frame was written by an unknown format version.
    UnsupportedVersion(u32),
    /// The payload kind tag does not match the requested state type.
    KindMismatch {
        /// The caller's [`Checkpointable::KIND`].
        expected: u32,
        /// The tag found in the file.
        found: u32,
    },
    /// The CRC-32 trailer does not match the frame bytes (bit rot or a
    /// torn write that still met the length).
    CrcMismatch {
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC computed over the frame.
        found: u32,
    },
    /// The payload's structural digest does not match the header.
    DigestMismatch,
    /// The payload bytes decode to an impossible value.
    Malformed(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Truncated { needed, have } => {
                write!(f, "truncated snapshot: need {needed} bytes, have {have}")
            }
            CheckpointError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            CheckpointError::KindMismatch { expected, found } => {
                write!(f, "snapshot kind {found:#x} where {expected:#x} expected")
            }
            CheckpointError::CrcMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot crc mismatch: header {expected:#x}, computed {found:#x}"
                )
            }
            CheckpointError::DigestMismatch => write!(f, "snapshot payload digest mismatch"),
            CheckpointError::Malformed(what) => write!(f, "malformed snapshot payload: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) over a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Little-endian payload encoder. Floats are written as raw bit patterns,
/// so encode→decode is bitwise exact.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a LE u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a LE u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a usize as a LE u64 (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an f64 as its raw bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked payload decoder: every read returns a typed error on
/// underrun instead of panicking, so arbitrary (corrupt) bytes can be fed
/// through [`decode_snapshot`] safely.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CheckpointError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated {
                needed: end,
                have: self.buf.len(),
            });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a LE u32.
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a LE u64.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a usize written by [`ByteWriter::put_usize`].
    pub fn get_usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.get_u64()?).map_err(|_| CheckpointError::Malformed("usize overflow"))
    }

    /// Reads an f64 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn get_bool(&mut self) -> Result<bool, CheckpointError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed("bool out of range")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CheckpointError> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::Malformed("invalid utf-8"))
    }

    /// Reads a sequence length and rejects lengths that cannot possibly
    /// fit in the remaining bytes (`min_elem_bytes` each) — the guard that
    /// keeps a corrupt length field from forcing a huge allocation.
    pub fn get_seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, CheckpointError> {
        let len = self.get_usize()?;
        let need = len
            .checked_mul(min_elem_bytes.max(1))
            .ok_or(CheckpointError::Malformed("sequence length overflow"))?;
        if need > self.remaining() {
            return Err(CheckpointError::Truncated {
                needed: self.pos + need,
                have: self.buf.len(),
            });
        }
        Ok(len)
    }

    /// Unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every payload byte was consumed — trailing garbage
    /// means the decoder and encoder disagree about the format.
    pub fn expect_consumed(&self) -> Result<(), CheckpointError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CheckpointError::Malformed("trailing payload bytes"))
        }
    }
}

/// A state that can be snapshotted and restored bitwise.
pub trait Checkpointable: Sized {
    /// Frame kind tag; a load only accepts its own kind.
    const KIND: u32;
    /// Stage label used in snapshot filenames (`{label}-{seq}.ckpt`).
    const LABEL: &'static str;
    /// Serializes the full resumable state into the payload.
    fn encode(&self, w: &mut ByteWriter);
    /// Deserializes a payload produced by [`Checkpointable::encode`].
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError>;
}

/// Serializes a state into a complete snapshot frame (header + payload +
/// crc), ready to be written to disk.
pub fn encode_snapshot<T: Checkpointable>(state: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    state.encode(&mut w);
    let payload = w.into_bytes();
    let mut h = StructuralHasher::new();
    h.write_bytes(&payload);
    let digest = h.finish();

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&T::KIND.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&digest.lo.to_le_bytes());
    out.extend_from_slice(&digest.hi.to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates and decodes a snapshot frame. Every corruption mode —
/// truncation, bit rot, wrong kind, garbage payload — comes back as a
/// typed error; this function never panics on untrusted bytes.
pub fn decode_snapshot<T: Checkpointable>(bytes: &[u8]) -> Result<T, CheckpointError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(CheckpointError::Truncated {
            needed: HEADER_LEN + TRAILER_LEN,
            have: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let kind = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if kind != T::KIND {
        return Err(CheckpointError::KindMismatch {
            expected: T::KIND,
            found: kind,
        });
    }
    let payload_len = usize::try_from(u64::from_le_bytes(
        bytes[16..24].try_into().expect("8 bytes"),
    ))
    .map_err(|_| CheckpointError::Malformed("payload length overflow"))?;
    let total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(TRAILER_LEN))
        .ok_or(CheckpointError::Malformed("payload length overflow"))?;
    if bytes.len() < total {
        return Err(CheckpointError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(CheckpointError::Malformed("trailing bytes after frame"));
    }
    let body = &bytes[..HEADER_LEN + payload_len];
    let expected = u32::from_le_bytes(bytes[total - TRAILER_LEN..].try_into().expect("4 bytes"));
    let found = crc32(body);
    if expected != found {
        return Err(CheckpointError::CrcMismatch { expected, found });
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
    let mut h = StructuralHasher::new();
    h.write_bytes(payload);
    let digest = h.finish();
    let header_lo = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let header_hi = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
    if digest.lo != header_lo || digest.hi != header_hi {
        return Err(CheckpointError::DigestMismatch);
    }
    let mut r = ByteReader::new(payload);
    let state = T::decode(&mut r)?;
    r.expect_consumed()?;
    Ok(state)
}

/// Distinguishes concurrently written temp files within one process; the
/// process id separates runs (no wall clock or entropy, which the
/// determinism lint forbids on the search path).
static TMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// A directory of rotated snapshots, one sequence per stage label.
///
/// Saves are atomic (temp file + rename) and monotonically numbered; loads
/// walk the sequence from newest to oldest, skipping any snapshot that
/// fails validation, so one torn write costs at most one checkpoint
/// interval of progress.
///
/// # Examples
///
/// ```no_run
/// use qns_runtime::{ByteReader, ByteWriter, Checkpointable, CheckpointError, CheckpointStore};
///
/// #[derive(PartialEq, Debug)]
/// struct Counter(u64);
/// impl Checkpointable for Counter {
///     const KIND: u32 = 0xC0;
///     const LABEL: &'static str = "counter";
///     fn encode(&self, w: &mut ByteWriter) { w.put_u64(self.0); }
///     fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
///         Ok(Counter(r.get_u64()?))
///     }
/// }
///
/// let store = CheckpointStore::open("/tmp/ckpts").unwrap();
/// store.save(&Counter(7), None).unwrap();
/// let (loaded, corrupt) = store.load_latest::<Counter>();
/// assert_eq!(loaded, Some(Counter(7)));
/// assert_eq!(corrupt, 0);
/// ```
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a snapshot directory, keeping the last 3
    /// snapshots per label by default.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir, keep: 3 })
    }

    /// Overrides how many snapshots per label survive rotation (min 1).
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All `(sequence, path)` pairs for a label, ascending by sequence.
    fn list(&self, label: &str) -> Vec<(u64, PathBuf)> {
        let prefix = format!("{label}-");
        let suffix = format!(".{EXTENSION}");
        let mut out: Vec<(u64, PathBuf)> = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(middle) = name
                .strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix(&suffix))
            else {
                continue;
            };
            if let Ok(seq) = middle.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
        out.sort_unstable_by_key(|&(seq, _)| seq);
        out
    }

    /// The newest sequence number saved under a label, if any.
    pub fn latest_seq(&self, label: &str) -> Option<u64> {
        self.list(label).last().map(|&(seq, _)| seq)
    }

    /// Atomically writes the next snapshot in the label's sequence and
    /// rotates old ones out. When `faults` schedules a torn write for this
    /// save, the file is deliberately published half-written (bypassing
    /// the temp-rename protocol) so recovery paths can be exercised.
    pub fn save<T: Checkpointable>(
        &self,
        state: &T,
        faults: Option<&FaultPlan>,
    ) -> Result<PathBuf, CheckpointError> {
        let seq = self.latest_seq(T::LABEL).map_or(1, |s| s + 1);
        let bytes = encode_snapshot(state);
        let path = self.dir.join(format!("{}-{seq:08}.{EXTENSION}", T::LABEL));
        if faults.is_some_and(FaultPlan::take_torn_write) {
            fs::write(&path, &bytes[..bytes.len() / 2])?;
        } else {
            let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
            let tmp = self
                .dir
                .join(format!(".{}-{}-{nonce}.tmp", T::LABEL, std::process::id()));
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            drop(file);
            if let Err(e) = fs::rename(&tmp, &path) {
                let _ = fs::remove_file(&tmp);
                return Err(e.into());
            }
        }
        self.rotate(T::LABEL);
        Ok(path)
    }

    /// Loads the newest snapshot that validates, walking backwards over
    /// corrupt ones. Returns the state (if any survives) and how many
    /// snapshots were rejected on the way.
    pub fn load_latest<T: Checkpointable>(&self) -> (Option<T>, usize) {
        let mut corrupt = 0usize;
        for (_, path) in self.list(T::LABEL).into_iter().rev() {
            match fs::read(&path).map_err(CheckpointError::from) {
                Ok(bytes) => match decode_snapshot::<T>(&bytes) {
                    Ok(state) => return (Some(state), corrupt),
                    Err(_) => corrupt += 1,
                },
                Err(_) => corrupt += 1,
            }
        }
        (None, corrupt)
    }

    fn rotate(&self, label: &str) {
        let snapshots = self.list(label);
        if snapshots.len() > self.keep {
            for (_, path) in &snapshots[..snapshots.len() - self.keep] {
                let _ = fs::remove_file(path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Demo {
        id: u64,
        values: Vec<f64>,
        tag: String,
        flag: bool,
    }

    impl Checkpointable for Demo {
        const KIND: u32 = 0xDE40;
        const LABEL: &'static str = "demo";
        fn encode(&self, w: &mut ByteWriter) {
            w.put_u64(self.id);
            w.put_usize(self.values.len());
            for &v in &self.values {
                w.put_f64(v);
            }
            w.put_str(&self.tag);
            w.put_bool(self.flag);
        }
        fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
            let id = r.get_u64()?;
            let n = r.get_seq_len(8)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.get_f64()?);
            }
            Ok(Demo {
                id,
                values,
                tag: r.get_str()?,
                flag: r.get_bool()?,
            })
        }
    }

    fn demo() -> Demo {
        Demo {
            id: 42,
            values: vec![0.5, -1.25, f64::MIN_POSITIVE, -0.0],
            tag: "hello".into(),
            flag: true,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qns-ckpt-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frame_round_trips_bitwise() {
        let state = demo();
        let bytes = encode_snapshot(&state);
        let back: Demo = decode_snapshot(&bytes).expect("valid frame");
        assert_eq!(back, state);
        for (a, b) in back.values.iter().zip(&state.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode_snapshot(&demo());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_snapshot::<Demo>(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncations_are_typed_errors_not_panics() {
        let bytes = encode_snapshot(&demo());
        for len in 0..bytes.len() {
            let err = decode_snapshot::<Demo>(&bytes[..len]).unwrap_err();
            match err {
                CheckpointError::Truncated { .. } | CheckpointError::CrcMismatch { .. } => {}
                other => panic!("unexpected error at len {len}: {other}"),
            }
        }
    }

    #[test]
    fn kind_and_version_are_enforced() {
        struct Other;
        impl Checkpointable for Other {
            const KIND: u32 = 0x07;
            const LABEL: &'static str = "other";
            fn encode(&self, _: &mut ByteWriter) {}
            fn decode(_: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
                Ok(Other)
            }
        }
        let bytes = encode_snapshot(&demo());
        assert!(matches!(
            decode_snapshot::<Other>(&bytes),
            Err(CheckpointError::KindMismatch { .. })
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        // Version is checked before the CRC so old readers give the right
        // diagnosis; recompute the trailer to isolate the version path.
        let body_len = wrong_version.len() - TRAILER_LEN;
        let crc = crc32(&wrong_version[..body_len]).to_le_bytes();
        wrong_version[body_len..].copy_from_slice(&crc);
        assert!(matches!(
            decode_snapshot::<Demo>(&wrong_version),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn store_saves_loads_and_rotates() {
        let dir = tmp_dir("rotate");
        let store = CheckpointStore::open(&dir).expect("open").with_keep(2);
        for id in 1..=5u64 {
            let state = Demo { id, ..demo() };
            store.save(&state, None).expect("save");
        }
        assert_eq!(store.list("demo").len(), 2, "rotation keeps last 2");
        let (loaded, corrupt) = store.load_latest::<Demo>();
        assert_eq!(loaded.expect("latest").id, 5);
        assert_eq!(corrupt, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_falls_back_to_previous_snapshot() {
        let dir = tmp_dir("torn");
        let store = CheckpointStore::open(&dir).expect("open");
        store.save(&Demo { id: 1, ..demo() }, None).expect("save 1");
        let faults = FaultPlan::new().torn_write(1);
        store
            .save(&Demo { id: 2, ..demo() }, Some(&faults))
            .expect("torn save still creates a file");
        let (loaded, corrupt) = store.load_latest::<Demo>();
        assert_eq!(loaded.expect("fallback").id, 1, "must fall back to seq 1");
        assert_eq!(corrupt, 1, "the torn snapshot is counted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reader_rejects_absurd_sequence_lengths() {
        let mut w = ByteWriter::new();
        w.put_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_seq_len(8).is_err(), "length must be bounded by input");
    }
}
