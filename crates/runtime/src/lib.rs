//! `qns-runtime` — the parallel candidate-evaluation engine behind every
//! search-style workload in the QuantumNAS reproduction.
//!
//! The evolutionary co-search (paper Section III-C) evaluates hundreds of
//! (architecture, mapping) genes per run; each evaluation is a transpile
//! plus a simulation. This crate owns the substrate that makes that loop
//! tractable at scale, in three layers:
//!
//! 1. **[`EvalEngine`]** — fans a batch of candidates out over scoped
//!    worker threads with work stealing (shared atomic claim index),
//!    deterministic in-order result collection, and per-candidate panic
//!    isolation: one bad transpile poisons its own score instead of
//!    killing the search.
//! 2. **Content-addressed caching** — [`StructuralHasher`] produces
//!    deterministic 128-bit digests over structured content (sub-circuit
//!    config, layout, device fingerprint, opt level), keying a
//!    [`ShardedCache`] used for both the transpile cache and the
//!    gene-level score memo.
//! 3. **[`Metrics`] telemetry** — counters, log₂ duration histograms, a
//!    structured per-generation event log, and a text [`Metrics::summary`]
//!    report (evaluations, cache hit rates, transpile vs. simulate wall
//!    time, evals/sec).
//! 4. **Crash safety** — a versioned, crc-guarded snapshot format with
//!    atomic write-rename ([`CheckpointStore`], [`Checkpointable`]) and a
//!    deterministic fault-injection schedule ([`FaultPlan`]) so recovery
//!    paths are testable, not just claimed.
//!
//! The crate is dependency-free and domain-agnostic: it works on hashes
//! and closures. The `quantumnas` core crate layers gene hashing, the
//! score memo, and estimator integration on top.
//!
//! # Examples
//!
//! ```
//! use qns_runtime::{EvalEngine, Metrics, ShardedCache, StructuralHasher, Workers};
//!
//! let engine = EvalEngine::new(Workers::Auto);
//! let cache: ShardedCache<f64> = ShardedCache::new(16);
//! let metrics = Metrics::new();
//!
//! let candidates = vec![1u64, 2, 3, 2, 1];
//! let scores = engine.run(
//!     &candidates,
//!     |&c| {
//!         let mut h = StructuralHasher::new();
//!         h.write_u64(c);
//!         *cache.get_or_insert_with(h.finish(), || {
//!             metrics.incr("evaluations", 1);
//!             (c * c) as f64
//!         })
//!     },
//!     f64::INFINITY,
//! );
//! assert_eq!(scores, vec![1.0, 4.0, 9.0, 4.0, 1.0]);
//! assert_eq!(metrics.counter("evaluations"), 3); // duplicates memoized
//! ```

mod cache;
mod checkpoint;
mod engine;
mod fault;
mod telemetry;

pub use cache::{CacheKey, CacheStats, ShardedCache, StructuralHasher};
pub use checkpoint::{
    crc32, decode_snapshot, encode_snapshot, ByteReader, ByteWriter, CheckpointError,
    CheckpointStore, Checkpointable, EXTENSION, FORMAT_VERSION, MAGIC,
};
pub use engine::{EvalEngine, Workers};
pub use fault::{FaultPlan, FAULT_MARKER};
pub use telemetry::{counters, timers, GenerationEvent, Histogram, Metrics};
