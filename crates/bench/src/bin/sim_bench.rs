//! `sim_bench` — timings for the fast simulation path, recorded as
//! `BENCH_sim.json`.
//!
//! ```text
//! cargo run -p qns-bench --release --bin sim_bench [-- --smoke] [-- --out PATH]
//! ```
//!
//! Five sections, each fast-vs-reference:
//!
//! 1. `kernels` — per-gate sweep (Dynamic mode) with the structure-
//!    specialized kernels vs. the naive reference kernels.
//! 2. `fusion` — block counts and Static-mode execution time at fusion
//!    levels 0–3.
//! 3. `replay` — batched parameter-shift via plan replay vs. a fresh
//!    compile + full run per shifted parameter set.
//! 4. `trajectories` — noise-trajectory batch on the work-stealing
//!    engine (4 workers) vs. sequential.
//! 5. `end_to_end` — `Estimator` QML candidate score at 8 qubits,
//!    `SimBackend::Fast` vs. `SimBackend::Reference`. The acceptance
//!    target is ≥2× here.
//!
//! `--smoke` shrinks every section to a single cheap iteration so CI can
//! run the binary as a build-and-run check without thresholds.

use qns_circuit::{Circuit, GateKind, Param};
use qns_noise::{Device, TrajectoryConfig, TrajectoryExecutor};
use qns_runtime::Workers;
use qns_sim::{
    run_into_with, shifted_expectations, DiagObservable, ExecMode, FusedProgram, Observable,
    SimBackend, SimPlan, StateVec,
};
use qns_transpile::Layout;
use quantumnas::{DesignSpace, Estimator, EstimatorKind, SpaceKind, SuperCircuit, Task};
use std::fmt::Write as _;
use std::time::Instant;

/// A deep hardware-efficient benchmark circuit: `layers` of RZ·RX on every
/// qubit plus a CX + CRY entangling ring.
fn deep_circuit(n: usize, layers: usize) -> (Circuit, Vec<f64>) {
    let mut c = Circuit::new(n);
    let mut t = 0;
    for _ in 0..layers {
        for q in 0..n {
            c.push(GateKind::RZ, &[q], &[Param::Train(t)]);
            c.push(GateKind::RX, &[q], &[Param::Train(t + 1)]);
            t += 2;
        }
        for q in 0..n {
            c.push(GateKind::CX, &[q, (q + 1) % n], &[]);
            c.push(GateKind::CRY, &[q, (q + 1) % n], &[Param::Train(t)]);
            t += 1;
        }
    }
    let params = (0..t).map(|i| 0.7 + 0.05 * i as f64).collect();
    (c, params)
}

/// Median wall-clock seconds of `reps` calls to `f`.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Json {
    buf: String,
}

impl Json {
    fn obj(&mut self, key: &str, body: impl FnOnce(&mut Json)) {
        let _ = write!(self.buf, "\"{key}\": {{");
        body(self);
        if self.buf.ends_with(", ") {
            self.buf.truncate(self.buf.len() - 2);
        }
        let _ = write!(self.buf, "}}, ");
    }

    fn num(&mut self, key: &str, v: f64) {
        let _ = write!(self.buf, "\"{key}\": {v:.9}, ");
    }

    fn int(&mut self, key: &str, v: usize) {
        let _ = write!(self.buf, "\"{key}\": {v}, ");
    }

    fn str(&mut self, key: &str, v: &str) {
        let _ = write!(self.buf, "\"{key}\": \"{v}\", ");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let reps = if smoke { 1 } else { 9 };

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = Json { buf: String::new() };
    json.buf.push('{');
    json.str("bench", "sim");
    json.str("mode", if smoke { "smoke" } else { "full" });
    json.int("cores", cores);

    // 1. Kernel sweep: same gate sequence, Dynamic mode (no fusion), so the
    // ratio isolates the structure-specialized kernels.
    let (n, layers) = if smoke { (6, 2) } else { (12, 8) };
    let (circuit, params) = deep_circuit(n, layers);
    let mut state = StateVec::zero_state(n);
    let fast = time_median(reps, || {
        run_into_with(
            &circuit,
            &params,
            &[],
            ExecMode::Dynamic,
            SimBackend::Fast,
            &mut state,
        );
    });
    let reference = time_median(reps, || {
        run_into_with(
            &circuit,
            &params,
            &[],
            ExecMode::Dynamic,
            SimBackend::Reference,
            &mut state,
        );
    });
    println!(
        "kernels (n={n}, {} gates, Dynamic): fast {:.3}ms reference {:.3}ms ({:.2}x)",
        circuit.num_ops(),
        fast * 1e3,
        reference * 1e3,
        reference / fast.max(1e-12),
    );
    json.obj("kernels", |j| {
        j.int("qubits", n);
        j.int("gates", circuit.num_ops());
        j.num("fast_s", fast);
        j.num("reference_s", reference);
        j.num("speedup", reference / fast.max(1e-12));
    });

    // 2. Fusion levels: block counts and Static execution time.
    json.obj("fusion", |j| {
        j.int("qubits", n);
        j.int("gates", circuit.num_ops());
        for level in 0..=3u8 {
            let plan = SimPlan::compile(&circuit, level);
            let blocks = plan.num_steps();
            let base = plan.materialize(&circuit, &params, &[]);
            let secs = time_median(reps, || {
                plan.execute_into(&circuit, &params, &[], &mut state);
            });
            println!(
                "fusion level {level}: {blocks} blocks, exec {:.3}ms",
                secs * 1e3
            );
            j.obj(&format!("level{level}"), |j| {
                j.int("blocks", blocks);
                j.num("exec_s", secs);
            });
            let _ = base;
        }
    });

    // 3. Plan replay vs. recompile for batched parameter shift.
    let shifts: Vec<(usize, f64)> = (0..params.len().min(if smoke { 4 } else { 32 }))
        .map(|i| (i, std::f64::consts::FRAC_PI_2))
        .collect();
    let obs = DiagObservable::new(vec![1.0; n]);
    let replay = time_median(reps, || {
        let _ = shifted_expectations(&circuit, &params, &[], &obs, &shifts);
    });
    let recompile = time_median(reps, || {
        let mut work = params.clone();
        for &(i, d) in &shifts {
            work[i] += d;
            let prog = FusedProgram::compile(&circuit, &work, &[]);
            let mut s = StateVec::zero_state(n);
            prog.apply(&mut s);
            let _ = obs.expect(&s);
            work[i] = params[i];
        }
    });
    println!(
        "replay ({} shifts): replay {:.3}ms recompile {:.3}ms ({:.2}x)",
        shifts.len(),
        replay * 1e3,
        recompile * 1e3,
        recompile / replay.max(1e-12),
    );
    json.obj("replay", |j| {
        j.int("shifts", shifts.len());
        j.num("replay_s", replay);
        j.num("recompile_s", recompile);
        j.num("speedup", recompile / replay.max(1e-12));
    });

    // 4. Trajectory batch: engine fan-out vs. sequential (bit-identical
    // results, so only wall time differs).
    let (tn, tlayers) = if smoke { (4, 1) } else { (8, 3) };
    let (tcirc, tparams) = deep_circuit(tn, tlayers);
    let cfg = TrajectoryConfig {
        trajectories: if smoke { 8 } else { 64 },
        seed: 11,
        readout: true,
    };
    let phys: Vec<usize> = (0..tn).collect();
    let device = Device::melbourne();
    let seq_exec = TrajectoryExecutor::new(device.clone(), cfg);
    let par_exec = TrajectoryExecutor::new(device.clone(), cfg).with_workers(Workers::Fixed(4));
    let seq = time_median(reps, || {
        let _ = seq_exec.expect_z(&tcirc, &tparams, &[], &phys);
    });
    let par = time_median(reps, || {
        let _ = par_exec.expect_z(&tcirc, &tparams, &[], &phys);
    });
    println!(
        "trajectories ({} traj, n={tn}): sequential {:.3}ms 4 workers {:.3}ms ({:.2}x)",
        cfg.trajectories,
        seq * 1e3,
        par * 1e3,
        seq / par.max(1e-12),
    );
    json.obj("trajectories", |j| {
        j.int("qubits", tn);
        j.int("trajectories", cfg.trajectories);
        j.num("sequential_s", seq);
        j.num("workers4_s", par);
        j.num("speedup", seq / par.max(1e-12));
    });

    // 5. End-to-end candidate evaluation at 10 qubits (the 6×6-pooled
    // digit task): the acceptance criterion (≥2× over the reference
    // backend at 8+ qubits).
    let en = 10;
    let task = Task::qml_digits(&[0, 3, 6, 9], if smoke { 8 } else { 30 }, 6, 7);
    let sc = SuperCircuit::new(
        DesignSpace::new(SpaceKind::U3Cu3),
        en,
        if smoke { 1 } else { 3 },
    );
    let encoder = match &task {
        Task::Qml { encoder, .. } => encoder.clone(),
        _ => unreachable!(),
    };
    let ecirc = sc.build(&sc.max_config(), Some(&encoder));
    let eparams: Vec<f64> = (0..ecirc.num_train_params())
        .map(|i| 0.1 * (i as f64 % 7.0) - 0.3)
        .collect();
    let layout = Layout::trivial(en);
    let fast_est = Estimator::new(device.clone(), EstimatorKind::Noiseless, 1);
    let ref_est =
        Estimator::new(device, EstimatorKind::Noiseless, 1).with_backend(SimBackend::Reference);
    let (mut fast_score, mut ref_score) = (0.0, 0.0);
    let e_fast = time_median(reps, || {
        fast_score = fast_est.score(&ecirc, &eparams, &task, &layout);
    });
    let e_ref = time_median(reps, || {
        ref_score = ref_est.score(&ecirc, &eparams, &task, &layout);
    });
    let speedup = e_ref / e_fast.max(1e-12);
    println!(
        "end_to_end (n={en}, {} gates): fast {:.3}ms reference {:.3}ms ({speedup:.2}x) \
         score fast {fast_score:.6} reference {ref_score:.6}",
        ecirc.num_ops(),
        e_fast * 1e3,
        e_ref * 1e3,
    );
    assert!(
        (fast_score - ref_score).abs() < 1e-9,
        "fast and reference backends disagree on the candidate score"
    );
    json.obj("end_to_end", |j| {
        j.int("qubits", en);
        j.int("gates", ecirc.num_ops());
        j.num("fast_s", e_fast);
        j.num("reference_s", e_ref);
        j.num("speedup", speedup);
        j.num("score", fast_score);
    });

    if json.buf.ends_with(", ") {
        let len = json.buf.len() - 2;
        json.buf.truncate(len);
    }
    json.buf.push('}');
    json.buf.push('\n');
    std::fs::write(&out_path, &json.buf).expect("write BENCH_sim.json");
    println!("\nwrote {out_path}");
    if !smoke {
        assert!(
            speedup >= 2.0,
            "acceptance: end-to-end speedup {speedup:.2}x is below the 2x target"
        );
    }
}
