//! `pareto_bench` — timings for the NSGA-II Pareto co-search machinery,
//! recorded as `BENCH_pareto.json`.
//!
//! ```text
//! cargo run -p qns-bench --release --bin pareto_bench \
//!     [-- --smoke] [-- --out PATH] [-- --check PATH]
//! ```
//!
//! Two sections:
//!
//! 1. `sort` — selection throughput: fast non-dominated sorting plus
//!    crowding-distance selection over a deterministic synthetic cloud of
//!    3-objective points, the exact machinery the search runs once per
//!    generation. Reports points selected per second and the per-point
//!    cost (the `--check` regression metric), plus the hypervolume of the
//!    cloud's first front as a correctness canary.
//! 2. `search` — end-to-end: the same evolutionary search run through the
//!    scalar engine and through the Pareto engine over (loss, depth,
//!    twoq). Reports wall-clock for both, the multi-objective overhead
//!    ratio, the final front size, and its normalized hypervolume.
//!
//! `--smoke` shrinks both sections to a single cheap iteration so CI can
//! run the binary as a build-and-run check without thresholds.
//! `--check PATH` compares the fresh `sort.per_point_s` against a
//! previously committed JSON and exits non-zero on a >20% regression.

use qns_noise::Device;
use qns_runtime::CacheKey;
use quantumnas::{
    crowding_distance, evolutionary_search_pareto_rt, evolutionary_search_seeded_rt, hypervolume,
    non_dominated_sort, normalize_objectives, selection_order, DesignSpace, Estimator,
    EstimatorKind, EvoConfig, Objective, SearchRuntime, SpaceKind, SuperCircuit, Task,
};
use std::fmt::Write as _;
use std::time::Instant;

/// A deterministic synthetic objective cloud: splitmix64 coordinates in
/// [0, 1)^dims, so every run (and every machine) sorts the same points.
fn objective_cloud(n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..dims).map(|_| next()).collect())
        .collect()
}

/// Median wall-clock seconds of `reps` calls to `f`.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Json {
    buf: String,
}

impl Json {
    fn obj(&mut self, key: &str, body: impl FnOnce(&mut Json)) {
        let _ = write!(self.buf, "\"{key}\": {{");
        body(self);
        if self.buf.ends_with(", ") {
            self.buf.truncate(self.buf.len() - 2);
        }
        let _ = write!(self.buf, "}}, ");
    }

    fn num(&mut self, key: &str, v: f64) {
        let _ = write!(self.buf, "\"{key}\": {v:.9}, ");
    }

    fn int(&mut self, key: &str, v: usize) {
        let _ = write!(self.buf, "\"{key}\": {v}, ");
    }

    fn str(&mut self, key: &str, v: &str) {
        let _ = write!(self.buf, "\"{key}\": \"{v}\", ");
    }
}

/// Pulls `"key": <float>` out of the `"sort"` object of a flat JSON
/// string written by this bin.
fn sort_num(text: &str, key: &str) -> Option<f64> {
    let scope = &text[text.find("\"sort\"")?..];
    let needle = format!("\"{key}\": ");
    let start = scope.find(&needle)? + needle.len();
    let rest = &scope[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_pareto.json".to_string());
    let check_path = flag("--check");
    let reps = if smoke { 1 } else { 9 };

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = Json { buf: String::new() };
    json.buf.push('{');
    json.str("bench", "pareto");
    json.str("mode", if smoke { "smoke" } else { "full" });
    json.int("cores", cores);

    // 1. Selection throughput on a synthetic cloud: the per-generation
    // NSGA-II machinery (sort + crowding + total selection order).
    let n_points = if smoke { 64 } else { 512 };
    let cloud = objective_cloud(n_points, 3);
    let keys: Vec<CacheKey> = (0..n_points as u64)
        .map(|i| CacheKey {
            lo: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            hi: i,
        })
        .collect();
    let mut front_size = 0usize;
    let sort_s = time_median(reps, || {
        let fronts = non_dominated_sort(&cloud);
        let order = selection_order(&cloud, &keys);
        let crowd = crowding_distance(&cloud, &fronts[0]);
        assert_eq!(order.len(), cloud.len());
        assert_eq!(crowd.len(), fronts[0].len());
        front_size = fronts[0].len();
    });
    let normalized = normalize_objectives(&cloud);
    let first_front: Vec<Vec<f64>> = non_dominated_sort(&cloud)[0]
        .iter()
        .map(|&i| normalized[i].clone())
        .collect();
    let hv = hypervolume(&first_front);
    let per_point = sort_s / n_points as f64;
    println!(
        "sort ({n_points} points, 3 objectives): {:.3}ms ({:.0} points/s, front {front_size}, hv {hv:.4})",
        sort_s * 1e3,
        1.0 / per_point.max(1e-12),
    );
    json.obj("sort", |j| {
        j.int("points", n_points);
        j.int("front_size", front_size);
        j.num("sort_s", sort_s);
        j.num("per_point_s", per_point);
        j.num("points_per_s", 1.0 / per_point.max(1e-12));
        j.num("front_hypervolume", hv);
    });

    // 2. End-to-end: the same search budget through the scalar engine and
    // through the Pareto engine over the full objective set.
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let task = Task::qml_digits(&[1, 8], 15, 4, 4);
    let params: Vec<f64> = (0..sc.num_params())
        .map(|i| 0.2 * ((i % 5) as f64) - 0.4)
        .collect();
    let est = Estimator::new(Device::yorktown(), EstimatorKind::SuccessRate, 1).with_valid_cap(4);
    let cfg = EvoConfig {
        iterations: if smoke { 2 } else { 6 },
        population: 16,
        parents: 3,
        mutations: 8,
        crossovers: 5,
        ..EvoConfig::fast(5)
    };
    let objectives = [Objective::Loss, Objective::Depth, Objective::TwoQ];
    let mut scalar_result = None;
    let scalar_s = time_median(reps, || {
        let rt = SearchRuntime::new(cfg.runtime.clone());
        scalar_result = Some(evolutionary_search_seeded_rt(
            &sc,
            &params,
            &task,
            &est,
            &cfg,
            &[],
            &rt,
        ));
    });
    let mut pareto_result = None;
    let pareto_s = time_median(reps, || {
        let rt = SearchRuntime::new(cfg.runtime.clone());
        pareto_result = Some(evolutionary_search_pareto_rt(
            &sc,
            &params,
            &task,
            &est,
            &cfg,
            &objectives,
            &[],
            &rt,
        ));
    });
    let scalar_result = scalar_result.expect("scalar search ran");
    let pareto_result = pareto_result.expect("pareto search ran");
    let front: Vec<Vec<f64>> = pareto_result
        .front
        .iter()
        .map(|p| p.objectives.clone())
        .collect();
    let front_hv = hypervolume(&normalize_objectives(&front));
    let overhead = pareto_s / scalar_s.max(1e-12);
    println!(
        "search (pop {}, {} gens): scalar {:.3}ms (score {:.4}) \
         pareto {:.3}ms (front {}, hv {front_hv:.4}) ({overhead:.2}x)",
        cfg.population,
        cfg.iterations,
        scalar_s * 1e3,
        scalar_result.best_score,
        pareto_s * 1e3,
        pareto_result.front.len(),
    );
    json.obj("search", |j| {
        j.int("population", cfg.population);
        j.int("iterations", cfg.iterations);
        j.num("scalar_s", scalar_s);
        j.num("scalar_score", scalar_result.best_score);
        j.num("pareto_s", pareto_s);
        j.num("pareto_best_loss", pareto_result.best_score);
        j.int("front_size", pareto_result.front.len());
        j.num("front_hypervolume", front_hv);
        j.num("overhead", overhead);
    });

    if json.buf.ends_with(", ") {
        let len = json.buf.len() - 2;
        json.buf.truncate(len);
    }
    json.buf.push('}');
    json.buf.push('\n');
    std::fs::write(&out_path, &json.buf).expect("write BENCH_pareto.json");
    println!("\nwrote {out_path}");

    if let Some(path) = check_path {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read committed baseline {path}: {e}"));
        let committed_s =
            sort_num(&committed, "per_point_s").expect("committed baseline has sort.per_point_s");
        let ratio = per_point / committed_s.max(1e-12);
        println!(
            "check vs {path}: committed sort {:.3}us/point, fresh {:.3}us/point ({ratio:.2}x)",
            committed_s * 1e6,
            per_point * 1e6,
        );
        if ratio > 1.2 {
            eprintln!(
                "regression: pareto selection is {ratio:.2}x the committed baseline (>1.20x)"
            );
            std::process::exit(1);
        }
    }

    // The front must never be empty and its normalized hypervolume must
    // stay a valid fraction of the unit cube.
    assert!(!pareto_result.front.is_empty(), "empty final front");
    assert!(
        (0.0..=1.0).contains(&front_hv),
        "normalized hypervolume out of range: {front_hv}"
    );
}
