//! `repro` — regenerates every table and figure of the QuantumNAS paper.
//!
//! ```text
//! cargo run -p qns-bench --release --bin repro -- <experiment> [--full]
//! cargo run -p qns-bench --release --bin repro -- all [--full]
//! ```
//!
//! Experiments: fig2 fig3 tab1 tab2 tab3 tab4 fig9 fig10 fig12 fig13 fig14
//! tab5 fig15 fig16 fig17 tab6 fig18 fig19 fig20 fig21 fig22 fig23 tab7.
//! Default settings run each experiment in seconds-to-minutes; `--full`
//! approaches paper scale.

use qns_bench::experiments::{ablations, misc, qml, vqe};
use qns_bench::Scale;

const EXPERIMENTS: &[&str] = &[
    "tab1", "tab2", "fig2", "fig3", "fig9", "fig10", "fig12", "fig13", "fig14", "tab3", "tab4",
    "tab5", "fig15", "fig16", "fig17", "tab6", "fig18", "fig19", "fig20", "fig21", "fig22",
    "fig23", "tab7",
];

fn dispatch(id: &str, scale: &Scale) {
    let start = std::time::Instant::now();
    match id {
        "tab1" => misc::tab1(scale),
        "tab2" => misc::tab2(scale),
        "fig9" => misc::fig9(scale),
        "fig10" => misc::fig10(scale),
        "fig12" => misc::fig12(scale),
        "fig15" => misc::fig15(scale),
        "fig2" => qml::fig2(scale),
        "fig3" => qml::fig3(scale),
        "tab3" => qml::tab3(scale),
        "tab4" => qml::tab4(scale),
        "fig13" => qml::fig13(scale),
        "fig14" => qml::fig14(scale),
        "tab5" => qml::tab5(scale),
        "tab7" => qml::tab7(scale),
        "fig16" => vqe::fig16(scale),
        "fig17" => vqe::fig17(scale),
        "tab6" => ablations::tab6(scale),
        "fig18" => ablations::fig18(scale),
        "fig19" => ablations::fig19(scale),
        "fig20" => ablations::fig20(scale),
        // The random-vs-evolution figures share one run.
        "fig21" | "fig22" => ablations::fig21_22(scale),
        "fig23" => ablations::fig23(scale),
        other => {
            eprintln!("unknown experiment '{other}'. Available: {EXPERIMENTS:?} or 'all'");
            std::process::exit(2);
        }
    }
    println!("[{id} finished in {:.1}s]", start.elapsed().as_secs_f64());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if targets.is_empty() {
        eprintln!("usage: repro <experiment|all> [--full]");
        eprintln!("experiments: {EXPERIMENTS:?}");
        std::process::exit(2);
    }
    if targets.contains(&"all") {
        // fig21/fig22 share a run; dispatch once.
        let mut ids: Vec<&str> = EXPERIMENTS.to_vec();
        ids.retain(|i| *i != "fig22");
        for id in ids {
            dispatch(id, &scale);
        }
    } else {
        for id in targets {
            dispatch(id, &scale);
        }
    }
}
