//! `runtime_bench` — measures the candidate-evaluation runtime: cold vs.
//! warm transpile/score caches, and evaluation throughput across worker
//! counts.
//!
//! ```text
//! cargo run -p qns-bench --release --bin runtime_bench [-- --iters N]
//! ```
//!
//! Prints per-configuration wall time, evals/sec, cache hit rates, and
//! the telemetry summary of the final run. On multi-core hosts the
//! worker sweep demonstrates the engine speedup; on single-core
//! containers the cache rows still show the warm-path win.

use qns_noise::{Device, TrajectoryConfig};
use quantumnas::{
    evolutionary_search_seeded_rt, DesignSpace, Estimator, EstimatorKind, EvoConfig,
    RuntimeOptions, SearchRuntime, SpaceKind, SuperCircuit, Task,
};
use std::time::Instant;

struct Row {
    label: String,
    secs: f64,
    evaluations: usize,
    memo_hits: usize,
    best_score: f64,
}

fn search_once(label: &str, cfg: &EvoConfig, rt: &SearchRuntime) -> (Row, String) {
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let task = Task::qml_digits(&[3, 6], 40, 4, 1);
    let shared: Vec<f64> = (0..sc.num_params())
        .map(|i| 0.3 * ((i % 7) as f64) - 0.8)
        .collect();
    let est = Estimator::new(
        Device::yorktown(),
        EstimatorKind::NoisySim(TrajectoryConfig {
            trajectories: 4,
            seed: 5,
            readout: true,
        }),
        2,
    )
    .with_valid_cap(6);

    let start = Instant::now();
    let result = evolutionary_search_seeded_rt(&sc, &shared, &task, &est, cfg, &[], rt);
    let secs = start.elapsed().as_secs_f64();
    (
        Row {
            label: label.to_string(),
            secs,
            evaluations: result.evaluations,
            memo_hits: result.memo_hits,
            best_score: result.best_score,
        },
        rt.metrics().summary(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: usize = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let base = EvoConfig {
        iterations: iters,
        population: 10,
        parents: 3,
        mutations: 4,
        crossovers: 3,
        ..EvoConfig::fast(13)
    };
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("runtime_bench: {iters} iterations, population 10, {cores} cores\n");

    let mut rows: Vec<Row> = Vec::new();

    // Cold vs. warm cache: the same search twice on one shared runtime.
    // The second run answers every candidate it has seen before from the
    // score memo and every compile from the transpile cache.
    let cached = EvoConfig {
        runtime: RuntimeOptions {
            workers: 1,
            cache: true,
            ..Default::default()
        },
        ..base
    };
    let rt = SearchRuntime::new(cached.runtime.clone());
    let (row, _) = search_once("workers=1 cache cold", &cached, &rt);
    rows.push(row);
    let (row, warm_summary) = search_once("workers=1 cache warm", &cached, &rt);
    rows.push(row);
    let mut last_summary = warm_summary;

    // No-cache reference.
    let uncached = EvoConfig {
        runtime: RuntimeOptions {
            workers: 1,
            cache: false,
            ..Default::default()
        },
        ..base
    };
    let rt = SearchRuntime::new(uncached.runtime.clone());
    let (row, _) = search_once("workers=1 no cache", &uncached, &rt);
    rows.push(row);

    // Worker sweep (cold caches each, so rows are comparable).
    for workers in [2usize, 4] {
        let cfg = EvoConfig {
            runtime: RuntimeOptions {
                workers,
                cache: true,
                ..Default::default()
            },
            ..base
        };
        let rt = SearchRuntime::new(cfg.runtime.clone());
        let (row, summary) = search_once(&format!("workers={workers} cache cold"), &cfg, &rt);
        rows.push(row);
        if workers == 4 {
            last_summary = summary;
        }
    }

    println!(
        "{:<24} {:>9} {:>7} {:>7} {:>11} {:>12}",
        "configuration", "wall s", "evals", "memo", "evals/sec", "best score"
    );
    let reference = rows[0].secs;
    for r in &rows {
        println!(
            "{:<24} {:>9.3} {:>7} {:>7} {:>11.1} {:>12.5}   ({:.2}x vs cold)",
            r.label,
            r.secs,
            r.evaluations,
            r.memo_hits,
            r.evaluations as f64 / r.secs.max(1e-9),
            r.best_score,
            reference / r.secs.max(1e-9),
        );
    }
    let scores: Vec<u64> = rows.iter().map(|r| r.best_score.to_bits()).collect();
    assert!(
        scores.iter().all(|&s| s == scores[0]),
        "all configurations must find the bit-identical best score"
    );
    println!("\nall configurations agree on the best score (bit-identical)\n");
    println!("{last_summary}");
}
