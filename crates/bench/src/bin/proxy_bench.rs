//! `proxy_bench` — timings for the proxy-prescreening stage, recorded as
//! `BENCH_proxy.json`.
//!
//! ```text
//! cargo run -p qns-bench --release --bin proxy_bench \
//!     [-- --smoke] [-- --out PATH] [-- --check PATH]
//! ```
//!
//! Two sections:
//!
//! 1. `rank` — proxy throughput: compute the five training-free proxy
//!    features plus a fusion-model prediction for a deterministic spread
//!    of candidates, against the full estimator score for the same
//!    candidates. Reports candidates ranked per second and the
//!    proxy-vs-full cost ratio.
//! 2. `search` — end-to-end: the same 4x-population evolutionary search
//!    run with full scoring and with prescreening (`keep` 0.2, one warmup
//!    generation). Reports wall-clock for both, the speedup, the two
//!    final scores, and the full-estimator evaluation counts.
//!
//! `--smoke` shrinks both sections to a single cheap iteration so CI can
//! run the binary as a build-and-run check without thresholds.
//! `--check PATH` compares the fresh `rank.per_candidate_s` against a
//! previously committed JSON and exits non-zero on a >20% regression.

use qns_noise::{Device, TrajectoryConfig};
use quantumnas::{
    candidate_seed, compute_features, evolutionary_search_seeded_rt, gene_key, DesignSpace,
    Estimator, EstimatorKind, EvoConfig, FusionModel, Gene, ProxyContext, ProxyOptions,
    SearchRuntime, SpaceKind, SubConfig, SuperCircuit, Task,
};
use std::fmt::Write as _;
use std::time::Instant;

/// A deterministic spread of candidates over the 4-qubit U3+CU3 space:
/// every (depth, width-pattern, layout-rotation) combination.
fn candidate_genes(n_phys: usize, widths: usize) -> Vec<Gene> {
    let mut genes = Vec::new();
    for nb in 1..=2usize {
        for a in 1..=widths {
            for b in 1..=widths {
                let r = (nb * 7 + a * 3 + b) % n_phys;
                let layout: Vec<usize> = (0..4).map(|q| (q + r) % n_phys).collect();
                genes.push(Gene {
                    config: SubConfig {
                        n_blocks: nb,
                        widths: vec![vec![a, b], vec![b, a]],
                    },
                    layout,
                });
            }
        }
    }
    genes
}

/// Median wall-clock seconds of `reps` calls to `f`.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Json {
    buf: String,
}

impl Json {
    fn obj(&mut self, key: &str, body: impl FnOnce(&mut Json)) {
        let _ = write!(self.buf, "\"{key}\": {{");
        body(self);
        if self.buf.ends_with(", ") {
            self.buf.truncate(self.buf.len() - 2);
        }
        let _ = write!(self.buf, "}}, ");
    }

    fn num(&mut self, key: &str, v: f64) {
        let _ = write!(self.buf, "\"{key}\": {v:.9}, ");
    }

    fn int(&mut self, key: &str, v: usize) {
        let _ = write!(self.buf, "\"{key}\": {v}, ");
    }

    fn str(&mut self, key: &str, v: &str) {
        let _ = write!(self.buf, "\"{key}\": \"{v}\", ");
    }
}

/// Pulls `"key": <float>` out of the `"rank"` object of a flat JSON
/// string written by this bin.
fn rank_num(text: &str, key: &str) -> Option<f64> {
    let scope = &text[text.find("\"rank\"")?..];
    let needle = format!("\"{key}\": ");
    let start = scope.find(&needle)? + needle.len();
    let rest = &scope[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_proxy.json".to_string());
    let check_path = flag("--check");
    let reps = if smoke { 1 } else { 9 };

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = Json { buf: String::new() };
    json.buf.push('{');
    json.str("bench", "proxy");
    json.str("mode", if smoke { "smoke" } else { "full" });
    json.int("cores", cores);

    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let task = Task::qml_digits(&[1, 8], 15, 4, 4);
    let params: Vec<f64> = (0..sc.num_params())
        .map(|i| 0.2 * ((i % 5) as f64) - 0.4)
        .collect();
    // The prescreener's target is the expensive estimator — trajectory
    // simulation under the device noise model (the paper's accurate first
    // method), not the near-free analytic success-rate shortcut.
    let est = Estimator::new(
        Device::yorktown(),
        EstimatorKind::NoisySim(TrajectoryConfig {
            trajectories: if smoke { 4 } else { 16 },
            ..Default::default()
        }),
        1,
    )
    .with_valid_cap(4);
    let encoder = match &task {
        Task::Qml { encoder, .. } => encoder.clone(),
        _ => unreachable!(),
    };

    // 1. Rank throughput: proxy features + fusion predict vs full score.
    let genes = candidate_genes(est.device().num_qubits(), if smoke { 2 } else { 4 });
    let mut fusion = FusionModel::new();
    let proxy_s = time_median(reps, || {
        let predictions: Vec<f64> = genes
            .iter()
            .map(|g| {
                let circuit = sc.build(&g.config, Some(&encoder));
                let key = gene_key(g);
                let feats = compute_features(&ProxyContext {
                    circuit: &circuit,
                    device: est.device(),
                    layout: &g.layout,
                    seed: candidate_seed(7, key.lo, key.hi),
                });
                fusion.observe(&feats, 0.5);
                fusion.predict(&feats)
            })
            .collect();
        assert_eq!(predictions.len(), genes.len());
    });
    let full_s = time_median(reps, || {
        let scores: Vec<f64> = genes
            .iter()
            .map(|g| {
                let circuit = sc.build(&g.config, Some(&encoder));
                est.score(&circuit, &params, &task, &g.layout())
            })
            .collect();
        assert_eq!(scores.len(), genes.len());
    });
    let per_candidate = proxy_s / genes.len() as f64;
    let ranked_per_s = 1.0 / per_candidate.max(1e-12);
    println!(
        "rank ({} candidates): proxy {:.3}ms full {:.3}ms ({:.0} ranked/s, {:.1}x cheaper)",
        genes.len(),
        proxy_s * 1e3,
        full_s * 1e3,
        ranked_per_s,
        full_s / proxy_s.max(1e-12),
    );
    json.obj("rank", |j| {
        j.int("candidates", genes.len());
        j.num("proxy_s", proxy_s);
        j.num("full_s", full_s);
        j.num("per_candidate_s", per_candidate);
        j.num("ranked_per_s", ranked_per_s);
        j.num("cost_ratio", full_s / proxy_s.max(1e-12));
    });

    // 2. End-to-end: the same 4x population searched with full scoring vs
    // with prescreening.
    let full_cfg = EvoConfig {
        iterations: if smoke { 2 } else { 5 },
        population: 32,
        parents: 3,
        mutations: 17,
        crossovers: 12,
        ..EvoConfig::fast(5)
    };
    let proxied_cfg = EvoConfig {
        proxy: ProxyOptions {
            enabled: true,
            keep: 0.2,
            warmup: 1,
        },
        ..full_cfg.clone()
    };
    let mut full_result = None;
    let full_search_s = time_median(reps, || {
        let rt = SearchRuntime::new(full_cfg.runtime.clone());
        full_result = Some(evolutionary_search_seeded_rt(
            &sc,
            &params,
            &task,
            &est,
            &full_cfg,
            &[],
            &rt,
        ));
    });
    let mut proxied_result = None;
    let proxied_search_s = time_median(reps, || {
        let rt = SearchRuntime::new(proxied_cfg.runtime.clone());
        proxied_result = Some(evolutionary_search_seeded_rt(
            &sc,
            &params,
            &task,
            &est,
            &proxied_cfg,
            &[],
            &rt,
        ));
    });
    let full_result = full_result.expect("full search ran");
    let proxied_result = proxied_result.expect("proxied search ran");
    let speedup = full_search_s / proxied_search_s.max(1e-12);
    println!(
        "search (pop 32, {} gens): full {:.3}ms (score {:.4}, {} evals) \
         proxied {:.3}ms (score {:.4}, {} evals) ({speedup:.2}x)",
        full_cfg.iterations,
        full_search_s * 1e3,
        full_result.best_score,
        full_result.candidates(),
        proxied_search_s * 1e3,
        proxied_result.best_score,
        proxied_result.candidates(),
    );
    json.obj("search", |j| {
        j.int("population", full_cfg.population);
        j.int("iterations", full_cfg.iterations);
        j.num("full_s", full_search_s);
        j.num("full_score", full_result.best_score);
        j.int("full_evals", full_result.candidates());
        j.num("proxied_s", proxied_search_s);
        j.num("proxied_score", proxied_result.best_score);
        j.int("proxied_evals", proxied_result.candidates());
        j.int("proxy_evals", proxied_result.proxy_evals as usize);
        j.int("dedup_hits", proxied_result.proxy_dedup_hits as usize);
        j.num("speedup", speedup);
    });

    if json.buf.ends_with(", ") {
        let len = json.buf.len() - 2;
        json.buf.truncate(len);
    }
    json.buf.push('}');
    json.buf.push('\n');
    std::fs::write(&out_path, &json.buf).expect("write BENCH_proxy.json");
    println!("\nwrote {out_path}");

    if let Some(path) = check_path {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read committed baseline {path}: {e}"));
        let committed_s = rank_num(&committed, "per_candidate_s")
            .expect("committed baseline has rank.per_candidate_s");
        let ratio = per_candidate / committed_s.max(1e-12);
        println!(
            "check vs {path}: committed rank {:.3}us/cand, fresh {:.3}us/cand ({ratio:.2}x)",
            committed_s * 1e6,
            per_candidate * 1e6,
        );
        if ratio > 1.2 {
            eprintln!("regression: proxy ranking is {ratio:.2}x the committed baseline (>1.20x)");
            std::process::exit(1);
        }
    }

    // The prescreener only pays off if ranking is much cheaper than full
    // scoring; anything below 5x means a proxy regressed into doing
    // estimator-scale work.
    if !smoke {
        let cost_ratio = full_s / proxy_s.max(1e-12);
        assert!(
            cost_ratio >= 5.0,
            "acceptance: proxy ranking is only {cost_ratio:.1}x cheaper than full scoring \
             (5x floor)"
        );
    }
}
