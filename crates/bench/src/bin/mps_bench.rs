//! `mps_bench` — matrix-product-state backend timings, recorded as
//! `BENCH_mps.json`.
//!
//! ```text
//! cargo run -p qns-bench --release --bin mps_bench \
//!     [-- --smoke] [-- --out PATH] [-- --check PATH]
//! ```
//!
//! Two sections:
//!
//! 1. `throughput_n{10,16,24}` — full-state evolution + all-qubit `<Z>`
//!    readout of a brickwork U3+CU3 candidate on the MPS backend
//!    (`max_bond` 32) vs. the fast state-vector kernels. The dense state
//!    is 16 MiB at n=20 and 256 MiB at n=24; the MPS never densifies, so
//!    the crossover past the dense memory wall is the headline.
//! 2. `truncation_bond{2,4,8,16,32}` — a `max_bond` sweep at 16 qubits:
//!    wall time, fidelity against the exact state, truncation events and
//!    discarded Schmidt weight per bond cap.
//!
//! `--smoke` shrinks both sections so CI can run the binary as a
//! build-and-run check without thresholds. `--check PATH` compares the
//! fresh `throughput_n16.mps_s` against a previously committed JSON and
//! exits non-zero on a >20% regression.

use qns_circuit::{Circuit, GateKind, Param};
use qns_sim::{
    mps_stats, reset_mps_stats, run_mps, run_with, ExecMode, MpsConfig, MpsState, SimBackend,
};
use std::fmt::Write as _;
use std::time::Instant;

/// A brickwork candidate: per-layer U3 on every qubit, CU3 on even then
/// odd nearest-neighbor pairs, and one ring-closing CU3 that exercises
/// the MPS SWAP routing for non-adjacent operands.
fn brickwork(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    let angle = |i: usize| Param::Fixed(0.3 * ((i % 11) as f64) - 1.2);
    let mut t = 0;
    for _ in 0..layers {
        for q in 0..n {
            c.push(GateKind::U3, &[q], &[angle(t), angle(t + 1), angle(t + 2)]);
            t += 3;
        }
        for start in [0usize, 1] {
            let mut q = start;
            while q + 1 < n {
                c.push(
                    GateKind::CU3,
                    &[q, q + 1],
                    &[angle(t), angle(t + 1), angle(t + 2)],
                );
                t += 3;
                q += 2;
            }
        }
        c.push(
            GateKind::CU3,
            &[0, n - 1],
            &[angle(t), angle(t + 1), angle(t + 2)],
        );
        t += 3;
    }
    c
}

/// Median wall-clock seconds of `reps` calls to `f`.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Json {
    buf: String,
}

impl Json {
    fn obj(&mut self, key: &str, body: impl FnOnce(&mut Json)) {
        let _ = write!(self.buf, "\"{key}\": {{");
        body(self);
        if self.buf.ends_with(", ") {
            self.buf.truncate(self.buf.len() - 2);
        }
        let _ = write!(self.buf, "}}, ");
    }

    fn num(&mut self, key: &str, v: f64) {
        let _ = write!(self.buf, "\"{key}\": {v:.9}, ");
    }

    fn int(&mut self, key: &str, v: usize) {
        let _ = write!(self.buf, "\"{key}\": {v}, ");
    }

    fn str(&mut self, key: &str, v: &str) {
        let _ = write!(self.buf, "\"{key}\": \"{v}\", ");
    }
}

/// Pulls `"key": <float>` out of the `"throughput_n16"` object of a flat
/// JSON string written by this bin.
fn n16_num(text: &str, key: &str) -> Option<f64> {
    let scope = &text[text.find("\"throughput_n16\"")?..];
    let needle = format!("\"{key}\": ");
    let start = scope.find(&needle)? + needle.len();
    let rest = &scope[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_mps.json".to_string());
    let check_path = flag("--check");
    let reps = if smoke { 1 } else { 5 };

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = Json { buf: String::new() };
    json.buf.push('{');
    json.str("bench", "mps");
    json.str("mode", if smoke { "smoke" } else { "full" });
    json.int("cores", cores);

    // 1. Throughput vs the dense state vector. Layers shrink with width
    //    so the dense side stays affordable at 24 qubits.
    let sizes: &[(usize, usize)] = if smoke {
        &[(6, 1), (8, 1)]
    } else {
        &[(10, 2), (16, 2), (24, 1)]
    };
    let bench_config = MpsConfig {
        max_bond: 32,
        ..Default::default()
    };
    let mut n16_mps_s = f64::NAN;
    for &(n, layers) in sizes {
        let circuit = brickwork(n, layers);
        let mps_s = time_median(reps, || {
            let mut mps = MpsState::zero_state(n, bench_config);
            run_mps(&circuit, &[], &[], ExecMode::Static, &mut mps);
            assert_eq!(mps.expect_z_all().len(), n);
        });
        let dense_s = time_median(reps, || {
            let state = run_with(&circuit, &[], &[], ExecMode::Static, SimBackend::Fast);
            assert_eq!(state.expect_z_all().len(), n);
        });
        if n == 16 {
            n16_mps_s = mps_s;
        }
        println!(
            "throughput n={n} ({} gates): mps {:.3}ms dense {:.3}ms (dense/mps {:.2}x, dense state {} MiB)",
            circuit.num_ops(),
            mps_s * 1e3,
            dense_s * 1e3,
            dense_s / mps_s.max(1e-12),
            (1usize << n) * 16 / (1 << 20),
        );
        json.obj(&format!("throughput_n{n}"), |j| {
            j.int("qubits", n);
            j.int("gates", circuit.num_ops());
            j.int("max_bond", bench_config.max_bond);
            j.num("mps_s", mps_s);
            j.num("dense_s", dense_s);
            j.num("dense_over_mps", dense_s / mps_s.max(1e-12));
            j.int("dense_bytes", (1usize << n) * 16);
        });
    }

    // 2. Truncation sweep: accuracy-vs-bond at a width where the exact
    //    state is still densifiable for the fidelity reference.
    let (sweep_n, sweep_layers, bonds): (usize, usize, &[usize]) = if smoke {
        (8, 1, &[2, 4])
    } else {
        (16, 3, &[2, 4, 8, 16, 32])
    };
    let circuit = brickwork(sweep_n, sweep_layers);
    let exact = run_with(&circuit, &[], &[], ExecMode::Static, SimBackend::Fast);
    for &bond in bonds {
        let config = MpsConfig::with_max_bond(bond);
        reset_mps_stats();
        let mut mps = MpsState::zero_state(sweep_n, config);
        let trunc_s = time_median(reps, || {
            mps = MpsState::zero_state(sweep_n, config);
            run_mps(&circuit, &[], &[], ExecMode::Static, &mut mps);
        });
        let stats = mps_stats();
        let fidelity = exact.inner(&mps.to_statevec()).norm_sqr();
        println!(
            "truncation n={sweep_n} max_bond={bond}: {:.3}ms fidelity {fidelity:.6} \
             ({} truncations, {:.3e} weight dropped)",
            trunc_s * 1e3,
            stats.truncation_events,
            stats.truncated_weight_pico as f64 * 1e-12,
        );
        json.obj(&format!("truncation_bond{bond}"), |j| {
            j.int("qubits", sweep_n);
            j.int("max_bond", bond);
            j.num("mps_s", trunc_s);
            j.num("fidelity", fidelity);
            j.int("truncation_events", stats.truncation_events as usize);
            j.num(
                "truncated_weight",
                stats.truncated_weight_pico as f64 * 1e-12,
            );
        });
    }

    if json.buf.ends_with(", ") {
        let len = json.buf.len() - 2;
        json.buf.truncate(len);
    }
    json.buf.push('}');
    json.buf.push('\n');
    std::fs::write(&out_path, &json.buf).expect("write BENCH_mps.json");
    println!("\nwrote {out_path}");

    if let Some(path) = check_path {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read committed baseline {path}: {e}"));
        let committed_s =
            n16_num(&committed, "mps_s").expect("committed baseline has throughput_n16.mps_s");
        let ratio = n16_mps_s / committed_s.max(1e-12);
        println!(
            "check vs {path}: committed n=16 {:.3}ms, fresh {:.3}ms ({ratio:.2}x)",
            committed_s * 1e3,
            n16_mps_s * 1e3,
        );
        if ratio > 1.2 {
            eprintln!("regression: n=16 MPS run is {ratio:.2}x the committed baseline (>1.20x)");
            std::process::exit(1);
        }
    }
}
