//! `batch_bench` — timings for the batched multi-state engine, recorded
//! as `BENCH_batch.json`.
//!
//! ```text
//! cargo run -p qns-bench --release --bin batch_bench \
//!     [-- --smoke] [-- --out PATH] [-- --check PATH]
//! ```
//!
//! Two sections, each per-sample-vs-batched:
//!
//! 1. `forward` — minibatch inference: `parallel_map` over per-sample
//!    plan replays vs. one `replay_batch_into` sweep per minibatch.
//! 2. `epoch` — a QML training epoch (forward + adjoint gradient) at
//!    10 qubits, batch 32: the old per-sample `qml_sample_grad` shape
//!    under `parallel_map` vs. `adjoint_gradient_batch`. The acceptance
//!    target is ≥2× here.
//!
//! `--smoke` shrinks both sections to a single cheap iteration so CI can
//! run the binary as a build-and-run check without thresholds.
//! `--check PATH` compares the fresh `epoch.batched_s` against a
//! previously committed JSON and exits non-zero on a >20% regression.

use qns_circuit::{Circuit, GateKind, Param};
use qns_ml::{cross_entropy_grad, nll_loss};
use qns_sim::{
    adjoint_gradient, adjoint_gradient_batch, parallel_map, run, DiagObservable, ExecMode, SimPlan,
    StateBatch, StateVec, DEFAULT_BATCH_LANES, DEFAULT_FUSION_LEVEL,
};
use quantumnas::Readout;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::Instant;

/// A QML-style benchmark candidate: an input-encoding layer (RY + affine
/// RZ per qubit) followed by `layers` of U3 rotations and a CU3
/// entangling ring — the SuperCircuit U3+CU3 design space shape.
fn qml_circuit(n: usize, layers: usize) -> (Circuit, Vec<f64>) {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(GateKind::RY, &[q], &[Param::Input(q)]);
        c.push(
            GateKind::RZ,
            &[q],
            &[Param::AffineInput {
                index: q,
                scale: 0.5,
                offset: 0.1,
            }],
        );
    }
    let mut t = 0;
    for _ in 0..layers {
        for q in 0..n {
            c.push(
                GateKind::U3,
                &[q],
                &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
            );
            t += 3;
        }
        for q in 0..n {
            c.push(
                GateKind::CU3,
                &[q, (q + 1) % n],
                &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
            );
            t += 3;
        }
    }
    let params = (0..t).map(|i| 0.1 * (i as f64 % 7.0) - 0.3).collect();
    (c, params)
}

/// Deterministic sample features (angles) and labels.
fn dataset(n_samples: usize, dim: usize, classes: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let features = (0..n_samples)
        .map(|s| {
            (0..dim)
                .map(|q| 0.3 * ((s * dim + q) as f64 % 11.0) - 1.2)
                .collect()
        })
        .collect();
    let labels = (0..n_samples).map(|s| s % classes).collect();
    (features, labels)
}

/// Median wall-clock seconds of `reps` calls to `f`.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One sample of the pre-batching training shape: a Static forward for
/// the loss weights, then `adjoint_gradient` (which runs its own
/// forward) — kept verbatim as the per-sample baseline.
fn sample_grad_baseline(
    circuit: &Circuit,
    params: &[f64],
    input: &[f64],
    label: usize,
    readout: &Readout,
) -> (f64, Vec<f64>) {
    let state = run(circuit, params, input, ExecMode::Static);
    let logits = readout.logits(&state.expect_z_all());
    let loss = nll_loss(&logits, label);
    let dlogits = cross_entropy_grad(&logits, label);
    let weights = readout.weights_from_logit_grad(&dlogits);
    let obs = DiagObservable::new(weights);
    let (_, grad) = adjoint_gradient(circuit, params, input, &obs);
    (loss, grad)
}

struct Json {
    buf: String,
}

impl Json {
    fn obj(&mut self, key: &str, body: impl FnOnce(&mut Json)) {
        let _ = write!(self.buf, "\"{key}\": {{");
        body(self);
        if self.buf.ends_with(", ") {
            self.buf.truncate(self.buf.len() - 2);
        }
        let _ = write!(self.buf, "}}, ");
    }

    fn num(&mut self, key: &str, v: f64) {
        let _ = write!(self.buf, "\"{key}\": {v:.9}, ");
    }

    fn int(&mut self, key: &str, v: usize) {
        let _ = write!(self.buf, "\"{key}\": {v}, ");
    }

    fn str(&mut self, key: &str, v: &str) {
        let _ = write!(self.buf, "\"{key}\": \"{v}\", ");
    }
}

/// Pulls `"key": <float>` out of the `"epoch"` object of a flat JSON
/// string written by this bin.
fn epoch_num(text: &str, key: &str) -> Option<f64> {
    let scope = &text[text.find("\"epoch\"")?..];
    let needle = format!("\"{key}\": ");
    let start = scope.find(&needle)? + needle.len();
    let rest = &scope[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_batch.json".to_string());
    let check_path = flag("--check");
    let reps = if smoke { 1 } else { 9 };

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = Json { buf: String::new() };
    json.buf.push('{');
    json.str("bench", "batch");
    json.str("mode", if smoke { "smoke" } else { "full" });
    json.int("cores", cores);

    let (n, layers, n_samples) = if smoke { (6, 1, 16) } else { (10, 3, 128) };
    let batch_size = 32.min(n_samples);
    let classes = 4;
    let (circuit, params) = qml_circuit(n, layers);
    let (features, labels) = dataset(n_samples, n, classes);
    let readout = Readout::per_qubit(classes, n);

    // 1. Forward-only minibatch inference.
    let plan = SimPlan::compile(&circuit, DEFAULT_FUSION_LEVEL);
    let base = plan.materialize(&circuit, &params, &features[0]);
    // Both paths reuse per-worker scratch state across chunks and reps
    // (replay resets it), as a real inference loop would: the comparison
    // is gate throughput, not allocator throughput.
    thread_local! {
        static VEC_SCRATCH: RefCell<Option<StateVec>> = const { RefCell::new(None) };
        static BATCH_SCRATCH: RefCell<Option<StateBatch>> = const { RefCell::new(None) };
    }
    let per_sample_fwd = time_median(reps, || {
        let logits: Vec<Vec<f64>> = parallel_map(&features, |input| {
            VEC_SCRATCH.with(|cell| {
                let mut slot = cell.borrow_mut();
                let state = match slot.as_mut() {
                    Some(s) if s.num_qubits() == n => s,
                    _ => slot.insert(StateVec::zero_state(n)),
                };
                plan.replay_input_into(&circuit, &base, &params, input, state);
                readout.logits(&state.expect_z_all())
            })
        });
        assert_eq!(logits.len(), n_samples);
    });
    let batched_fwd = time_median(reps, || {
        let chunks: Vec<&[Vec<f64>]> = features.chunks(DEFAULT_BATCH_LANES).collect();
        let logits: Vec<Vec<f64>> = parallel_map(&chunks, |chunk| {
            let inputs: Vec<&[f64]> = chunk.iter().map(|s| s.as_slice()).collect();
            BATCH_SCRATCH.with(|cell| {
                let mut slot = cell.borrow_mut();
                let batch = match slot.as_mut() {
                    Some(b) if b.num_qubits() == n && b.lanes() == inputs.len() => b,
                    _ => slot.insert(StateBatch::zero_state(n, inputs.len())),
                };
                plan.replay_batch_into(&circuit, &base, &params, &inputs, batch);
                batch
                    .expect_z_all_lanes()
                    .iter()
                    .map(|ez| readout.logits(ez))
                    .collect::<Vec<Vec<f64>>>()
            })
        })
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(logits.len(), n_samples);
    });
    println!(
        "forward (n={n}, {} samples): per-sample {:.3}ms batched {:.3}ms ({:.2}x)",
        n_samples,
        per_sample_fwd * 1e3,
        batched_fwd * 1e3,
        per_sample_fwd / batched_fwd.max(1e-12),
    );
    json.obj("forward", |j| {
        j.int("qubits", n);
        j.int("samples", n_samples);
        j.int("gates", circuit.num_ops());
        j.num("per_sample_s", per_sample_fwd);
        j.num("batched_s", batched_fwd);
        j.num("speedup", per_sample_fwd / batched_fwd.max(1e-12));
    });

    // 2. Training epoch: forward + adjoint gradient over every minibatch.
    let minibatches: Vec<Vec<usize>> = (0..n_samples)
        .collect::<Vec<usize>>()
        .chunks(batch_size)
        .map(<[usize]>::to_vec)
        .collect();
    let epoch_per_sample = time_median(reps, || {
        for batch in &minibatches {
            let per_sample: Vec<(f64, Vec<f64>)> = parallel_map(batch, |&i| {
                sample_grad_baseline(&circuit, &params, &features[i], labels[i], &readout)
            });
            let mut grad = vec![0.0; circuit.num_train_params()];
            for (_, g) in &per_sample {
                for (acc, gi) in grad.iter_mut().zip(g) {
                    *acc += gi;
                }
            }
        }
    });
    let epoch_batched = time_median(reps, || {
        for batch in &minibatches {
            let chunks: Vec<&[usize]> = batch.chunks(DEFAULT_BATCH_LANES).collect();
            let partials = parallel_map(&chunks, |chunk| {
                let inputs: Vec<&[f64]> = chunk.iter().map(|&i| features[i].as_slice()).collect();
                adjoint_gradient_batch(&circuit, &params, &inputs, |lane, ez| {
                    let logits = readout.logits(ez);
                    let loss = nll_loss(&logits, labels[chunk[lane]]);
                    let dlogits = cross_entropy_grad(&logits, labels[chunk[lane]]);
                    (loss, readout.weights_from_logit_grad(&dlogits))
                })
            });
            let mut grad = vec![0.0; circuit.num_train_params()];
            for (_, g) in &partials {
                for (acc, gi) in grad.iter_mut().zip(g) {
                    *acc += gi;
                }
            }
        }
    });
    let speedup = epoch_per_sample / epoch_batched.max(1e-12);
    println!(
        "epoch (n={n}, batch {batch_size}, {} samples, {} params): \
         per-sample {:.3}ms batched {:.3}ms ({speedup:.2}x)",
        n_samples,
        circuit.num_train_params(),
        epoch_per_sample * 1e3,
        epoch_batched * 1e3,
    );
    json.obj("epoch", |j| {
        j.int("qubits", n);
        j.int("batch", batch_size);
        j.int("samples", n_samples);
        j.int("gates", circuit.num_ops());
        j.int("params", circuit.num_train_params());
        j.num("per_sample_s", epoch_per_sample);
        j.num("batched_s", epoch_batched);
        j.num("speedup", speedup);
    });

    if json.buf.ends_with(", ") {
        let len = json.buf.len() - 2;
        json.buf.truncate(len);
    }
    json.buf.push('}');
    json.buf.push('\n');
    std::fs::write(&out_path, &json.buf).expect("write BENCH_batch.json");
    println!("\nwrote {out_path}");

    if let Some(path) = check_path {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read committed baseline {path}: {e}"));
        let committed_s =
            epoch_num(&committed, "batched_s").expect("committed baseline has epoch.batched_s");
        let ratio = epoch_batched / committed_s.max(1e-12);
        println!(
            "check vs {path}: committed epoch {:.3}ms, fresh {:.3}ms ({ratio:.2}x)",
            committed_s * 1e3,
            epoch_batched * 1e3,
        );
        if ratio > 1.2 {
            eprintln!("regression: batched epoch is {ratio:.2}x the committed baseline (>1.20x)");
            std::process::exit(1);
        }
    }

    // The acceptance comparison is serial-core: on multi-core hosts the
    // per-sample baseline fans out over all cores via `parallel_map` while
    // the batched path has only one chunk per minibatch to parallelize, so
    // the kernel-level speedup is only well-defined at one worker.
    if !smoke && cores == 1 {
        assert!(
            speedup >= 2.0,
            "acceptance: batched epoch speedup {speedup:.2}x is below the 2x target"
        );
    }
}
