//! `kernel_bench` — micro-benchmarks for the split-complex lane kernels
//! and the persistent worker pool, recorded as `BENCH_kernels.json`.
//!
//! ```text
//! cargo run -p qns-bench --release --bin kernel_bench \
//!     [-- --smoke] [-- --out PATH] [-- --check PATH]
//! ```
//!
//! Three sections:
//!
//! 1. `lanes` — gate-sweep GFLOP/s of the planar [`StateBatch`] against a
//!    local interleaved (`Vec<C64>`, array-of-structs) reference with the
//!    identical element order and walk, across lane counts. The planar
//!    layout is the one the autovectorizer can chew on; the acceptance
//!    target is ≥1.5× at [`DEFAULT_BATCH_LANES`].
//! 2. `dispatch` — per-call overhead of a `parallel_map` fan-out on the
//!    persistent worker pool vs. the old scoped spawn-per-call shape. The
//!    acceptance target is a ≥5× reduction.
//! 3. `forward` — end-to-end batched minibatch inference (replay +
//!    readout) at the default lane width, the number the lane kernels
//!    exist to move.
//!
//! `--smoke` shrinks every section to a cheap single iteration so CI can
//! run the binary as a build-and-run check without thresholds.
//! `--check PATH` compares the fresh `forward.batched_s` against a
//! previously committed JSON and exits non-zero on a >20% regression.

use qns_circuit::{Circuit, GateKind, Param};
use qns_sim::{
    parallel_map_hinted, SimPlan, StateBatch, DEFAULT_BATCH_LANES, DEFAULT_FUSION_LEVEL,
};
use qns_tensor::{Mat2, Mat4, C64};
use std::fmt::Write as _;
use std::time::Instant;

/// Interleaved (array-of-structs) reference batch: identical element
/// order to [`StateBatch`] (`amp * lanes + lane`) but `C64` pairs instead
/// of split planes, and the same blocked walks. This is the layout the
/// planar engine replaced; it exists here only as the baseline under
/// measurement.
struct InterleavedBatch {
    lanes: usize,
    amps: Vec<C64>,
}

impl InterleavedBatch {
    fn zero_state(n: usize, lanes: usize) -> Self {
        let mut amps = vec![C64::ZERO; (1 << n) * lanes];
        for a in amps.iter_mut().take(lanes) {
            *a = C64::ONE;
        }
        Self { lanes, amps }
    }

    fn apply_1q(&mut self, m: &Mat2, q: usize) {
        let stride = (1usize << q) * self.lanes;
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            for off in base..base + stride {
                let lo = self.amps[off];
                let hi = self.amps[off + stride];
                self.amps[off] = m.m[0] * lo + m.m[1] * hi;
                self.amps[off + stride] = m.m[2] * lo + m.m[3] * hi;
            }
            base += stride << 1;
        }
    }

    fn apply_2q(&mut self, m: &Mat4, qa: usize, qb: usize) {
        let ba = (1usize << qa) * self.lanes;
        let bb = (1usize << qb) * self.lanes;
        let (lo, hi) = if ba < bb { (ba, bb) } else { (bb, ba) };
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            let mut mid = base;
            while mid < base + hi {
                for e in mid..mid + lo {
                    let v0 = self.amps[e];
                    let v1 = self.amps[e + bb];
                    let v2 = self.amps[e + ba];
                    let v3 = self.amps[e + ba + bb];
                    self.amps[e] = ((m.m[0] * v0 + m.m[1] * v1) + m.m[2] * v2) + m.m[3] * v3;
                    self.amps[e + bb] = ((m.m[4] * v0 + m.m[5] * v1) + m.m[6] * v2) + m.m[7] * v3;
                    self.amps[e + ba] = ((m.m[8] * v0 + m.m[9] * v1) + m.m[10] * v2) + m.m[11] * v3;
                    self.amps[e + ba + bb] =
                        ((m.m[12] * v0 + m.m[13] * v1) + m.m[14] * v2) + m.m[15] * v3;
                }
                mid += lo << 1;
            }
            base += hi << 1;
        }
    }
}

/// RY-shaped rotation — a fully general (dense, no zero entry) 2×2.
fn ry(theta: f64) -> Mat2 {
    let h = theta / 2.0;
    Mat2::new([
        C64::real(h.cos()),
        C64::real(-h.sin()),
        C64::real(h.sin()),
        C64::real(h.cos()),
    ])
}

/// Median wall-clock seconds of `reps` calls to `f`.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The old dispatch shape: one scoped spawn per call, joined immediately.
/// Kept here as the measured baseline for the `dispatch` section.
fn scoped_map(items: &[u64], f: impl Fn(&u64) -> u64 + Sync) -> Vec<u64> {
    let mid = items.len() / 2;
    let (a, b) = items.split_at(mid);
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| b.iter().map(&f).collect::<Vec<u64>>());
        let mut out: Vec<u64> = a.iter().map(&f).collect();
        out.extend(handle.join().expect("scoped worker"));
        out
    })
}

struct Json {
    buf: String,
}

impl Json {
    fn obj(&mut self, key: &str, body: impl FnOnce(&mut Json)) {
        let _ = write!(self.buf, "\"{key}\": {{");
        body(self);
        if self.buf.ends_with(", ") {
            self.buf.truncate(self.buf.len() - 2);
        }
        let _ = write!(self.buf, "}}, ");
    }

    fn num(&mut self, key: &str, v: f64) {
        let _ = write!(self.buf, "\"{key}\": {v:.9}, ");
    }

    fn int(&mut self, key: &str, v: usize) {
        let _ = write!(self.buf, "\"{key}\": {v}, ");
    }

    fn str(&mut self, key: &str, v: &str) {
        let _ = write!(self.buf, "\"{key}\": \"{v}\", ");
    }
}

/// Pulls `"key": <float>` out of the `"forward"` object of a flat JSON
/// string written by this bin.
fn forward_num(text: &str, key: &str) -> Option<f64> {
    let scope = &text[text.find("\"forward\"")?..];
    let needle = format!("\"{key}\": ");
    let start = scope.find(&needle)? + needle.len();
    let rest = &scope[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The `batch_bench` QML candidate shape, reused for the end-to-end
/// forward section.
fn qml_circuit(n: usize, layers: usize) -> (Circuit, Vec<f64>) {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(GateKind::RY, &[q], &[Param::Input(q)]);
        c.push(
            GateKind::RZ,
            &[q],
            &[Param::AffineInput {
                index: q,
                scale: 0.5,
                offset: 0.1,
            }],
        );
    }
    let mut t = 0;
    for _ in 0..layers {
        for q in 0..n {
            c.push(
                GateKind::U3,
                &[q],
                &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
            );
            t += 3;
        }
        for q in 0..n {
            c.push(
                GateKind::CU3,
                &[q, (q + 1) % n],
                &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
            );
            t += 3;
        }
    }
    let params = (0..t).map(|i| 0.1 * (i as f64 % 7.0) - 0.3).collect();
    (c, params)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let check_path = flag("--check");
    let reps = if smoke { 1 } else { 9 };

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = Json { buf: String::new() };
    json.buf.push('{');
    json.str("bench", "kernels");
    json.str("mode", if smoke { "smoke" } else { "full" });
    json.int("cores", cores);

    // 1. Planar vs interleaved lane sweeps.
    let n = if smoke { 6 } else { 10 };
    let lane_counts: &[usize] = if smoke { &[2, 8] } else { &[2, 8, 32, 64] };
    let g1 = ry(0.7);
    let g2 = ry(0.4).kron(&ry(1.1));
    // Per full iteration: a 1q general sweep on every qubit plus a 2q
    // general sweep on every ring pair — one layer's worth of strides.
    let flops_per_iter = |lanes: usize| -> f64 {
        let amps = (1usize << n) * lanes;
        let one_q = n as f64 * (amps as f64 / 2.0) * 28.0;
        let two_q = n as f64 * (amps as f64 / 4.0) * 120.0;
        one_q + two_q
    };
    let mut default_speedup = 0.0;
    json.obj("lanes", |j| {
        j.int("qubits", n);
        for &lanes in lane_counts {
            let mut planar = StateBatch::zero_state(n, lanes);
            let planar_s = time_median(reps, || {
                for q in 0..n {
                    planar.apply_1q(&g1, q);
                }
                for q in 0..n {
                    planar.apply_2q(&g2, q, (q + 1) % n);
                }
            });
            let mut inter = InterleavedBatch::zero_state(n, lanes);
            let inter_s = time_median(reps, || {
                for q in 0..n {
                    inter.apply_1q(&g1, q);
                }
                for q in 0..n {
                    inter.apply_2q(&g2, q, (q + 1) % n);
                }
            });
            let speedup = inter_s / planar_s.max(1e-12);
            let gf = flops_per_iter(lanes) * 1e-9;
            println!(
                "lanes={lanes}: planar {:.2} GFLOP/s, interleaved {:.2} GFLOP/s ({speedup:.2}x)",
                gf / planar_s.max(1e-12),
                gf / inter_s.max(1e-12),
            );
            j.num(&format!("planar_gflops_{lanes}"), gf / planar_s.max(1e-12));
            j.num(
                &format!("interleaved_gflops_{lanes}"),
                gf / inter_s.max(1e-12),
            );
            j.num(&format!("speedup_{lanes}"), speedup);
            if lanes == DEFAULT_BATCH_LANES {
                default_speedup = speedup;
            }
        }
    });

    // 2. Pool dispatch vs scoped spawn, per call.
    let items: Vec<u64> = (0..64).collect();
    let calls = if smoke { 20 } else { 2000 };
    // A hint far above the cutoff forces the pool path even though the
    // items are trivially cheap — this measures dispatch, not work.
    let pool_s = time_median(reps, || {
        for _ in 0..calls {
            let out = parallel_map_hinted(&items, 2, 1_000_000, |x| x + 1);
            assert_eq!(out.len(), items.len());
        }
    }) / calls as f64;
    let scoped_s = time_median(reps, || {
        for _ in 0..calls {
            let out = scoped_map(&items, |x| x + 1);
            assert_eq!(out.len(), items.len());
        }
    }) / calls as f64;
    let dispatch_ratio = scoped_s / pool_s.max(1e-12);
    println!(
        "dispatch: pool {:.2}us/call, scoped spawn {:.2}us/call ({dispatch_ratio:.1}x)",
        pool_s * 1e6,
        scoped_s * 1e6,
    );
    json.obj("dispatch", |j| {
        j.int("items", items.len());
        j.int("calls", calls);
        j.num("pool_call_s", pool_s);
        j.num("scoped_call_s", scoped_s);
        j.num("ratio", dispatch_ratio);
    });

    // 3. End-to-end batched forward at the default lane width.
    let (fn_, layers, samples) = if smoke { (6, 1, 16) } else { (10, 3, 128) };
    let lanes = DEFAULT_BATCH_LANES.min(samples);
    let (circuit, params) = qml_circuit(fn_, layers);
    let features: Vec<Vec<f64>> = (0..samples)
        .map(|s| {
            (0..fn_)
                .map(|q| 0.3 * ((s * fn_ + q) as f64 % 11.0) - 1.2)
                .collect()
        })
        .collect();
    let plan = SimPlan::compile(&circuit, DEFAULT_FUSION_LEVEL);
    let base = plan.materialize(&circuit, &params, &features[0]);
    let mut batch = StateBatch::zero_state(fn_, lanes);
    let batched_s = time_median(reps, || {
        for chunk in features.chunks(lanes) {
            let inputs: Vec<&[f64]> = chunk.iter().map(|s| s.as_slice()).collect();
            plan.replay_batch_into(&circuit, &base, &params, &inputs, &mut batch);
            let ez = batch.expect_z_all_lanes();
            assert_eq!(ez.len(), inputs.len());
        }
    });
    println!(
        "forward (n={fn_}, {samples} samples, {lanes} lanes): batched {:.3}ms",
        batched_s * 1e3,
    );
    json.obj("forward", |j| {
        j.int("qubits", fn_);
        j.int("samples", samples);
        j.int("lanes", lanes);
        j.int("gates", circuit.num_ops());
        j.num("batched_s", batched_s);
    });

    if json.buf.ends_with(", ") {
        let len = json.buf.len() - 2;
        json.buf.truncate(len);
    }
    json.buf.push('}');
    json.buf.push('\n');
    std::fs::write(&out_path, &json.buf).expect("write BENCH_kernels.json");
    println!("\nwrote {out_path}");

    if let Some(path) = check_path {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read committed baseline {path}: {e}"));
        let committed_s =
            forward_num(&committed, "batched_s").expect("committed baseline has forward.batched_s");
        let ratio = batched_s / committed_s.max(1e-12);
        println!(
            "check vs {path}: committed forward {:.3}ms, fresh {:.3}ms ({ratio:.2}x)",
            committed_s * 1e3,
            batched_s * 1e3,
        );
        if ratio > 1.2 {
            eprintln!("regression: batched forward is {ratio:.2}x the committed baseline (>1.20x)");
            std::process::exit(1);
        }
    }

    if !smoke {
        assert!(
            default_speedup >= 1.5,
            "acceptance: planar lane kernels are {default_speedup:.2}x the interleaved \
             reference at {DEFAULT_BATCH_LANES} lanes, below the 1.5x target"
        );
        assert!(
            dispatch_ratio >= 5.0,
            "acceptance: pool dispatch is only {dispatch_ratio:.1}x cheaper than scoped \
             spawn, below the 5x target"
        );
    }
}
