//! Table VI and Figures 18–23: ablations and analysis experiments.

use crate::{banner, build, measure, noisy_estimator, qml_task, Scale};
use qns_noise::{Device, DriftingDevice, TrajectoryConfig};
use qns_transpile::Layout;
use quantumnas::{
    evolutionary_search, iterative_prune, random_search, train_supercircuit, train_task,
    DesignSpace, Estimator, EstimatorKind, PruneConfig, SamplerConfig, SpaceKind, SuperCircuit,
    SuperTrainConfig,
};

/// Table VI: searching with the (frozen-noise) estimator vs "real QC"
/// feedback under calibration drift, at optimization levels 2 and 3.
pub fn tab6(scale: &Scale) {
    banner(
        "Table VI",
        "search with estimator vs drifting-hardware feedback (opt levels 2/3)",
    );
    let task = qml_task("Fashion-4", scale, 131);
    let devices = [Device::yorktown(), Device::belem(), Device::santiago()];
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, scale.blocks);
    let (shared, _) = train_supercircuit(&sc, &task, &scale.super_train(7));

    for opt_level in [2u8, 3u8] {
        println!("\n-- optimization level {opt_level} --");
        println!(
            "{:<12} {:>12} {:>14}",
            "device", "estimator", "w/ drifting QC"
        );
        for device in &devices {
            // Estimator search: frozen calibration snapshot.
            let kind = if scale.full {
                EstimatorKind::NoisySim(TrajectoryConfig {
                    trajectories: 8,
                    seed: 7,
                    readout: true,
                })
            } else {
                EstimatorKind::SuccessRate
            };
            let est = Estimator::new(device.clone(), kind, opt_level).with_valid_cap(12);
            let mut evo = scale.evo.clone();
            evo.seed = 43;
            let s1 = evolutionary_search(&sc, &shared, &task, &est, &evo);

            // "Real QC" search: the device drifts over the (long) queue —
            // each generation sees a different calibration. The paper's
            // real-hardware run is slightly worse for exactly this reason.
            let drift = DriftingDevice::new(device.clone(), 0.5);
            let mut best: Option<(quantumnas::Gene, f64)> = None;
            for iter in 0..evo.iterations {
                let snapshot = drift.at(iter as f64 / 3.0);
                let mut iter_est = Estimator::new(snapshot, kind, opt_level).with_valid_cap(12);
                let mut one = evo.clone();
                one.iterations = 1;
                one.seed = 43 + iter as u64;
                let r = evolutionary_search(&sc, &shared, &task, &iter_est, &one);
                if best
                    .as_ref()
                    .map(|(_, s)| r.best_score < *s)
                    .unwrap_or(true)
                {
                    best = Some((r.best, r.best_score));
                }
                iter_est.set_device(device.clone());
            }
            let s2_best = best.expect("iterations ran").0;

            // Deploy both against the true (frozen) device, compiled at
            // the same optimization level the search assumed.
            let eval = |gene: &quantumnas::Gene, seed: u64| -> f64 {
                let circuit = build(&sc, &gene.config, &task);
                let (params, _) = train_task(&circuit, &task, &scale.train(seed), None);
                Estimator::new(device.clone(), EstimatorKind::Noiseless, opt_level).test_accuracy(
                    &circuit,
                    &params,
                    &task,
                    &gene.layout(),
                    scale.n_test,
                    scale.measure(),
                )
            };
            println!(
                "{:<12} {:>12.3} {:>14.3}",
                device.name(),
                eval(&s1.best, 1),
                eval(&s2_best, 2)
            );
        }
    }
    println!("(expect: drifting feedback slightly worse; level 3 not uniformly better)");
}

/// Figure 18: accuracy breakdown — human / mapping-only / circuit-only /
/// co-search.
pub fn fig18(scale: &Scale) {
    banner("Figure 18", "effect of circuit & qubit-mapping co-design");
    // Quick mode amplifies noise so design choices dominate the +/-0.05
    // sampling error (full mode uses raw calibrations).
    let device = if scale.full {
        Device::yorktown()
    } else {
        Device::yorktown().scaled_errors(2.5)
    };
    let tasks = if scale.full {
        vec!["MNIST-4", "Fashion-4", "Vowel-4", "MNIST-2", "Fashion-2"]
    } else {
        vec!["MNIST-2", "Fashion-2"]
    };
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>12}",
        "task", "human", "mapping-only", "circuit-only", "co-search"
    );
    for task_name in tasks {
        let task = qml_task(task_name, scale, 141);
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, scale.blocks);
        let (shared, _) = train_supercircuit(&sc, &task, &scale.super_train(19));
        let estimator = noisy_estimator(&device, scale);

        // Every variant starts from the same human design, so "mapping
        // only" freezes exactly that architecture (parameter-matched).
        let human_gene = quantumnas::Gene {
            config: quantumnas::human_design(&sc, sc.num_params() / 2),
            layout: (0..4).collect(),
        };
        let run_variant_once = |search_arch: bool, search_layout: bool, seed: u64| -> f64 {
            if !search_arch && !search_layout {
                // Pure human baseline: human design, trivial layout.
                let circuit = build(&sc, &human_gene.config, &task);
                let (params, _) = train_task(&circuit, &task, &scale.train(seed), None);
                return measure(
                    &task,
                    &device,
                    scale,
                    &circuit,
                    &params,
                    &Layout::trivial(4),
                )
                .measured;
            }
            let mut evo = scale.evo.clone();
            evo.seed = seed;
            evo.search_arch = search_arch;
            evo.search_layout = search_layout;
            let search = quantumnas::evolutionary_search_seeded(
                &sc,
                &shared,
                &task,
                &estimator,
                &evo,
                std::slice::from_ref(&human_gene),
            );
            let circuit = build(&sc, &search.best.config, &task);
            let (params, _) = train_task(&circuit, &task, &scale.train(seed), None);
            measure(
                &task,
                &device,
                scale,
                &circuit,
                &params,
                &search.best.layout(),
            )
            .measured
        };
        // Search outcomes are seed-noisy at quick scale: average 3 seeds.
        let reps = if scale.full { 1 } else { 3 };
        let run_variant = |arch: bool, layout: bool, base: u64| -> f64 {
            (0..reps)
                .map(|r| run_variant_once(arch, layout, base + 10 * r as u64))
                .sum::<f64>()
                / reps as f64
        };

        println!(
            "{:<12} {:>10.3} {:>14.3} {:>14.3} {:>12.3}",
            task_name,
            run_variant(false, false, 1),
            run_variant(false, true, 2),
            run_variant(true, false, 3),
            run_variant(true, true, 4),
        );
    }
    println!("(expect: circuit-only > mapping-only; co-search best)");
}

/// Figure 19: progressive shrinking + restricted sampling ablation.
pub fn fig19(scale: &Scale) {
    banner(
        "Figure 19",
        "progressive shrinking and restricted sampling improve final accuracy",
    );
    let device = Device::yorktown();
    let pairs = if scale.full {
        vec![
            ("MNIST-4", SpaceKind::ZxXx),
            ("Fashion-4", SpaceKind::ZxXx),
            ("MNIST-2", SpaceKind::RxyzU1Cu3),
            ("Fashion-2", SpaceKind::RxyzU1Cu3),
        ]
    } else {
        vec![
            ("MNIST-2", SpaceKind::ZxXx),
            ("Fashion-2", SpaceKind::U3Cu3),
        ]
    };
    println!(
        "{:<12} {:<14} {:>16} {:>14}",
        "task", "space", "w/o progressive", "progressive"
    );
    for (task_name, space) in pairs {
        let task = qml_task(task_name, scale, 151);
        // Shrinking only matters with enough depth head-room, so this
        // ablation uses a deeper SuperCircuit than the other quick runs.
        let sc = SuperCircuit::new(DesignSpace::new(space), 4, scale.blocks.max(5));

        let run_variant_once = |progressive: bool, seed: u64| -> f64 {
            let sampler = SamplerConfig {
                progressive,
                restricted: progressive,
                shrink_start: 0,
                shrink_end: (scale.super_steps / 3).max(1),
                ..Default::default()
            };
            let mut st = scale.super_train(seed);
            st.steps *= 2;
            let cfg = SuperTrainConfig { sampler, ..st };
            let (shared, _) = train_supercircuit(&sc, &task, &cfg);
            let estimator = noisy_estimator(&device, scale);
            let mut evo = scale.evo.clone();
            evo.seed = seed ^ 29;
            let search = evolutionary_search(&sc, &shared, &task, &estimator, &evo);
            let circuit = build(&sc, &search.best.config, &task);
            let (params, _) = train_task(&circuit, &task, &scale.train(seed ^ 4), None);
            measure(
                &task,
                &device,
                scale,
                &circuit,
                &params,
                &search.best.layout(),
            )
            .measured
        };
        let reps = if scale.full { 1 } else { 3 };
        let run_variant = |progressive: bool| -> f64 {
            (0..reps)
                .map(|r| run_variant_once(progressive, 23 + 7 * r as u64))
                .sum::<f64>()
                / reps as f64
        };

        println!(
            "{:<12} {:<14} {:>16.3} {:>14.3}",
            task_name,
            DesignSpace::new(space).kind(),
            run_variant(false),
            run_variant(true)
        );
    }
}

/// Figure 20: topology / error rate / mapping effects.
pub fn fig20(scale: &Scale) {
    banner(
        "Figure 20",
        "qubit topology, error rate, and mapping all matter",
    );
    let task = qml_task("MNIST-4", scale, 161);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, scale.blocks);
    let (shared, _) = train_supercircuit(&sc, &task, &scale.super_train(27));
    println!(
        "{:<10} {:>9} {:>10} {:>12} {:>12} {:>10}",
        "device", "topology", "mean e2q", "naive map", "searched", "conv iter"
    );
    for device in Device::all_5q() {
        let estimator = noisy_estimator(&device, scale);
        let mut evo = scale.evo.clone();
        evo.seed = 37;
        let search = evolutionary_search(&sc, &shared, &task, &estimator, &evo);
        let circuit = build(&sc, &search.best.config, &task);
        let (params, _) = train_task(&circuit, &task, &scale.train(5), None);
        let searched = measure(
            &task,
            &device,
            scale,
            &circuit,
            &params,
            &search.best.layout(),
        )
        .measured;
        let naive = measure(
            &task,
            &device,
            scale,
            &circuit,
            &params,
            &Layout::trivial(4),
        )
        .measured;
        // Convergence iteration: last improvement of the best-so-far curve.
        let conv = search
            .history
            .windows(2)
            .rposition(|w| w[1] < w[0] - 1e-12)
            .map(|i| i + 2)
            .unwrap_or(1);
        println!(
            "{:<10} {:>9} {:>10.4} {:>12.3} {:>12.3} {:>10}",
            device.name(),
            format!("{:?}", device.topology()),
            device.mean_err_2q(),
            naive,
            searched,
            conv
        );
    }
    println!("(expect: same topology => lower error wins; searched >= naive mapping)");
}

/// Figures 21 and 22: random vs evolutionary search.
pub fn fig21_22(scale: &Scale) {
    banner(
        "Figures 21-22",
        "evolutionary search beats random search at equal budget",
    );
    let task = qml_task("MNIST-2", scale, 171);
    let device = Device::yorktown();
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, scale.blocks);
    let (shared, _) = train_supercircuit(&sc, &task, &scale.super_train(33));
    let estimator = noisy_estimator(&device, scale);
    let mut evo = scale.evo.clone();
    evo.seed = 47;
    let e = evolutionary_search(&sc, &shared, &task, &estimator, &evo);
    let r = random_search(&sc, &shared, &task, &estimator, &evo);

    println!("optimization curves (best-so-far estimator loss per iteration):");
    println!("{:>6} {:>14} {:>14}", "iter", "evolutionary", "random");
    for (i, (ev, rv)) in e.history.iter().zip(r.history.iter()).enumerate() {
        println!("{:>6} {:>14.4} {:>14.4}", i + 1, ev, rv);
    }

    let finish = |gene: &quantumnas::Gene, seed: u64| -> f64 {
        let circuit = build(&sc, &gene.config, &task);
        let (params, _) = train_task(&circuit, &task, &scale.train(seed), None);
        measure(&task, &device, scale, &circuit, &params, &gene.layout()).measured
    };
    // Average over search seeds: single quick-mode runs are noisy.
    let reps = if scale.full { 1 } else { 3 };
    let mut evo_acc = 0.0;
    let mut rnd_acc = 0.0;
    for rep in 0..reps {
        let mut cfg = scale.evo.clone();
        cfg.seed = 47 + 13 * rep as u64;
        let e = evolutionary_search(&sc, &shared, &task, &estimator, &cfg);
        let r = random_search(&sc, &shared, &task, &estimator, &cfg);
        evo_acc += finish(&e.best, cfg.seed) / reps as f64;
        rnd_acc += finish(&r.best, cfg.seed ^ 1) / reps as f64;
    }
    println!("\nfinal measured accuracy (Figure 21, mean over {reps} seeds):");
    println!("  evolutionary: {evo_acc:.3}");
    println!("  random:       {rnd_acc:.3}");
}

/// Figure 23: measured accuracy across final pruning ratios.
pub fn fig23(scale: &Scale) {
    banner(
        "Figure 23",
        "pruning-ratio sweep: each task has a sweet spot",
    );
    let device = Device::yorktown();
    let pairs = vec![
        ("MNIST-2", SpaceKind::ZzRy),
        ("Fashion-2", SpaceKind::U3Cu3),
    ];
    let ratios = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    for (task_name, space) in pairs {
        let task = qml_task(task_name, scale, 181);
        let sc = SuperCircuit::new(DesignSpace::new(space), 4, scale.blocks);
        let (shared, _) = train_supercircuit(&sc, &task, &scale.super_train(39));
        let estimator = noisy_estimator(&device, scale);
        let mut evo = scale.evo.clone();
        evo.seed = 53;
        let search = evolutionary_search(&sc, &shared, &task, &estimator, &evo);
        let circuit = build(&sc, &search.best.config, &task);
        let (params, _) = train_task(&circuit, &task, &scale.train(6), None);

        print!("{:<12} {:<12}", task_name, DesignSpace::new(space).kind());
        for &ratio in &ratios {
            let acc = if ratio == 0.0 {
                measure(
                    &task,
                    &device,
                    scale,
                    &circuit,
                    &params,
                    &search.best.layout(),
                )
                .measured
            } else {
                let pruned = iterative_prune(
                    &circuit,
                    &params,
                    &task,
                    &PruneConfig {
                        final_ratio: ratio,
                        steps: 2,
                        finetune_epochs: (scale.epochs / 5).max(2),
                        ..Default::default()
                    },
                );
                measure(
                    &task,
                    &device,
                    scale,
                    &pruned.circuit,
                    &pruned.params,
                    &search.best.layout(),
                )
                .measured
            };
            print!(" r{:.1}={:.3}", ratio, acc);
        }
        println!();
    }
}
