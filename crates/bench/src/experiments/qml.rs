//! Figures 2, 3, 13, 14 and Tables III, IV, V, VII.

use crate::{
    banner, build, measure, noisy_estimator, prepare, qml_task, run_method, Method, Scale,
};
use qns_ml::{mean, std_dev};
use qns_noise::Device;
use qns_transpile::Layout;
use quantumnas::{
    eval_task, evolutionary_search, human_design, random_design, train_supercircuit, train_task,
    DesignSpace, Estimator, EstimatorKind, SpaceKind, Split, SuperCircuit,
};

/// Figure 2: noise-free vs measured accuracy as parameters grow, with the
/// measured variance widening.
pub fn fig2(scale: &Scale) {
    banner(
        "Figure 2",
        "more parameters: noise-free accuracy rises, measured accuracy peaks",
    );
    let task = qml_task("MNIST-4", scale, 51);
    let device = Device::yorktown();
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 8);
    let budgets: Vec<usize> = if scale.full {
        vec![12, 24, 45, 90, 140, 190]
    } else {
        vec![12, 45, 90, 140, 190]
    };
    let designs_per_budget = if scale.full { 4 } else { 3 };
    println!(
        "{:>8} {:>22} {:>22}",
        "#params", "noise-free acc (mean/sd)", "measured acc (mean/sd)"
    );
    for &budget in &budgets {
        let mut ideal = Vec::new();
        let mut measured = Vec::new();
        for s in 0..designs_per_budget {
            let cfg = random_design(&sc, budget, 1000 + s);
            let circuit = build(&sc, &cfg, &task);
            let (params, _) = train_task(&circuit, &task, &scale.train(s), None);
            let r = measure(
                &task,
                &device,
                scale,
                &circuit,
                &params,
                &Layout::trivial(4),
            );
            ideal.push(r.ideal);
            measured.push(r.measured);
        }
        println!(
            "{:>8} {:>14.3} /{:>5.3} {:>14.3} /{:>5.3}",
            budget,
            mean(&ideal),
            std_dev(&ideal),
            mean(&measured),
            std_dev(&measured)
        );
    }
    println!("(expect: ideal monotone-ish; measured peaks then drops; measured sd wider)");
}

/// Figure 3: accuracy vs #parameters — QuantumNAS delays the peak.
pub fn fig3(scale: &Scale) {
    banner(
        "Figure 3",
        "QuantumNAS mitigates gate error and delays the accuracy peak",
    );
    let task = qml_task("MNIST-4", scale, 61);
    let device = Device::yorktown();
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 8);
    let (shared, _) = train_supercircuit(&sc, &task, &scale.super_train(11));
    let estimator = noisy_estimator(&device, scale);
    let budgets: Vec<usize> = if scale.full {
        vec![12, 24, 45, 90, 140, 190]
    } else {
        vec![12, 45, 90, 140, 190]
    };
    println!(
        "{:>8} {:>12} {:>14}",
        "#params", "human acc", "QuantumNAS acc"
    );
    for &budget in &budgets {
        // Human at this budget.
        let human_cfg = human_design(&sc, budget);
        let human_circuit = build(&sc, &human_cfg, &task);
        let (hp, _) = train_task(&human_circuit, &task, &scale.train(1), None);
        let human = measure(
            &task,
            &device,
            scale,
            &human_circuit,
            &hp,
            &Layout::trivial(4),
        );
        // QuantumNAS constrained to the same budget, seeded with the human
        // design so the budgeted search starts from a feasible gene.
        let mut evo = scale.evo.clone();
        evo.max_params = Some(budget);
        evo.seed = budget as u64;
        let seed_gene = quantumnas::Gene {
            config: human_cfg.clone(),
            layout: (0..4).collect(),
        };
        let search = quantumnas::evolutionary_search_seeded(
            &sc,
            &shared,
            &task,
            &estimator,
            &evo,
            &[seed_gene],
        );
        let nas_circuit = build(&sc, &search.best.config, &task);
        let (np, _) = train_task(&nas_circuit, &task, &scale.train(2), None);
        let nas = measure(
            &task,
            &device,
            scale,
            &nas_circuit,
            &np,
            &search.best.layout(),
        );
        println!(
            "{:>8} {:>12.3} {:>14.3}",
            budget, human.measured, nas.measured
        );
    }
}

/// Table III: 300-sample test accuracy tracks the whole test set.
pub fn tab3(scale: &Scale) {
    banner(
        "Table III",
        "whole-test-set accuracy is close to a 300-sample subset",
    );
    // This comparison needs a test split well above 300 samples, so the
    // dataset is generated at fixed size regardless of --full.
    let task = quantumnas::Task::qml_digits(&[0, 1, 2, 3], 400, 4, 71);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, scale.blocks);
    let est = Estimator::new(Device::belem(), EstimatorKind::Noiseless, 2);
    println!(
        "{:<10} {:>16} {:>16}",
        "circuit", "whole test set", "300 samples"
    );
    for k in 0..4u64 {
        let cfg = random_design(&sc, 24 + 6 * k as usize, k);
        let circuit = build(&sc, &cfg, &task);
        // Vary training length so the circuits span an accuracy range,
        // like the paper's four checkpoints.
        let mut train = scale.train(k);
        train.epochs = (scale.epochs / 4).max(1) * (k as usize + 1);
        let (params, _) = train_task(&circuit, &task, &train, None);
        let whole = {
            let (_, acc) = eval_task(&circuit, &params, &task, Split::Test);
            acc
        };
        let subset = est.ideal_accuracy(&circuit, &params, &task, 300);
        println!("{:<10} {:>16.3} {:>16.3}", k + 1, whole, subset);
    }
}

/// Table IV: compiled circuit properties per method (Fashion-2, U3+CU3).
pub fn tab4(scale: &Scale) {
    banner(
        "Table IV",
        "compiled circuit properties, Fashion-2 in the U3+CU3 space",
    );
    let task = qml_task("Fashion-2", scale, 81);
    let device = Device::yorktown();
    let prepared = prepare(&task, SpaceKind::U3Cu3, &device, scale, 7);
    println!(
        "{:<22} {:>6} {:>18} {:>8} {:>7}",
        "method", "depth", "#gates (1Q+CNOT)", "#params", "acc"
    );
    for method in [
        Method::NoiseUnaware,
        Method::Random,
        Method::Human,
        Method::QuantumNas,
        Method::QuantumNasPruned,
    ] {
        let r = run_method(method, &task, &device, scale, &prepared, 3);
        println!(
            "{:<22} {:>6} {:>9} ({:>3}+{:<3}) {:>8} {:>7.2}",
            method.label(),
            r.depth,
            r.gates.0,
            r.gates.1,
            r.gates.2,
            r.n_params,
            r.measured
        );
    }
    println!("(expect: noise-unaware deepest and least accurate; pruning trims depth/gates)");
}

/// Figure 13: measured accuracy across tasks × spaces × methods.
pub fn fig13(scale: &Scale) {
    banner(
        "Figure 13",
        "measured accuracy on IBMQ-Yorktown model: QuantumNAS vs 6 baselines",
    );
    // Quick mode amplifies the device noise so method differences exceed
    // the +/-0.06 sampling error of the 60-image measured test (full mode
    // keeps raw calibrations and uses 300 images, like the paper).
    let device = if scale.full {
        Device::yorktown()
    } else {
        Device::yorktown().scaled_errors(2.5)
    };
    let tasks: Vec<&str> = if scale.full {
        vec!["MNIST-4", "Fashion-4", "Vowel-4", "MNIST-2", "Fashion-2"]
    } else {
        vec!["MNIST-4", "MNIST-2", "Fashion-2"]
    };
    let spaces: Vec<SpaceKind> = if scale.full {
        vec![
            SpaceKind::U3Cu3,
            SpaceKind::ZzRy,
            SpaceKind::Rxyz,
            SpaceKind::ZxXx,
            SpaceKind::RxyzU1Cu3,
        ]
    } else {
        vec![SpaceKind::U3Cu3, SpaceKind::ZzRy]
    };
    let methods = if scale.full {
        Method::all().to_vec()
    } else {
        vec![
            Method::NoiseUnaware,
            Method::Random,
            Method::Human,
            Method::HumanNoiseAdaptive,
            Method::QuantumNas,
            Method::QuantumNasPruned,
        ]
    };
    for task_name in &tasks {
        let task = qml_task(task_name, scale, 97);
        for &space in &spaces {
            let prepared = prepare(&task, space, &device, scale, 13);
            println!(
                "\n--- {} | {} ---",
                task_name,
                DesignSpace::new(space).kind()
            );
            for &method in &methods {
                let r = run_method(method, &task, &device, scale, &prepared, 5);
                println!(
                    "{:<22} acc {:.3}  ({} params)",
                    method.label(),
                    r.measured,
                    r.n_params
                );
            }
        }
    }
}

/// Figure 14: QuantumNAS vs baselines across the 5-qubit devices.
pub fn fig14(scale: &Scale) {
    banner("Figure 14", "QuantumNAS across 5-qubit device models");
    let task = qml_task("MNIST-2", scale, 101);
    // One SuperCircuit, searched per device with its own noise model —
    // exactly the Table I reuse argument.
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, scale.blocks);
    let (shared, _) = train_supercircuit(&sc, &task, &scale.super_train(15));
    println!(
        "{:<10} {:>12} {:>12} {:>14}",
        "device", "human", "random", "QuantumNAS"
    );
    let amp = if scale.full { 1.0 } else { 2.5 };
    for device in Device::all_5q().into_iter().map(|d| d.scaled_errors(amp)) {
        let estimator = noisy_estimator(&device, scale);
        let mut evo = scale.evo.clone();
        evo.seed = 23;
        let search = evolutionary_search(&sc, &shared, &task, &estimator, &evo);
        let nas_circuit = build(&sc, &search.best.config, &task);
        let (np, _) = train_task(&nas_circuit, &task, &scale.train(1), None);
        let nas = measure(
            &task,
            &device,
            scale,
            &nas_circuit,
            &np,
            &search.best.layout(),
        );
        let budget = nas.n_params.max(4);

        let human_cfg = human_design(&sc, budget);
        let hc = build(&sc, &human_cfg, &task);
        let (hp, _) = train_task(&hc, &task, &scale.train(2), None);
        let human = measure(&task, &device, scale, &hc, &hp, &Layout::trivial(4));

        let rand_cfg = random_design(&sc, budget, 3);
        let rc = build(&sc, &rand_cfg, &task);
        let (rp, _) = train_task(&rc, &task, &scale.train(3), None);
        let random = measure(&task, &device, scale, &rc, &rp, &Layout::trivial(4));

        println!(
            "{:<10} {:>12.3} {:>12.3} {:>14.3}",
            device.name(),
            human.measured,
            random.measured,
            nas.measured
        );
    }
}

/// Table V: circuits searched for one device, run on another.
pub fn tab5(scale: &Scale) {
    banner("Table V", "device-specific circuits transfer poorly");
    let task = qml_task("Fashion-2", scale, 111);
    // Quick mode amplifies device error rates so the transfer penalty is
    // visible with small search budgets (full mode uses raw calibrations).
    let amp = if scale.full { 1.0 } else { 2.0 };
    let devices = [
        Device::yorktown().scaled_errors(amp),
        Device::belem().scaled_errors(amp),
        Device::santiago().scaled_errors(amp),
    ];
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, scale.blocks);
    let (shared, _) = train_supercircuit(&sc, &task, &scale.super_train(17));
    // Search per target device with the trajectory-noise estimator (the
    // transfer effect hinges on modeling each device's specific errors).
    let mut trained = Vec::new();
    for (i, dev) in devices.iter().enumerate() {
        let estimator = Estimator::new(
            dev.clone(),
            EstimatorKind::NoisySim(qns_noise::TrajectoryConfig {
                trajectories: 6,
                seed: 3,
                readout: true,
            }),
            2,
        )
        .with_valid_cap(12);
        let mut evo = scale.evo.clone();
        evo.seed = 31 + i as u64;
        let human_seed = quantumnas::Gene {
            config: human_design(&sc, sc.num_params() / 2),
            layout: (0..4).collect(),
        };
        let search = quantumnas::evolutionary_search_seeded(
            &sc,
            &shared,
            &task,
            &estimator,
            &evo,
            &[human_seed],
        );
        let circuit = build(&sc, &search.best.config, &task);
        let (params, _) = train_task(&circuit, &task, &scale.train(i as u64), None);
        trained.push((circuit, params, search.best.layout()));
    }
    print!("{:<22}", "run on \\ searched for");
    for dev in &devices {
        print!(" {:>10}", dev.name());
    }
    println!();
    for run_dev in &devices {
        print!("{:<22}", run_dev.name());
        for (circuit, params, layout) in &trained {
            let r = measure(&task, run_dev, scale, circuit, params, layout);
            print!(" {:>10.3}", r.measured);
        }
        println!();
    }
    println!("(expect: the diagonal — matched search/run device — is the row maximum)");
}

/// Table VII: a small single-depth space vs the full multi-block space.
pub fn tab7(scale: &Scale) {
    banner(
        "Table VII",
        "small spaces have less noise but too little capacity",
    );
    let devices = [Device::santiago(), Device::belem(), Device::yorktown()];
    let tasks = if scale.full {
        vec!["MNIST-4", "Fashion-4", "MNIST-2", "Fashion-2"]
    } else {
        vec!["MNIST-4", "Fashion-2"]
    };
    for task_name in &tasks {
        let task = qml_task(task_name, scale, 121);
        println!("\n--- {task_name} ---");
        println!(
            "{:<10} {:>14} {:>10} {:>14} {:>10}",
            "device", "small depth", "small acc", "ours depth", "ours acc"
        );
        for device in &devices {
            // Small space: a single block (shallow, unbroken).
            let small_sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 1);
            let (small_shared, _) = train_supercircuit(&small_sc, &task, &scale.super_train(2));
            let estimator = noisy_estimator(device, scale);
            let mut evo = scale.evo.clone();
            evo.seed = 41;
            let s_search = evolutionary_search(&small_sc, &small_shared, &task, &estimator, &evo);
            let s_circuit = build(&small_sc, &s_search.best.config, &task);
            let (sp, _) = train_task(&s_circuit, &task, &scale.train(1), None);
            let small = measure(
                &task,
                device,
                scale,
                &s_circuit,
                &sp,
                &s_search.best.layout(),
            );

            // Ours: the multi-block space.
            let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, scale.blocks.max(3));
            let (shared, _) = train_supercircuit(&sc, &task, &scale.super_train(3));
            let search = evolutionary_search(&sc, &shared, &task, &estimator, &evo);
            let circuit = build(&sc, &search.best.config, &task);
            let (p, _) = train_task(&circuit, &task, &scale.train(2), None);
            let ours = measure(&task, device, scale, &circuit, &p, &search.best.layout());

            println!(
                "{:<10} {:>14} {:>10.3} {:>14} {:>10.3}",
                device.name(),
                small.depth,
                small.measured,
                ours.depth,
                ours.measured
            );
        }
    }
}
