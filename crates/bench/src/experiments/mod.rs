//! One module per group of paper artifacts. Every public function
//! regenerates one table or figure and prints the same rows/series the
//! paper reports.

pub mod ablations;
pub mod misc;
pub mod qml;
pub mod vqe;
