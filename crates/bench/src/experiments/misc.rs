//! Table I, Table II, Figure 9, Figure 10, Figure 12, Figure 15.

use crate::{banner, build, qml_task, Scale};
use qns_circuit::{Circuit, GateKind, Param};
use qns_ml::spearman;
use qns_noise::Device;
use qns_sim::{run, ExecMode};
use qns_transpile::{to_ibm_basis, transpile, Layout};
use quantumnas::{
    eval_task, evolutionary_search, train_supercircuit, train_task, DesignSpace, Estimator,
    EstimatorKind, EvoConfig, SpaceKind, Split, SubConfig, SuperCircuit,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Table I: circuit-run counts with and without the SuperCircuit.
pub fn tab1(_scale: &Scale) {
    banner(
        "Table I",
        "SuperCircuit decouples parameter training from search",
    );
    let cost = quantumnas::RunCost {
        n_devices: 10,
        n_search: 1600,
        n_train: 40_000,
        n_eval: 1,
    };
    println!("{:<22} {:>18}", "strategy", "circuit runs");
    println!("{:<22} {:>18.3e}", "naive search", cost.naive());
    println!(
        "{:<22} {:>18.3e}",
        "with SuperCircuit",
        cost.with_supercircuit()
    );
    println!(
        "reduction: {:.0}x (paper quotes ~N_device x N_search = {}x)",
        cost.reduction(),
        cost.n_devices * cost.n_search
    );
}

/// Table II: compiled gate counts of U3 with zeroed parameters.
pub fn tab2(_scale: &Scale) {
    banner(
        "Table II",
        "pruning part of a U3 gate reduces compiled gates",
    );
    let cases: [(&str, [f64; 3]); 6] = [
        ("(th, ph, la)", [0.3, 0.4, 0.5]),
        ("(0,  ph, la)", [0.0, 0.4, 0.5]),
        ("(th, ph, 0 )", [0.3, 0.4, 0.0]),
        ("(th, 0,  0 )", [0.3, 0.0, 0.0]),
        ("(0,  ph, 0 )", [0.0, 0.4, 0.0]),
        ("(0,  0,  la)", [0.0, 0.0, 0.5]),
    ];
    println!(
        "{:<14} {:>16}  (paper: 5, 1, 4, 4, 1, 1)",
        "U3 pattern", "#compiled gates"
    );
    for (label, p) in cases {
        let mut c = Circuit::new(1);
        c.push(
            GateKind::U3,
            &[0],
            &[Param::Fixed(p[0]), Param::Fixed(p[1]), Param::Fixed(p[2])],
        );
        println!("{:<14} {:>16}", label, to_ibm_basis(&c).num_ops());
    }
}

/// Figure 9: correlation between inherited-parameter and trained-from-
/// scratch SubCircuit performance.
pub fn fig9(scale: &Scale) {
    banner(
        "Figure 9",
        "inherited vs from-scratch loss correlation (Spearman)",
    );
    let n_configs = if scale.full { 16 } else { 8 };
    println!(
        "{:<12} {:<14} {:>10} {:>8}",
        "task", "space", "spearman", "#configs"
    );
    let mut scores = Vec::new();
    for (task_name, space) in [
        ("MNIST-2", SpaceKind::U3Cu3),
        ("Fashion-2", SpaceKind::ZzRy),
    ] {
        let task = qml_task(task_name, scale, 21);
        let sc = SuperCircuit::new(DesignSpace::new(space), 4, scale.blocks);
        let (shared, _) = train_supercircuit(&sc, &task, &scale.super_train(3));
        let mut rng = StdRng::seed_from_u64(17);
        let mut inherited = Vec::new();
        let mut scratch = Vec::new();
        for k in 0..n_configs {
            let cfg = SubConfig {
                n_blocks: rng.gen_range(1..=sc.num_blocks()),
                widths: (0..sc.num_blocks())
                    .map(|_| {
                        (0..sc.space().layers_per_block().len())
                            .map(|_| rng.gen_range(1..=4))
                            .collect()
                    })
                    .collect(),
            };
            let circuit = build(&sc, &cfg, &task);
            let (inh_loss, _) = eval_task(&circuit, &shared, &task, Split::Valid);
            let (params, _) = train_task(&circuit, &task, &scale.train(k as u64), None);
            let (scr_loss, _) = eval_task(&circuit, &params, &task, Split::Valid);
            inherited.push(inh_loss);
            scratch.push(scr_loss);
        }
        let rho = spearman(&inherited, &scratch);
        println!(
            "{:<12} {:<14} {:>10.3} {:>8}",
            task_name,
            DesignSpace::new(space).kind(),
            rho,
            n_configs
        );
        scores.push(rho);
    }
    let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
    println!("mean Spearman: {mean:.3} (paper reports an average of 0.75)");
}

/// Figure 10: estimated loss vs measured loss reliability.
pub fn fig10(scale: &Scale) {
    banner(
        "Figure 10",
        "estimator reliability: estimated vs measured loss",
    );
    let task = qml_task("MNIST-2", scale, 31);
    let device = Device::yorktown();
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, scale.blocks);
    // Estimator reliability hinges on a well-converged SuperCircuit, so
    // this experiment triples the sharing-training budget.
    let mut st = scale.super_train(5);
    st.steps *= 3;
    let (shared, _) = train_supercircuit(&sc, &task, &st);
    // The paper's Figure 10 estimator is the noisy simulator (not the
    // success-rate shortcut), so both sides use trajectory noise here.
    let estimator = Estimator::new(
        device.clone(),
        EstimatorKind::NoisySim(qns_noise::TrajectoryConfig {
            trajectories: scale.trajectories.min(8),
            seed: 7,
            readout: true,
        }),
        2,
    )
    .with_valid_cap(16);
    let measured_estimator =
        Estimator::new(device.clone(), EstimatorKind::NoisySim(scale.measure()), 2)
            .with_valid_cap(16);

    let n_points = if scale.full { 16 } else { 8 };
    let mut rng = StdRng::seed_from_u64(19);
    let mut estimated = Vec::new();
    let mut real = Vec::new();
    for k in 0..n_points {
        let cfg = SubConfig {
            n_blocks: rng.gen_range(1..=sc.num_blocks()),
            widths: (0..sc.num_blocks())
                .map(|_| (0..2).map(|_| rng.gen_range(1..=4)).collect())
                .collect(),
        };
        let circuit = build(&sc, &cfg, &task);
        let layout = Layout::trivial(4);
        // Estimated: inherited params + search estimator.
        let est = estimator.score(&circuit, &shared, &task, &layout);
        // "Real": trained from scratch, then noisy-measured loss.
        let (params, _) = train_task(&circuit, &task, &scale.train(100 + k as u64), None);
        let measured = measured_estimator.score(&circuit, &params, &task, &layout);
        estimated.push(est);
        real.push(measured);
        println!("  config {k}: estimated {est:.4} | measured {measured:.4}");
    }
    println!(
        "Spearman rank correlation: {:.3} (paper reports 0.76)",
        spearman(&estimated, &real)
    );
}

/// Figure 12: training-speed comparison — static vs dynamic mode vs a
/// per-sample (unbatched) loop, across batch sizes.
pub fn fig12(scale: &Scale) {
    banner(
        "Figure 12",
        "QuantumEngine training speed: static vs dynamic vs unbatched",
    );
    // The paper times a 10-qubit circuit with 100 RX and 100 CRY gates.
    let n_qubits = 10;
    let mut c = Circuit::new(n_qubits);
    let mut t = 0;
    for i in 0..100 {
        c.push(GateKind::RX, &[i % n_qubits], &[Param::Train(t)]);
        t += 1;
        c.push(
            GateKind::CRY,
            &[i % n_qubits, (i + 1) % n_qubits],
            &[Param::Train(t)],
        );
        t += 1;
    }
    let params: Vec<f64> = (0..t).map(|i| 0.01 * i as f64).collect();
    let batches = if scale.full {
        vec![1usize, 4, 16, 64, 256]
    } else {
        vec![1usize, 4, 16, 64]
    };
    println!(
        "{:>6} {:>14} {:>14} {:>16} {:>10}",
        "batch", "dynamic ms", "static ms", "unbatched ms", "speedup"
    );
    for &b in &batches {
        let inputs: Vec<Vec<f64>> = (0..b).map(|i| vec![0.1 * i as f64]).collect();
        let time_mode = |mode: ExecMode, parallel: bool| -> f64 {
            let start = Instant::now();
            if parallel {
                let _ = qns_sim::parallel_map(&inputs, |_| run(&c, &params, &[], mode));
            } else {
                for _ in &inputs {
                    let _ = run(&c, &params, &[], mode);
                }
            }
            start.elapsed().as_secs_f64() * 1000.0
        };
        let dynamic = time_mode(ExecMode::Dynamic, true);
        let static_ = time_mode(ExecMode::Static, true);
        let unbatched = time_mode(ExecMode::Dynamic, false);
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>16.2} {:>9.1}x",
            b,
            dynamic,
            static_,
            unbatched,
            unbatched / static_
        );
    }
    println!("(static-mode fusion and batch parallelism compound, as in the paper)");
}

/// Figure 15: scalability to larger machines with the success-rate
/// estimator.
pub fn fig15(scale: &Scale) {
    banner(
        "Figure 15",
        "QuantumNAS on larger machines (success-rate estimator)",
    );
    // Quick mode uses the 10-qubit MNIST-10 circuit on each big machine;
    // full mode additionally reports the 15-qubit variant.
    let task = qml_task("MNIST-10", scale, 41);
    let devices = [
        Device::melbourne(),
        Device::guadalupe(),
        Device::toronto(),
        Device::manhattan(),
    ];
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 10, 2);
    let mut st = scale.super_train(9);
    st.steps = st.steps.min(200);
    let (shared, _) = train_supercircuit(&sc, &task, &st);
    println!(
        "{:<12} {:>7} {:>16} {:>16}",
        "device", "qubits", "human acc", "QuantumNAS acc"
    );
    for device in devices {
        let estimator =
            Estimator::new(device.clone(), EstimatorKind::SuccessRate, 1).with_valid_cap(8);
        let mut evo = EvoConfig {
            iterations: if scale.full { 15 } else { 5 },
            population: if scale.full { 20 } else { 8 },
            parents: 3,
            mutations: 3,
            crossovers: 2,
            ..EvoConfig::default()
        };
        evo.seed = 5;
        let search = evolutionary_search(&sc, &shared, &task, &estimator, &evo);
        let nas_circuit = build(&sc, &search.best.config, &task);
        let mut tc = scale.train(1);
        tc.epochs = tc.epochs.max(40);
        let (nas_params, _) = train_task(&nas_circuit, &task, &tc, None);
        let budget = nas_circuit.referenced_train_indices().len().max(4);
        let human_cfg = quantumnas::human_design(&sc, budget);
        let human_circuit = build(&sc, &human_cfg, &task);
        let (human_params, _) = train_task(&human_circuit, &task, &tc, None);

        // Measured accuracy with a small trajectory budget (10-qubit
        // states are big); readout + gate noise still differentiate.
        let traj = qns_noise::TrajectoryConfig {
            trajectories: if scale.full { 8 } else { 4 },
            seed: 3,
            readout: true,
        };
        let meas = Estimator::new(device.clone(), EstimatorKind::Noiseless, 1);
        let n_test = if scale.full { 100 } else { 25 };
        let human_acc = meas.test_accuracy(
            &human_circuit,
            &human_params,
            &task,
            &Layout::trivial(10),
            n_test,
            traj,
        );
        let nas_acc = meas.test_accuracy(
            &nas_circuit,
            &nas_params,
            &task,
            &search.best.layout(),
            n_test,
            traj,
        );
        println!(
            "{:<12} {:>7} {:>16.3} {:>16.3}",
            device.name(),
            device.num_qubits(),
            human_acc,
            nas_acc
        );
    }
    let _ = transpile; // referenced for future use
}
