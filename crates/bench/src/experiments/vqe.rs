//! Figures 16 and 17: VQE expectation values.

use crate::{banner, build, Scale};
use qns_chem::{uccsd_ansatz, Molecule};
use qns_noise::Device;
use qns_transpile::Layout;
use quantumnas::{
    eval_task, human_design, iterative_prune, random_design, train_supercircuit, train_task,
    DesignSpace, Estimator, EstimatorKind, PruneConfig, SpaceKind, Split, SuperCircuit, Task,
    TrainConfig,
};

fn vqe_train(scale: &Scale, seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: if scale.full { 600 } else { 200 },
        lr: 0.05,
        batch_size: 1,
        warmup_steps: 0,
        seed,
    }
}

/// Measured energy of a trained ansatz on a device.
fn measured_energy(
    task: &Task,
    device: &Device,
    scale: &Scale,
    circuit: &qns_circuit::Circuit,
    params: &[f64],
    layout: &Layout,
) -> f64 {
    let hamiltonian = match task {
        Task::Vqe { hamiltonian, .. } => hamiltonian,
        _ => unreachable!("VQE task"),
    };
    Estimator::new(device.clone(), EstimatorKind::Noiseless, 2).vqe_energy_measured(
        circuit,
        params,
        hamiltonian,
        layout,
        scale.measure(),
    )
}

/// Figure 16: H2 VQE across design spaces vs UCCSD/human/random baselines.
pub fn fig16(scale: &Scale) {
    banner(
        "Figure 16",
        "H2 VQE measured energies per design space (exact optimum ~ -1.85)",
    );
    let mol = Molecule::h2();
    let task = Task::vqe(&mol);
    let device = Device::yorktown();
    let exact = mol.fci_energy();
    println!("exact ground energy: {exact:.4}");

    // UCCSD baseline (space-independent).
    let (uccsd, _) = uccsd_ansatz(2, 1);
    let (up, _) = train_task(&uccsd, &task, &vqe_train(scale, 0), None);
    let uccsd_ideal = eval_task(&uccsd, &up, &task, Split::Valid).0;
    let uccsd_measured = measured_energy(&task, &device, scale, &uccsd, &up, &Layout::trivial(2));
    println!(
        "{:<16} {:<14} ideal {:>8.4} | measured {:>8.4}",
        "UCCSD", "-", uccsd_ideal, uccsd_measured
    );

    let spaces = if scale.full {
        vec![
            SpaceKind::U3Cu3,
            SpaceKind::ZzRy,
            SpaceKind::Rxyz,
            SpaceKind::ZxXx,
            SpaceKind::RxyzU1Cu3,
        ]
    } else {
        vec![SpaceKind::U3Cu3, SpaceKind::Rxyz]
    };
    for space in spaces {
        let sc = SuperCircuit::new(DesignSpace::new(space), 2, scale.blocks);
        let (shared, _) = train_supercircuit(&sc, &task, &scale.super_train(1));
        // H2 is 2 qubits: the accurate trajectory estimator is affordable
        // even during search, and VQE rankings need it.
        let estimator = Estimator::new(
            device.clone(),
            EstimatorKind::NoisySim(qns_noise::TrajectoryConfig {
                trajectories: 8,
                seed: 2,
                readout: true,
            }),
            2,
        );
        let mut evo = scale.evo.clone();
        evo.seed = 3;
        let human_seed = quantumnas::Gene {
            config: human_design(&sc, sc.num_params() / 2),
            layout: (0..2).collect(),
        };
        let search = quantumnas::evolutionary_search_seeded(
            &sc,
            &shared,
            &task,
            &estimator,
            &evo,
            &[human_seed],
        );
        let circuit = build(&sc, &search.best.config, &task);
        let (params, _) = train_task(&circuit, &task, &vqe_train(scale, 1), None);
        let nas_measured = measured_energy(
            &task,
            &device,
            scale,
            &circuit,
            &params,
            &search.best.layout(),
        );
        let budget = circuit.referenced_train_indices().len().max(2);

        // Human and random baselines at matched budget.
        let hc = build(&sc, &human_design(&sc, budget), &task);
        let (hp, _) = train_task(&hc, &task, &vqe_train(scale, 2), None);
        let human_measured = measured_energy(&task, &device, scale, &hc, &hp, &Layout::trivial(2));
        let rc = build(&sc, &random_design(&sc, budget, 5), &task);
        let (rp, _) = train_task(&rc, &task, &vqe_train(scale, 3), None);
        let random_measured = measured_energy(&task, &device, scale, &rc, &rp, &Layout::trivial(2));

        // Pruned QuantumNAS (the paper prunes 50% of VQE parameters).
        let pruned = iterative_prune(
            &circuit,
            &params,
            &task,
            &PruneConfig {
                final_ratio: 0.5,
                steps: 2,
                finetune_epochs: if scale.full { 200 } else { 60 },
                lr: 0.02,
                ..Default::default()
            },
        );
        let pruned_measured = measured_energy(
            &task,
            &device,
            scale,
            &pruned.circuit,
            &pruned.params,
            &search.best.layout(),
        );
        println!(
            "{:<16} human {:>8.4} | random {:>8.4} | QuantumNAS {:>8.4} | +prune {:>8.4}",
            DesignSpace::new(space).kind(),
            human_measured,
            random_measured,
            nas_measured,
            pruned_measured
        );
    }
    println!("(expect: QuantumNAS consistently lowest; UCCSD far from optimal under noise)");
}

/// Figure 17: VQE on the larger molecules vs UCCSD.
pub fn fig17(scale: &Scale) {
    banner(
        "Figure 17",
        "VQE on LiH / H2O / CH4 (and BeH2 with --full) vs UCCSD",
    );
    let mut mols = vec![Molecule::lih(), Molecule::h2o(), Molecule::ch4_6q()];
    if scale.full {
        mols.push(Molecule::ch4_10q());
        mols.push(Molecule::beh2());
    }
    println!(
        "{:<10} {:>7} {:>12} {:>14} {:>14} {:>14}",
        "molecule", "qubits", "UCCSD ideal", "UCCSD measured", "QNAS ideal", "QNAS measured"
    );
    for mol in mols {
        let n = mol.num_qubits();
        let task = Task::vqe(&mol);
        // The paper runs these on 7-, 15-, and 27-qubit machines.
        let device = if n <= 7 {
            Device::jakarta()
        } else if n <= 15 {
            Device::melbourne()
        } else {
            Device::toronto()
        };
        // UCCSD (capped excitations keep the 10+ qubit ansatz tractable).
        let (uccsd, _) = uccsd_ansatz(n, mol.num_electrons());
        let mut uc = vqe_train(scale, 0);
        if n > 6 {
            uc.epochs = uc.epochs.min(80);
        }
        let (up, _) = train_task(&uccsd, &task, &uc, None);
        let uccsd_ideal = eval_task(&uccsd, &up, &task, Split::Valid).0;
        let uccsd_measured =
            measured_energy(&task, &device, scale, &uccsd, &up, &Layout::trivial(n));

        // QuantumNAS.
        let blocks = if n <= 6 { scale.blocks } else { 1 };
        let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), n, blocks);
        let mut st = scale.super_train(4);
        if n > 6 {
            st.steps = st.steps.min(60);
        }
        let (shared, _) = train_supercircuit(&sc, &task, &st);
        let estimator = Estimator::new(device.clone(), EstimatorKind::SuccessRate, 2);
        let mut evo = scale.evo.clone();
        evo.seed = 9;
        if n > 6 {
            evo.iterations = evo.iterations.min(4);
            evo.population = evo.population.min(8);
        }
        let human_seed = quantumnas::Gene {
            config: human_design(&sc, sc.num_params() / 2),
            layout: (0..n).collect(),
        };
        let search = quantumnas::evolutionary_search_seeded(
            &sc,
            &shared,
            &task,
            &estimator,
            &evo,
            &[human_seed],
        );
        let circuit = build(&sc, &search.best.config, &task);
        let mut tc = vqe_train(scale, 5);
        if n > 6 {
            tc.epochs = tc.epochs.min(120);
        }
        let (params, _) = train_task(&circuit, &task, &tc, None);
        let nas_ideal = eval_task(&circuit, &params, &task, Split::Valid).0;
        let nas_measured = measured_energy(
            &task,
            &device,
            scale,
            &circuit,
            &params,
            &search.best.layout(),
        );

        println!(
            "{:<10} {:>7} {:>12.3} {:>14.3} {:>14.3} {:>14.3}",
            mol.name(),
            n,
            uccsd_ideal,
            uccsd_measured,
            nas_ideal,
            nas_measured
        );
    }
    println!("(expect: QuantumNAS at or below UCCSD, especially in the measured column)");
}
