//! Shared infrastructure for the QuantumNAS benchmark harness.
//!
//! The `repro` binary regenerates every table and figure of the paper; the
//! Criterion benches time the underlying engines. Both build on the
//! helpers here: a [`Scale`] that maps each experiment onto a laptop
//! budget (or, with `--full`, onto paper-scale settings), task/space
//! constructors, and a uniform runner for the paper's baseline methods.

use qns_circuit::Circuit;
use qns_noise::{Device, TrajectoryConfig};
use qns_transpile::{transpile, Layout};
use quantumnas::{
    evolutionary_search, human_design, iterative_prune, random_design, train_supercircuit,
    train_task, DesignSpace, Estimator, EstimatorKind, EvoConfig, Gene, PruneConfig, SpaceKind,
    SubConfig, SuperCircuit, SuperTrainConfig, Task, TrainConfig,
};

/// Experiment scale: `quick` (default) finishes each experiment in
/// seconds-to-minutes; `full` approaches the paper's settings.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Paper-scale mode.
    pub full: bool,
    /// Samples per class when generating datasets.
    pub n_per_class: usize,
    /// SuperCircuit training steps.
    pub super_steps: usize,
    /// From-scratch training epochs.
    pub epochs: usize,
    /// Evolution settings.
    pub evo: EvoConfig,
    /// Test samples for measured accuracy.
    pub n_test: usize,
    /// Trajectories for measured evaluation.
    pub trajectories: usize,
    /// SuperCircuit blocks for 4-qubit tasks.
    pub blocks: usize,
}

impl Scale {
    /// Parses `--full` from the argument list.
    pub fn from_args(args: &[String]) -> Scale {
        let full = args.iter().any(|a| a == "--full");
        if full {
            Scale {
                full,
                n_per_class: 400,
                super_steps: 1000,
                epochs: 60,
                evo: EvoConfig {
                    iterations: 40,
                    population: 40,
                    parents: 10,
                    mutations: 20,
                    crossovers: 10,
                    ..EvoConfig::default()
                },
                n_test: 300,
                trajectories: 32,
                blocks: 8,
            }
        } else {
            Scale {
                full,
                n_per_class: 120,
                super_steps: 250,
                epochs: 25,
                evo: EvoConfig {
                    iterations: 12,
                    population: 16,
                    parents: 5,
                    mutations: 7,
                    crossovers: 4,
                    ..EvoConfig::default()
                },
                n_test: 100,
                trajectories: 12,
                blocks: 3,
            }
        }
    }

    /// Trajectory settings for measured evaluation.
    pub fn measure(&self) -> TrajectoryConfig {
        TrajectoryConfig {
            trajectories: self.trajectories,
            seed: 0x5EED,
            readout: true,
        }
    }

    /// From-scratch training settings.
    pub fn train(&self, seed: u64) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: 16,
            lr: 0.02,
            warmup_steps: 0,
            seed,
        }
    }

    /// SuperCircuit training settings.
    pub fn super_train(&self, seed: u64) -> SuperTrainConfig {
        SuperTrainConfig {
            steps: self.super_steps,
            batch_size: 12,
            warmup_steps: self.super_steps / 10,
            seed,
            ..Default::default()
        }
    }
}

/// The five QML benchmark tasks of the paper (Figure 13's x-axis).
pub fn qml_task(name: &str, scale: &Scale, seed: u64) -> Task {
    match name {
        "MNIST-4" => Task::qml_digits(&[0, 1, 2, 3], scale.n_per_class, 4, seed),
        "Fashion-4" => Task::qml_fashion(&[0, 1, 2, 3], scale.n_per_class, 4, seed),
        "Vowel-4" => Task::qml_vowel(seed),
        "MNIST-2" => Task::qml_digits(&[3, 6], scale.n_per_class, 4, seed),
        "Fashion-2" => Task::qml_fashion(&[3, 6], scale.n_per_class, 4, seed),
        "MNIST-10" => Task::qml_digits(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], scale.n_per_class, 6, seed),
        other => panic!("unknown task {other}"),
    }
}

/// The paper's comparison methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Noise-unaware search (noise-free estimator).
    NoiseUnaware,
    /// Best of three random designs, trivial mapping.
    Random,
    /// Human design, trivial mapping.
    Human,
    /// Human design + noise-adaptive mapping (Murali et al. baseline).
    HumanNoiseAdaptive,
    /// Human design + SABRE-routed trivial mapping.
    HumanSabre,
    /// Human design at half the parameter budget + SABRE mapping.
    HumanHalfSabre,
    /// QuantumNAS co-search.
    QuantumNas,
    /// QuantumNAS plus iterative pruning.
    QuantumNasPruned,
}

impl Method {
    /// Display label matching the paper's legend.
    pub fn label(&self) -> &'static str {
        match self {
            Method::NoiseUnaware => "noise-unaware search",
            Method::Random => "random (best of 3)",
            Method::Human => "human",
            Method::HumanNoiseAdaptive => "human + NA mapping",
            Method::HumanSabre => "human + sabre",
            Method::HumanHalfSabre => "human 1/2 + sabre",
            Method::QuantumNas => "QuantumNAS",
            Method::QuantumNasPruned => "QuantumNAS + prune",
        }
    }

    /// The full Figure 13 lineup.
    pub fn all() -> &'static [Method] {
        &[
            Method::NoiseUnaware,
            Method::Random,
            Method::Human,
            Method::HumanNoiseAdaptive,
            Method::HumanSabre,
            Method::HumanHalfSabre,
            Method::QuantumNas,
            Method::QuantumNasPruned,
        ]
    }
}

/// The result of evaluating one method on one (task, space, device).
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// Measured (noisy) accuracy — or measured energy for VQE.
    pub measured: f64,
    /// Noise-free accuracy/energy.
    pub ideal: f64,
    /// Compiled depth.
    pub depth: usize,
    /// Compiled `(total, 1q, cnot)` gate counts.
    pub gates: (usize, usize, usize),
    /// Trainable parameters.
    pub n_params: usize,
    /// The circuit (logical) that was deployed.
    pub circuit: Circuit,
    /// Trained parameters.
    pub params: Vec<f64>,
    /// The mapping used.
    pub layout: Layout,
}

/// Artifacts shared across methods on a fixed (task, space, device): the
/// trained SuperCircuit and the QuantumNAS search output.
pub struct Prepared {
    /// The SuperCircuit.
    pub sc: SuperCircuit,
    /// Its trained shared parameters.
    pub shared: Vec<f64>,
    /// The co-search winner.
    pub gene: Gene,
    /// Budget used for parameter-matched baselines.
    pub budget: usize,
}

/// Trains the SuperCircuit and runs the noise-adaptive co-search once; the
/// result seeds every method comparison.
pub fn prepare(
    task: &Task,
    space: SpaceKind,
    device: &Device,
    scale: &Scale,
    seed: u64,
) -> Prepared {
    let sc = SuperCircuit::new(DesignSpace::new(space), task.num_qubits(), scale.blocks);
    let (shared, _) = train_supercircuit(&sc, task, &scale.super_train(seed));
    let estimator = noisy_estimator(device, scale);
    let mut evo = scale.evo.clone();
    evo.seed = seed ^ 0xE5;
    // Seed the population with a mid-size human design so the search
    // explores around a known-capable architecture.
    let human_seed = Gene {
        config: human_design(&sc, sc.num_params() / 2),
        layout: (0..task.num_qubits()).collect(),
    };
    let search =
        quantumnas::evolutionary_search_seeded(&sc, &shared, task, &estimator, &evo, &[human_seed]);
    let circuit = build(&sc, &search.best.config, task);
    let budget = circuit.referenced_train_indices().len().max(4);
    Prepared {
        sc,
        shared,
        gene: search.best,
        budget,
    }
}

/// The default search estimator: the paper's first method — trajectory
/// simulation with the device noise model. Affordable for the 4-qubit
/// benchmark tasks even in quick mode; the large-machine experiments use
/// [`EstimatorKind::SuccessRate`] explicitly, as the paper does.
pub fn noisy_estimator(device: &Device, scale: &Scale) -> Estimator {
    let kind = EstimatorKind::NoisySim(TrajectoryConfig {
        trajectories: if scale.full { 8 } else { 6 },
        seed: 7,
        readout: true,
    });
    Estimator::new(device.clone(), kind, 2).with_valid_cap(if scale.full { 48 } else { 10 })
}

/// Builds a SubCircuit for the task (encoder prepended for QML).
pub fn build(sc: &SuperCircuit, config: &SubConfig, task: &Task) -> Circuit {
    match task {
        Task::Qml { encoder, .. } => sc.build(config, Some(encoder)),
        Task::Vqe { .. } => sc.build(config, None),
    }
}

/// Trains, compiles, and measures one method. `prepared` carries the
/// shared SuperCircuit/search artifacts so baselines are parameter-matched
/// to the searched circuit.
pub fn run_method(
    method: Method,
    task: &Task,
    device: &Device,
    scale: &Scale,
    prepared: &Prepared,
    seed: u64,
) -> MethodResult {
    let sc = &prepared.sc;
    let n_logical = task.num_qubits();
    let trivial = Layout::trivial(n_logical);
    let (config, layout): (SubConfig, Layout) = match method {
        Method::Human | Method::HumanSabre => (human_design(sc, prepared.budget), trivial.clone()),
        Method::HumanNoiseAdaptive => (
            human_design(sc, prepared.budget),
            Layout::noise_adaptive(n_logical, device),
        ),
        Method::HumanHalfSabre => (
            human_design(sc, (prepared.budget / 2).max(2)),
            trivial.clone(),
        ),
        Method::Random => {
            // Best of three by noise-free validation loss, as in the paper.
            let estimator =
                Estimator::new(device.clone(), EstimatorKind::Noiseless, 2).with_valid_cap(16);
            let mut best: Option<(SubConfig, f64)> = None;
            for s in 0..3 {
                let cfg = random_design(sc, prepared.budget, seed ^ s);
                let circuit = build(sc, &cfg, task);
                let score = estimator.score(&circuit, &prepared.shared, task, &trivial);
                if best.as_ref().map(|(_, b)| score < *b).unwrap_or(true) {
                    best = Some((cfg, score));
                }
            }
            (best.expect("three candidates").0, trivial.clone())
        }
        Method::NoiseUnaware => {
            let estimator =
                Estimator::new(device.clone(), EstimatorKind::Noiseless, 2).with_valid_cap(16);
            let mut evo = scale.evo.clone();
            evo.seed = seed ^ 0x17;
            let search = evolutionary_search(sc, &prepared.shared, task, &estimator, &evo);
            (search.best.config.clone(), search.best.layout())
        }
        Method::QuantumNas | Method::QuantumNasPruned => {
            (prepared.gene.config.clone(), prepared.gene.layout())
        }
    };

    let circuit = build(sc, &config, task);
    let (mut params, _) = train_task(&circuit, task, &scale.train(seed), None);
    let mut final_circuit = circuit.clone();
    if method == Method::QuantumNasPruned {
        let prune_cfg = PruneConfig {
            final_ratio: 0.3,
            steps: if scale.full { 4 } else { 2 },
            finetune_epochs: (scale.epochs / 5).max(2),
            ..Default::default()
        };
        let pruned = iterative_prune(&circuit, &params, task, &prune_cfg);
        final_circuit = pruned.circuit;
        params = pruned.params;
    }

    measure(task, device, scale, &final_circuit, &params, &layout)
}

/// Compiles and evaluates a finished circuit: measured + ideal metric and
/// compiled statistics.
pub fn measure(
    task: &Task,
    device: &Device,
    scale: &Scale,
    circuit: &Circuit,
    params: &[f64],
    layout: &Layout,
) -> MethodResult {
    let estimator = Estimator::new(device.clone(), EstimatorKind::Noiseless, 2);
    let transpiled = transpile(circuit, device, layout, 2);
    let (measured, ideal) = match task {
        Task::Qml { .. } => {
            let measured = estimator.test_accuracy(
                circuit,
                params,
                task,
                layout,
                scale.n_test,
                scale.measure(),
            );
            let ideal = estimator.ideal_accuracy(circuit, params, task, scale.n_test);
            (measured, ideal)
        }
        Task::Vqe { hamiltonian, .. } => {
            let measured = estimator.vqe_energy_measured(
                circuit,
                params,
                hamiltonian,
                layout,
                scale.measure(),
            );
            let ideal = quantumnas::eval_task(circuit, params, task, quantumnas::Split::Valid).0;
            (measured, ideal)
        }
    };
    MethodResult {
        measured,
        ideal,
        depth: transpiled.depth(),
        gates: transpiled.gate_counts(),
        n_params: circuit.referenced_train_indices().len(),
        circuit: circuit.clone(),
        params: params.to_vec(),
        layout: layout.clone(),
    }
}

/// Prints a header banner for one experiment.
pub fn banner(id: &str, what: &str) {
    println!("\n==================================================================");
    println!("{id}: {what}");
    println!("==================================================================");
}

pub mod experiments;
