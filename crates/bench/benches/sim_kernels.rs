//! Kernel-level timings for the fast simulation path: structure-
//! specialized apply kernels vs. the naive reference kernels, fusion
//! levels 0–3, and plan replay vs. recompile across shifted parameters.
//!
//! The `sim_bench` binary records the same measurements as
//! `BENCH_sim.json`; this harness keeps them runnable under
//! `cargo bench -p qns-bench --bench sim_kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qns_circuit::{Circuit, GateKind, Param};
use qns_sim::{
    run_into_with, shifted_expectations, DiagObservable, ExecMode, SimBackend, SimPlan, StateVec,
};

/// Hardware-efficient layers: RZ·RX per qubit plus a CX + CRY ring.
fn deep_circuit(n: usize, layers: usize) -> (Circuit, Vec<f64>) {
    let mut c = Circuit::new(n);
    let mut t = 0;
    for _ in 0..layers {
        for q in 0..n {
            c.push(GateKind::RZ, &[q], &[Param::Train(t)]);
            c.push(GateKind::RX, &[q], &[Param::Train(t + 1)]);
            t += 2;
        }
        for q in 0..n {
            c.push(GateKind::CX, &[q, (q + 1) % n], &[]);
            c.push(GateKind::CRY, &[q, (q + 1) % n], &[Param::Train(t)]);
            t += 1;
        }
    }
    let params = (0..t).map(|i| 0.7 + 0.05 * i as f64).collect();
    (c, params)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernels");
    group.sample_size(10);
    for &n in &[8usize, 12] {
        let (circuit, params) = deep_circuit(n, 6);
        let mut state = StateVec::zero_state(n);
        for backend in [SimBackend::Fast, SimBackend::Reference] {
            let label = format!("{backend:?}").to_lowercase();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    run_into_with(
                        &circuit,
                        &params,
                        &[],
                        ExecMode::Dynamic,
                        backend,
                        &mut state,
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_fusion_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_levels");
    group.sample_size(10);
    let n = 10;
    let (circuit, params) = deep_circuit(n, 6);
    let mut state = StateVec::zero_state(n);
    for level in 0..=3u8 {
        let plan = SimPlan::compile(&circuit, level);
        group.bench_with_input(BenchmarkId::new("exec", level), &level, |b, _| {
            b.iter(|| plan.execute_into(&circuit, &params, &[], &mut state))
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_replay");
    group.sample_size(10);
    let n = 10;
    let (circuit, params) = deep_circuit(n, 6);
    let obs = DiagObservable::new(vec![1.0; n]);
    for &shifts in &[8usize, 32] {
        let pairs: Vec<(usize, f64)> = (0..shifts)
            .map(|i| (i % params.len(), std::f64::consts::FRAC_PI_2))
            .collect();
        group.bench_with_input(BenchmarkId::new("shifted", shifts), &shifts, |b, _| {
            b.iter(|| shifted_expectations(&circuit, &params, &[], &obs, &pairs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_fusion_levels, bench_replay);
criterion_main!(benches);
