//! Batched multi-state engine vs per-sample `parallel_map`: one QML
//! minibatch (forward replay + adjoint gradient) across qubit counts
//! {6, 10} and batch sizes {8, 32, 128}.
//!
//! The per-sample arm is the pre-batching training shape — one
//! `StateVec` replay plus one `adjoint_gradient` per sample under
//! `parallel_map`; the batched arm sweeps all lanes per base index with
//! `replay_batch_into` and `adjoint_gradient_batch`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qns_circuit::{Circuit, GateKind, Param};
use qns_sim::{
    adjoint_gradient, adjoint_gradient_batch, parallel_map, DiagObservable, SimPlan, StateBatch,
    StateVec, DEFAULT_BATCH_LANES, DEFAULT_FUSION_LEVEL,
};

/// Input-encoded QML candidate: RY(Input) encoder plus U3 + CU3-ring
/// trainable layers.
fn qml_circuit(n: usize, layers: usize) -> (Circuit, Vec<f64>) {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(GateKind::RY, &[q], &[Param::Input(q)]);
    }
    let mut t = 0;
    for _ in 0..layers {
        for q in 0..n {
            c.push(
                GateKind::U3,
                &[q],
                &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
            );
            t += 3;
        }
        for q in 0..n {
            c.push(
                GateKind::CU3,
                &[q, (q + 1) % n],
                &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
            );
            t += 3;
        }
    }
    let params = (0..t).map(|i| 0.1 * (i as f64 % 7.0) - 0.3).collect();
    (c, params)
}

fn samples(n_samples: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n_samples)
        .map(|s| {
            (0..dim)
                .map(|q| 0.3 * ((s * dim + q) as f64 % 11.0) - 1.2)
                .collect()
        })
        .collect()
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_forward");
    group.sample_size(10);
    for &n in &[6usize, 10] {
        let (circuit, params) = qml_circuit(n, 2);
        let plan = SimPlan::compile(&circuit, DEFAULT_FUSION_LEVEL);
        let features = samples(128, n);
        let base = plan.materialize(&circuit, &params, &features[0]);
        for &bs in &[8usize, 32, 128] {
            let batch_features = &features[..bs];
            let label = format!("q{n}/b{bs}");
            group.bench_with_input(
                BenchmarkId::new("per_sample", &label),
                batch_features,
                |b, feats| {
                    b.iter(|| {
                        parallel_map(feats, |input| {
                            let mut state = StateVec::zero_state(n);
                            plan.replay_input_into(&circuit, &base, &params, input, &mut state);
                            state.expect_z_all()
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("batched", &label),
                batch_features,
                |b, feats| {
                    b.iter(|| {
                        let chunks: Vec<&[Vec<f64>]> = feats.chunks(DEFAULT_BATCH_LANES).collect();
                        parallel_map(&chunks, |chunk| {
                            let inputs: Vec<&[f64]> = chunk.iter().map(|s| s.as_slice()).collect();
                            let mut batch = StateBatch::zero_state(n, inputs.len());
                            plan.replay_batch_into(&circuit, &base, &params, &inputs, &mut batch);
                            batch.expect_z_all_lanes()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_gradient");
    group.sample_size(10);
    for &n in &[6usize, 10] {
        let (circuit, params) = qml_circuit(n, 2);
        let features = samples(128, n);
        let weights: Vec<f64> = (0..n).map(|q| 0.4 * (q as f64) - 0.7).collect();
        for &bs in &[8usize, 32, 128] {
            let batch_features = &features[..bs];
            let label = format!("q{n}/b{bs}");
            group.bench_with_input(
                BenchmarkId::new("per_sample", &label),
                batch_features,
                |b, feats| {
                    b.iter(|| {
                        let obs = DiagObservable::new(weights.clone());
                        parallel_map(feats, |input| {
                            adjoint_gradient(&circuit, &params, input, &obs)
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("batched", &label),
                batch_features,
                |b, feats| {
                    b.iter(|| {
                        let chunks: Vec<&[Vec<f64>]> = feats.chunks(DEFAULT_BATCH_LANES).collect();
                        parallel_map(&chunks, |chunk| {
                            let inputs: Vec<&[f64]> = chunk.iter().map(|s| s.as_slice()).collect();
                            adjoint_gradient_batch(&circuit, &params, &inputs, |_, ez| {
                                (ez.iter().sum::<f64>(), weights.clone())
                            })
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_gradient);
criterion_main!(benches);
