//! Search-stage costs: estimator queries and evolution iterations — the
//! measured side of Table I's cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qns_noise::{Device, TrajectoryConfig};
use qns_transpile::Layout;
use quantumnas::{
    evolutionary_search, train_supercircuit, DesignSpace, Estimator, EstimatorKind, EvoConfig,
    SpaceKind, SuperCircuit, SuperTrainConfig, Task,
};

fn setup() -> (SuperCircuit, Vec<f64>, Task) {
    let task = Task::qml_digits(&[3, 6], 40, 4, 5);
    let sc = SuperCircuit::new(DesignSpace::new(SpaceKind::U3Cu3), 4, 2);
    let (shared, _) = train_supercircuit(
        &sc,
        &task,
        &SuperTrainConfig {
            steps: 30,
            batch_size: 8,
            warmup_steps: 3,
            ..Default::default()
        },
    );
    (sc, shared, task)
}

fn bench_search(c: &mut Criterion) {
    let (sc, shared, task) = setup();
    let device = Device::yorktown();
    let circuit = match &task {
        Task::Qml { encoder, .. } => sc.build(&sc.max_config(), Some(encoder)),
        _ => unreachable!(),
    };
    let layout = Layout::trivial(4);

    let mut group = c.benchmark_group("search");
    group.sample_size(10);

    // One estimator query per backend kind (the inner loop of the search).
    for (name, kind) in [
        ("noiseless", EstimatorKind::Noiseless),
        ("success_rate", EstimatorKind::SuccessRate),
        (
            "noisy_sim",
            EstimatorKind::NoisySim(TrajectoryConfig {
                trajectories: 8,
                seed: 1,
                readout: true,
            }),
        ),
    ] {
        let est = Estimator::new(device.clone(), kind, 2).with_valid_cap(8);
        group.bench_with_input(BenchmarkId::new("estimator_query", name), &est, |b, est| {
            b.iter(|| est.score(&circuit, &shared, &task, &layout))
        });
    }

    // A full (small) evolutionary search.
    let est = Estimator::new(device.clone(), EstimatorKind::SuccessRate, 2).with_valid_cap(8);
    group.bench_function("evolution_4x8", |b| {
        b.iter(|| {
            let cfg = EvoConfig {
                iterations: 4,
                population: 8,
                parents: 3,
                mutations: 3,
                crossovers: 2,
                ..EvoConfig::fast(1)
            };
            evolutionary_search(&sc, &shared, &task, &est, &cfg)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
