//! Figure 12's timing side: static vs dynamic execution across batch
//! sizes on the paper's 10-qubit, 200-gate benchmark circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qns_circuit::{Circuit, GateKind, Param};
use qns_sim::{parallel_map, run, ExecMode};

/// The paper's Figure 12 circuit: 10 qubits, 100 RX + 100 CRY gates.
fn paper_circuit() -> (Circuit, Vec<f64>) {
    let n = 10;
    let mut c = Circuit::new(n);
    let mut t = 0;
    for i in 0..100 {
        c.push(GateKind::RX, &[i % n], &[Param::Train(t)]);
        t += 1;
        c.push(GateKind::CRY, &[i % n, (i + 1) % n], &[Param::Train(t)]);
        t += 1;
    }
    let params = (0..t).map(|i| 0.01 * i as f64).collect();
    (c, params)
}

fn bench_modes(c: &mut Criterion) {
    let (circuit, params) = paper_circuit();
    let mut group = c.benchmark_group("engine_speed");
    group.sample_size(10);
    for &batch in &[1usize, 8, 32] {
        let inputs: Vec<Vec<f64>> = (0..batch).map(|i| vec![0.1 * i as f64]).collect();
        group.bench_with_input(BenchmarkId::new("dynamic", batch), &batch, |b, _| {
            b.iter(|| parallel_map(&inputs, |_| run(&circuit, &params, &[], ExecMode::Dynamic)))
        });
        group.bench_with_input(BenchmarkId::new("static", batch), &batch, |b, _| {
            b.iter(|| parallel_map(&inputs, |_| run(&circuit, &params, &[], ExecMode::Static)))
        });
        group.bench_with_input(BenchmarkId::new("unbatched", batch), &batch, |b, _| {
            b.iter(|| {
                for _ in &inputs {
                    let _ = run(&circuit, &params, &[], ExecMode::Dynamic);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
