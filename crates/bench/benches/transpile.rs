//! Transpiler pass throughput: routing, basis lowering, optimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qns_circuit::{Circuit, GateKind, Param};
use qns_noise::Device;
use qns_transpile::{optimize, route, to_ibm_basis, transpile, Layout};

fn u3cu3_circuit(n_qubits: usize, blocks: usize) -> Circuit {
    let mut c = Circuit::new(n_qubits);
    let mut t = 0;
    for _ in 0..blocks {
        for q in 0..n_qubits {
            c.push(
                GateKind::U3,
                &[q],
                &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
            );
            t += 3;
        }
        for q in 0..n_qubits {
            c.push(
                GateKind::CU3,
                &[q, (q + 1) % n_qubits],
                &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
            );
            t += 3;
        }
    }
    c
}

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile");
    let device = Device::guadalupe();
    for &(n, blocks) in &[(4usize, 4usize), (8, 4), (12, 2)] {
        let circuit = u3cu3_circuit(n, blocks);
        let layout = Layout::from_vec((0..n).collect());
        group.bench_with_input(
            BenchmarkId::new("route", format!("{n}q_{blocks}b")),
            &circuit,
            |b, circ| b.iter(|| route(circ, &device, &layout)),
        );
        let routed = route(&circuit, &device, &layout);
        group.bench_with_input(
            BenchmarkId::new("basis", format!("{n}q_{blocks}b")),
            &routed.circuit,
            |b, circ| b.iter(|| to_ibm_basis(circ)),
        );
        let lowered = to_ibm_basis(&routed.circuit);
        group.bench_with_input(
            BenchmarkId::new("optimize_l2", format!("{n}q_{blocks}b")),
            &lowered,
            |b, circ| b.iter(|| optimize(circ, 2)),
        );
        group.bench_with_input(
            BenchmarkId::new("full_pipeline", format!("{n}q_{blocks}b")),
            &circuit,
            |b, circ| b.iter(|| transpile(circ, &device, &layout, 2)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
