//! State-vector throughput vs qubit count (supports the Figure 15
//! scalability discussion: the cost wall that motivates the success-rate
//! estimator on large machines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qns_circuit::{Circuit, GateKind, Param};
use qns_sim::{run, ExecMode};

fn layered_circuit(n_qubits: usize, blocks: usize) -> (Circuit, Vec<f64>) {
    let mut c = Circuit::new(n_qubits);
    let mut t = 0;
    for _ in 0..blocks {
        for q in 0..n_qubits {
            c.push(
                GateKind::U3,
                &[q],
                &[Param::Train(t), Param::Train(t + 1), Param::Train(t + 2)],
            );
            t += 3;
        }
        for q in 0..n_qubits {
            c.push(GateKind::CX, &[q, (q + 1) % n_qubits], &[]);
        }
    }
    let params = (0..t).map(|i| 0.01 * i as f64).collect();
    (c, params)
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scaling");
    group.sample_size(10);
    for &n in &[4usize, 8, 12, 16] {
        let (circuit, params) = layered_circuit(n, 2);
        group.bench_with_input(BenchmarkId::new("qubits", n), &n, |b, _| {
            b.iter(|| run(&circuit, &params, &[], ExecMode::Static))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
