//! Gradient-engine comparison: adjoint vs parameter-shift vs numeric.
//!
//! Adjoint costs O(1) circuit sweeps regardless of parameter count;
//! parameter-shift costs 2 evaluations per parameter — the design-choice
//! ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qns_circuit::{Circuit, GateKind, Param};
use qns_sim::{adjoint_gradient, numeric_gradient, parameter_shift_gradient, DiagObservable};

fn rotation_circuit(n_qubits: usize, layers: usize) -> (Circuit, Vec<f64>) {
    let mut c = Circuit::new(n_qubits);
    let mut t = 0;
    for _ in 0..layers {
        for q in 0..n_qubits {
            c.push(GateKind::RY, &[q], &[Param::Train(t)]);
            t += 1;
            c.push(GateKind::RZ, &[q], &[Param::Train(t)]);
            t += 1;
        }
        for q in 0..n_qubits {
            c.push(GateKind::CX, &[q, (q + 1) % n_qubits], &[]);
        }
    }
    let params = (0..t).map(|i| 0.1 + 0.01 * i as f64).collect();
    (c, params)
}

fn bench_gradients(c: &mut Criterion) {
    let mut group = c.benchmark_group("grad");
    group.sample_size(10);
    for &layers in &[2usize, 4, 8] {
        let (circuit, params) = rotation_circuit(6, layers);
        let obs = DiagObservable::new(vec![1.0; 6]);
        let label = format!("{}params", params.len());
        group.bench_with_input(BenchmarkId::new("adjoint", &label), &circuit, |b, circ| {
            b.iter(|| adjoint_gradient(circ, &params, &[], &obs))
        });
        group.bench_with_input(
            BenchmarkId::new("parameter_shift", &label),
            &circuit,
            |b, circ| b.iter(|| parameter_shift_gradient(circ, &params, &[], &obs)),
        );
        group.bench_with_input(BenchmarkId::new("numeric", &label), &circuit, |b, circ| {
            b.iter(|| numeric_gradient(circ, &params, &[], &obs, 1e-5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gradients);
criterion_main!(benches);
