//! Offline drop-in replacement for the subset of the `criterion` 0.5 API
//! this workspace uses.
//!
//! The build environment cannot reach crates.io. This shim keeps the
//! `benches/` targets compiling and running: it times each benchmark with
//! `std::time::Instant` over a small fixed sample and prints mean/min
//! wall-clock per iteration. It does no statistical analysis — it exists
//! so `cargo bench` stays a usable smoke-level harness offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }
}

/// A named benchmark id with an optional parameter, e.g. `qubits/8`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Times `f(input)` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let (mean, min) = bencher.stats();
        println!(
            "  {:<40} mean {:>12?}  min {:>12?}  ({} samples)",
            id.label,
            mean,
            min,
            bencher.samples.len()
        );
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Runs and times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Calls `f` repeatedly, recording wall-clock per call (after one
    /// untimed warmup call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn stats(&self) -> (Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        (mean, min)
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` calling each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }
}
