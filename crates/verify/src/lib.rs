//! Rule-based circuit/IR verification and transpiler pass contracts.
//!
//! QuantumNAS runs the transpiler *inside* the search loop: the searched
//! layout, SWAP routing, and basis lowering all execute per candidate, so a
//! silent miscompile corrupts every search result instead of one circuit.
//! This crate is the guard rail:
//!
//! - [`verify_circuit`], [`verify_coupling`], [`verify_basis`],
//!   [`verify_measurement_map`] — total, panic-free rule checks over the
//!   circuit IR, producing [`Diagnostic`]s with stable rule codes (`QV001`…)
//!   suitable for logs, CI baselines, and JSON output,
//! - [`PassContract`] — per-stage transpile invariants (layout validity,
//!   routing legality via SWAP replay, basis conformance, parameter
//!   preservation, measurement-map validity) plus an optional
//!   unitary-equivalence spot check for small circuits (`QC1xx` codes),
//! - [`VerifyLevel`] — how much of this a transpile run performs; `Off`
//!   costs nothing,
//! - [`PANIC_MARKER`] — prefix for verification failures that must cross a
//!   panic boundary (the runtime's panic-isolating engine), so callers can
//!   count contract violations separately from crashes.
//!
//! # Examples
//!
//! ```
//! use qns_circuit::{Circuit, GateKind};
//! use qns_verify::{verify_coupling, Rule};
//!
//! let dev = qns_noise::Device::santiago(); // line 0-1-2-3-4
//! let mut c = Circuit::new(5);
//! c.push(GateKind::CX, &[0, 4], &[]); // not coupled
//! let report = verify_coupling(&c, &dev, None);
//! assert_eq!(report.diagnostics[0].rule, Rule::UncoupledGate);
//! assert_eq!(report.diagnostics[0].rule.code(), "QV007");
//! ```

#![warn(missing_docs)]

mod contract;
mod diag;
mod rules;

pub use contract::{PassContract, VerifyLevel, EQUIV_MAX_QUBITS};
pub use diag::{Diagnostic, Location, Rule, Severity, VerifyError, VerifyReport, PANIC_MARKER};
pub use rules::{
    sample_input, sample_train, verify_basis, verify_circuit, verify_coupling,
    verify_measurement_map, IBM_BASIS,
};
