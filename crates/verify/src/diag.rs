//! Structured diagnostics: stable rule codes, severities, locations, and
//! machine-readable (JSON) reports.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably wrong; never fails a verified transpile.
    Warning,
    /// A broken invariant; a verified transpile returns an error.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Every rule the verifier can report, with a stable diagnostic code.
///
/// `QV0xx` codes are circuit/IR rules (checkable on any [`qns_circuit::Circuit`]);
/// `QC1xx` codes are pass-contract rules (checkable only across a transpile
/// stage boundary). Codes are append-only: a code is never reused for a
/// different meaning, so logs and CI baselines stay comparable across
/// versions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Qubit index at or beyond the circuit width.
    QubitOutOfRange,
    /// Two-qubit gate with identical operands.
    DuplicateOperands,
    /// Parameter slot count differs from the gate's arity.
    ParamArityMismatch,
    /// Non-finite (NaN/±inf) value in a parameter slot.
    NonFiniteParam,
    /// Referenced trainable/input index at or beyond the declared width.
    SymbolicSlotOutOfRange,
    /// Gate matrix is not unitary at sample parameter values.
    NonUnitaryMatrix,
    /// Two-qubit gate acting on an uncoupled physical pair.
    UncoupledGate,
    /// Gate outside the target basis after lowering.
    NonBasisGate,
    /// Measurement map entry out of range or duplicated.
    InvalidMeasurementMap,
    /// Initial layout is malformed (width mismatch, out of device range,
    /// or duplicate physical qubits).
    ContractInvalidLayout,
    /// A routing stage dropped, reordered, or rewrote non-SWAP gates.
    ContractGateLoss,
    /// A stage lost declared trainable/input parameter width.
    ContractParamLoss,
    /// Compiled circuit disagrees with the logical circuit on observables
    /// (unitary-equivalence spot check).
    ContractEquivalence,
}

impl Rule {
    /// The stable diagnostic code, e.g. `QV001`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::QubitOutOfRange => "QV001",
            Rule::DuplicateOperands => "QV002",
            Rule::ParamArityMismatch => "QV003",
            Rule::NonFiniteParam => "QV004",
            Rule::SymbolicSlotOutOfRange => "QV005",
            Rule::NonUnitaryMatrix => "QV006",
            Rule::UncoupledGate => "QV007",
            Rule::NonBasisGate => "QV008",
            Rule::InvalidMeasurementMap => "QV009",
            Rule::ContractInvalidLayout => "QC101",
            Rule::ContractGateLoss => "QC102",
            Rule::ContractParamLoss => "QC103",
            Rule::ContractEquivalence => "QC104",
        }
    }

    /// One-line description of what the rule guards.
    pub fn description(self) -> &'static str {
        match self {
            Rule::QubitOutOfRange => "qubit index within circuit width",
            Rule::DuplicateOperands => "distinct operands on two-qubit gates",
            Rule::ParamArityMismatch => "parameter slot count matches gate arity",
            Rule::NonFiniteParam => "all parameter values finite",
            Rule::SymbolicSlotOutOfRange => "symbolic slots within declared parameter widths",
            Rule::NonUnitaryMatrix => "gate matrices unitary at sample parameters",
            Rule::UncoupledGate => "two-qubit gates restricted to coupled pairs",
            Rule::NonBasisGate => "only basis gates after lowering",
            Rule::InvalidMeasurementMap => "measurement map injective and in range",
            Rule::ContractInvalidLayout => "initial layout valid for circuit and device",
            Rule::ContractGateLoss => "routing preserves the non-SWAP gate sequence",
            Rule::ContractParamLoss => "stages preserve declared parameter widths",
            Rule::ContractEquivalence => "compiled circuit equivalent to logical circuit",
        }
    }

    /// All rules, in code order (docs and exhaustive tests).
    pub fn all() -> &'static [Rule] {
        &[
            Rule::QubitOutOfRange,
            Rule::DuplicateOperands,
            Rule::ParamArityMismatch,
            Rule::NonFiniteParam,
            Rule::SymbolicSlotOutOfRange,
            Rule::NonUnitaryMatrix,
            Rule::UncoupledGate,
            Rule::NonBasisGate,
            Rule::InvalidMeasurementMap,
            Rule::ContractInvalidLayout,
            Rule::ContractGateLoss,
            Rule::ContractParamLoss,
            Rule::ContractEquivalence,
        ]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Where in a circuit a diagnostic points.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Location {
    /// Index into the circuit's op list, when the diagnostic is op-level.
    pub op_index: Option<usize>,
    /// The offending qubit, when one can be singled out.
    pub qubit: Option<usize>,
}

impl Location {
    /// A diagnostic at op `i`.
    pub fn op(i: usize) -> Self {
        Location {
            op_index: Some(i),
            qubit: None,
        }
    }

    /// A diagnostic at op `i`, qubit `q`.
    pub fn op_qubit(i: usize, q: usize) -> Self {
        Location {
            op_index: Some(i),
            qubit: Some(q),
        }
    }
}

/// One verifier finding: rule, severity, human message, location, and the
/// transpile stage that produced the checked circuit (when known).
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// How severe the finding is.
    pub severity: Severity,
    /// Human-readable explanation with concrete indices/values.
    pub message: String,
    /// Where the finding points (empty for circuit-level findings).
    pub location: Location,
    /// The pass-contract stage name (`"layout"`, `"route"`, `"basis"`,
    /// `"optimize"`, `"output"`), empty for standalone verification.
    pub stage: &'static str,
}

impl Diagnostic {
    /// An error-severity diagnostic with no stage attribution.
    pub fn error(rule: Rule, message: impl Into<String>, location: Location) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            message: message.into(),
            location,
            stage: "",
        }
    }

    /// Attributes the diagnostic to a transpile stage.
    pub fn at_stage(mut self, stage: &'static str) -> Self {
        self.stage = stage;
        self
    }

    /// The diagnostic as a JSON object (hand-rolled; no serde in tree).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"rule\":\"{}\"", self.rule.code()));
        out.push_str(&format!(",\"severity\":\"{}\"", self.severity));
        out.push_str(&format!(",\"message\":\"{}\"", escape_json(&self.message)));
        if let Some(i) = self.location.op_index {
            out.push_str(&format!(",\"op\":{i}"));
        }
        if let Some(q) = self.location.qubit {
            out.push_str(&format!(",\"qubit\":{q}"));
        }
        if !self.stage.is_empty() {
            out.push_str(&format!(",\"stage\":\"{}\"", self.stage));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}",
            self.severity,
            self.rule.code(),
            self.message
        )?;
        if let Some(i) = self.location.op_index {
            write!(f, " (op {i}")?;
            if let Some(q) = self.location.qubit {
                write!(f, ", qubit {q}")?;
            }
            write!(f, ")")?;
        }
        if !self.stage.is_empty() {
            write!(f, " [stage: {}]", self.stage)?;
        }
        Ok(())
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The outcome of a verification run: an ordered list of diagnostics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerifyReport {
    /// Findings in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// An empty (clean) report.
    pub fn clean() -> Self {
        VerifyReport::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: VerifyReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Whether any finding has [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether the report is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings with a specific rule.
    pub fn with_rule(&self, rule: Rule) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// The report as a JSON array of diagnostic objects.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(|d| d.to_json()).collect();
        format!("[{}]", items.join(","))
    }

    /// Converts to a result: `Err(VerifyError)` when any error-severity
    /// finding is present.
    pub fn into_result(self) -> Result<VerifyReport, VerifyError> {
        if self.has_errors() {
            Err(VerifyError { report: self })
        } else {
            Ok(self)
        }
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return f.write_str("verification clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Marker prefix used when a verification failure must cross a panic
/// boundary (the evaluation engine isolates worker panics); consumers
/// match on this prefix to count violations separately from crashes.
pub const PANIC_MARKER: &str = "qns-verify:";

/// A failed verification: a report guaranteed to contain at least one
/// error-severity diagnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyError {
    /// The full report, warnings included.
    pub report: VerifyReport,
}

impl VerifyError {
    /// The first error-severity diagnostic (the headline failure).
    pub fn first(&self) -> &Diagnostic {
        self.report
            .diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .expect("VerifyError holds at least one error diagnostic")
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{PANIC_MARKER} {}", self.report)
    }
}

impl std::error::Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut codes: Vec<&str> = Rule::all().iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate rule code");
        assert_eq!(Rule::QubitOutOfRange.code(), "QV001");
        assert_eq!(Rule::ContractInvalidLayout.code(), "QC101");
    }

    #[test]
    fn json_escapes_and_includes_location() {
        let d = Diagnostic::error(
            Rule::QubitOutOfRange,
            "qubit 9 \"bad\"",
            Location::op_qubit(3, 9),
        )
        .at_stage("route");
        let j = d.to_json();
        assert!(j.contains("\"rule\":\"QV001\""), "{j}");
        assert!(j.contains("\\\"bad\\\""), "{j}");
        assert!(j.contains("\"op\":3"), "{j}");
        assert!(j.contains("\"qubit\":9"), "{j}");
        assert!(j.contains("\"stage\":\"route\""), "{j}");
    }

    #[test]
    fn report_result_conversion() {
        let mut r = VerifyReport::clean();
        assert!(r.clone().into_result().is_ok());
        r.push(Diagnostic::error(
            Rule::NonBasisGate,
            "leaked h",
            Location::op(0),
        ));
        let err = r.into_result().unwrap_err();
        assert_eq!(err.first().rule, Rule::NonBasisGate);
        assert!(err.to_string().starts_with(PANIC_MARKER));
    }

    #[test]
    fn display_formats_are_readable() {
        let mut r = VerifyReport::clean();
        assert_eq!(r.to_string(), "verification clean");
        r.push(Diagnostic::error(
            Rule::UncoupledGate,
            "cx on 0-4",
            Location::op(2),
        ));
        assert!(r.to_string().contains("error [QV007] cx on 0-4 (op 2)"));
        assert_eq!(r.to_json(), format!("[{}]", r.diagnostics[0].to_json()));
    }
}
